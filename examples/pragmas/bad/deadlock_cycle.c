/* Seeded deadlock for repro-lint's CI001 proof (kept out of the CI
 * glob on purpose): region one only *receives* — its end-of-region
 * synchronization waits for messages that are sent in region two,
 * which every rank reaches only after that wait. The cross-rank
 * wait-for graph is a cycle on every lowering target. */
double x[256];
double y[256];
int rank, nprocs;

#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(0) receivewhen(1)
{
}
}
between_phases();
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(1) receivewhen(0)
{
}
}
