/* 1-D halo exchange: two shifts in one region, independent buffers,
 * so one consolidated synchronization covers both directives. */
double right_edge[64];
double left_halo[64];
double left_edge[64];
double right_halo[64];
int rank, nprocs;

#pragma comm_parameters place_sync(END_PARAM_REGION)
{
#pragma comm_p2p sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0) sbuf(right_edge) rbuf(left_halo)
#pragma comm_p2p sender(rank+1) receiver(rank-1) sendwhen(rank>0) receivewhen(rank<nprocs-1) sbuf(left_edge) rbuf(right_halo)
}
stencil(left_halo, right_halo);
