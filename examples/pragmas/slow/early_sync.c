/* Pessimized halo exchange: the overlap body is empty, and the
 * independent work (compute_us) sits *after* the region's
 * synchronization point — the transfer's wire time is fully exposed.
 *
 * repro-lint flags this as CI101 (forfeited overlap); `repro-lint
 * --fix` hoists the independent statement into the directive's overlap
 * body and proves the rewrite (CI0xx-clean on all targets, simulated
 * time strictly better). */
double field[8192];
double halo[8192];
int rank, nprocs;

#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(field) rbuf(halo)
}
compute_us(15);
consume(halo);
