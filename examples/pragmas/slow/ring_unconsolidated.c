/* Pessimized ring: three independent neighbour shifts written as
 * standalone directives. Every directive synchronizes at its own
 * exit, so the three transfers serialize — the Section III-A
 * consolidation rule would cover all of them with one call.
 *
 * repro-lint flags this as CI100; `repro-lint --fix` wraps the three
 * directives in one comm_parameters region and proves the rewrite
 * (CI0xx-clean on all targets, simulated time strictly better). */
double s0[512];
double r0[512];
double s1[512];
double r1[512];
double s2[512];
double r2[512];
int rank, nprocs;

#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s0) rbuf(r0)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s1) rbuf(r1)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s2) rbuf(r2)

consume3(r0, r1, r2);
