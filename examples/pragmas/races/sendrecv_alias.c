/* Seeded CI042 send/recv aliasing: one ring directive names the same
 * buffer as sbuf and rbuf, so every rank reads buf for its outgoing
 * transfer while the incoming delivery writes the same bytes inside
 * the same window. There is no dependent flush between the two halves
 * of a single directive instance — the aliasing is intra-directive.
 *
 * repro-lint refutes this statically (CI042 with byte-range
 * evidence); Engine(..., sanitize=True) refutes it dynamically. */
double buf[16];
int rank, nprocs;

#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf) rbuf(buf)
{
}
consume(buf);
