/* Seeded CI041 read-write race: the send buffer is recycled before
 * the synchronization that completes the transfer. The chain's
 * consolidated sync (place_sync(END_ADJ_PARAM_REGIONS)) keeps the
 * send posted through the second region, whose overlap body reassigns
 * out[3] — the bytes the in-flight transfer reads are
 * schedule-dependent.
 *
 * repro-lint refutes this statically (CI041 with byte-range
 * evidence); Engine(..., sanitize=True) refutes it dynamically. */
double out[16];
double in[16];
double x2[16];
double y2[16];
double x3[16];
double y3[16];
int rank, nprocs;

#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(out) rbuf(in)
}
#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x2) rbuf(y2)
    {
        out[3] = 0.0;
    }
}
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(x3) rbuf(y3)
}
consume(in);
consume(y2);
consume(y3);
