/* Seeded CI040 write-write race (kept out of the clean CI glob on
 * purpose): the halo receive's synchronization is consolidated across
 * an adjacent-region chain (place_sync(END_ADJ_PARAM_REGIONS)), so
 * its delivery window stays open through the second region — whose
 * overlap body overwrites the corner cell halo[0]. Whether the local
 * update or the incoming message wins is schedule-dependent on every
 * lowering target.
 *
 * repro-lint refutes this statically (CI040 with byte-range
 * evidence); Engine(..., sanitize=True) refutes it dynamically
 * (RaceError from the access sanitizer). */
double field[16];
double halo[16];
double x2[16];
double y2[16];
double x3[16];
double y3[16];
int rank, nprocs;

#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(field) rbuf(halo)
}
#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x2) rbuf(y2)
    {
        halo[0] = 1.0;
    }
}
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(x3) rbuf(y3)
}
consume(halo);
consume(y2);
consume(y3);
