/* Seeded CI043 symmetric-heap collision: two different origin ranks
 * put into the same symmetric allocation on rank 0 with no ordering
 * between the origins. SHMEM puts do not wait for the target, so the
 * second region's put can land before, during, or after the first —
 * the receiver's synchronization orders each delivery against *its*
 * origin only, never the two origins against each other.
 *
 * repro-lint refutes this statically (CI043 with byte-range
 * evidence); Engine(..., sanitize=True) refutes it dynamically. */
double mine[16];
double other[16];
double acc[16];
int rank, nprocs;

#pragma comm_parameters target(TARGET_COMM_SHMEM)
{
    #pragma comm_p2p sender(1) receiver(0) sendwhen(rank==1) receivewhen(rank==0) sbuf(mine) rbuf(acc)
}
#pragma comm_parameters target(TARGET_COMM_SHMEM)
{
    #pragma comm_p2p sender(2) receiver(0) sendwhen(rank==2) receivewhen(rank==0) sbuf(other) rbuf(acc)
}
consume(acc);
