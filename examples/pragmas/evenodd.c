/* Even/odd pairwise exchange: even ranks send to their odd right
 * neighbour. The region's clauses apply to the single instance. */
double a[512];
double b[512];
int rank, nprocs;

#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) receivewhen(rank%2==1) sbuf(a) rbuf(b)
{
#pragma comm_p2p
{
    overlap_work();
}
}
consume(b);
