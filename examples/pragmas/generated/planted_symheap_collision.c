/* repro-gen minimized repro: seed=13 mode=racy nprocs=4 kind=missed-race
 * (found under --weaken-oracle ignore-races)
 *
 * A neighbor shift and a stride-2 shift both deliver into buf5 under
 * the SHMEM sweep: puts from two different origins land in the same
 * symmetric allocation with no ordering between them, the CI043
 * symmetric-heap collision. Expected-findings regression for the
 * planted "shared-rbuf" generator defect on the one-sided path.
 */
double buf0[6];
double buf4[8];
double buf5[12];
#pragma comm_p2p sender(rank-1) receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) receivewhen(rank%2==1) sbuf(buf0) rbuf(buf5)
#pragma comm_p2p sender(rank-2) receiver(rank+2) sendwhen(rank+2<nprocs) receivewhen(rank>=2) sbuf(buf4) rbuf(buf5)
