/* repro-gen minimized repro: seed=1 mode=racy nprocs=3 kind=missed-race
 *
 * Pins the CI04x window rule "a handle's access window closes AFTER
 * its guaranteeing sync returns" (races.py, end = sync.index + 1).
 * The standalone pairwise put (SHMEM sweep) starts at a vector-clock
 * index equal to the region sync that closes the mpi2s delivery into
 * the same buf7: under the old exclusive-end rule the windows were
 * adjacent instead of overlapping and the race was missed statically
 * while the access sanitizer observed it dynamically.
 */
double buf0[12];
double buf1[12];
double buf2[8];
double buf6[6];
double buf7[8];
#pragma comm_parameters
{
    #pragma comm_p2p sender(rank-1) receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) receivewhen(rank%2==1) sbuf(buf2) rbuf(buf7) target(TARGET_COMM_MPI_2SIDE)
    #pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(buf0) rbuf(buf1)
}
#pragma comm_p2p sender(rank^1) receiver(rank^1) sendwhen((rank^1)<nprocs) receivewhen((rank^1)<nprocs) sbuf(buf6) rbuf(buf7)
