/* repro-gen minimized repro: seed=44 mode=racy nprocs=5 kind=missed-race
 *
 * Two adjacent END_ADJ_PARAM_REGIONS regions deliver into the same
 * buf5. The chain defers the first region's sync, so when the second
 * region's directive posts, the first delivery is still in flight as
 * *carried* communication. The dependent-buffer downgrade CI020
 * promises must flush that carry before the aliasing directive posts
 * (directives.py checks RegionState.carried, not just the innermost
 * region's pending) — under the old runtime the carry was never
 * checked and the two deliveries raced. Statically a warning-only
 * program; dynamically it must sanitize clean.
 */
double buf2[8];
double buf4[8];
double buf5[4];
#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(buf2) rbuf(buf5) target(TARGET_COMM_MPI_1SIDE)
    {
    }
}
#pragma comm_parameters place_sync(END_ADJ_PARAM_REGIONS)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf4) rbuf(buf5) target(TARGET_COMM_MPI_2SIDE)
    {
    }
}
