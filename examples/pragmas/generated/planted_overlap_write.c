/* repro-gen minimized repro: seed=1 mode=racy nprocs=3 kind=missed-race
 * (found under --weaken-oracle ignore-races)
 *
 * Two standalone directives deliver into the same buf7: a pairwise
 * exchange and an even/odd neighbor send. Their windows overlap on
 * every receiving rank, so the static race pass must prove CI040 —
 * this file is the expected-findings regression for the planted
 * "shared-rbuf" generator defect.
 */
double buf2[8];
double buf6[6];
double buf7[8];
#pragma comm_p2p sender(rank-1) receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) receivewhen(rank%2==1) sbuf(buf2) rbuf(buf7) target(TARGET_COMM_MPI_2SIDE)
#pragma comm_p2p sender(rank^1) receiver(rank^1) sendwhen((rank^1)<nprocs) receivewhen((rank^1)<nprocs) sbuf(buf6) rbuf(buf7)
