/* repro-gen minimized repro: seed=69 mode=racy nprocs=2 kind=missed-race
 *
 * A nested comm_parameters region whose directive delivers into the
 * same buf1 as the still-pending directive of the ENCLOSING region.
 * The dependent-buffer flush must scan every region on the stack, not
 * only the innermost pending set (directives.py) — under the old
 * runtime the outer delivery was invisible to the aliasing check and
 * the two deliveries raced. Statically a warning-only program;
 * dynamically it must sanitize clean.
 */
double buf0[16];
double buf1[12];
double buf2[12];
#pragma comm_parameters
{
    #pragma comm_p2p sender(rank^1) receiver(rank^1) sbuf(buf2) rbuf(buf1)
    #pragma comm_parameters
    {
        #pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(buf0) rbuf(buf1)
    }
}
