/* Ring shift: every rank sends its buffer one neighbour clockwise.
 * Clean under repro-lint on all three lowering targets. */
double sbuf[1024];
double rbuf[1024];
int rank, nprocs;

#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sbuf) rbuf(rbuf)
{
    compute_interior();
}
consume(rbuf);
