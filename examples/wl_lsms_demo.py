#!/usr/bin/env python
"""WL-LSMS demo: run the paper's application under every variant.

Runs the mini WL-LSMS (2 LSMS instances of 16 ranks + 1 WL rank) with
the original hand-written MPI, the Waitall ablation, and the directive
translation targeting MPI and SHMEM — then prints:

* the Wang-Landau physics output (identical across variants: the
  communication expression must never change the numbers);
* the modelled per-phase times and the Figure-4-style speedups.

Run:  python examples/wl_lsms_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.apps.wllsms import AppConfig, run_app
from repro.util import fmt_time
from repro.util.tables import Table

VARIANTS = [
    ("original", "TARGET_COMM_MPI_2SIDE", "original MPI"),
    ("waitall", "TARGET_COMM_MPI_2SIDE", "original + Waitall"),
    ("directive", "TARGET_COMM_MPI_2SIDE", "directive -> MPI"),
    ("directive", "TARGET_COMM_SHMEM", "directive -> SHMEM"),
]


def main() -> None:
    base = dict(n_lsms=2, group_size=16, t=256, tc=8, wl_steps=4)
    priv = AppConfig(**base).topology.privileged_rank_of(0)

    results = {}
    for variant, target, label in VARIANTS:
        cfg = AppConfig(variant=variant, target=target, **base)
        results[label] = run_app(cfg)
        print(f"ran {label:*<0} "
              f"({cfg.nprocs} ranks, {cfg.wl_steps} WL steps)")

    print("\n== physics (must be identical across variants) ==")
    table = Table(["variant", "group energies", "WL steps",
                   "ln f"])
    for label, res in results.items():
        energies = ", ".join(f"{e:.3f}" for e in res.group_energies)
        table.add_row([label, energies, res.wang_landau.steps,
                       res.wang_landau.ln_f])
    print(table.render())
    base_e = next(iter(results.values())).group_energies
    assert all(np.allclose(r.group_energies, base_e)
               for r in results.values()), "variants disagree!"
    print("all variants computed identical energies ✓")

    print("\n== modelled communication time (privileged rank, "
          "setEvec phase) ==")
    t_orig = results["original MPI"].phases.rank_total("setevec", priv)
    table = Table(["variant", "setevec busy time", "speedup vs original"])
    for label, res in results.items():
        t = res.phases.rank_total("setevec", priv)
        table.add_row([label, fmt_time(t), f"{t_orig / t:.2f}x"])
    print(table.render())

    print("\n== single-atom-data distribution (Figure 3 phase) ==")
    table = Table(["variant", "distribute span"])
    for label, res in results.items():
        table.add_row([label,
                       fmt_time(res.phases.episode_duration(
                           "distribute", 0))])
    print(table.render())


if __name__ == "__main__":
    main()
