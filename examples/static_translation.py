#!/usr/bin/env python
"""Static translation demo: the compiler path of the paper.

Feeds pragma-annotated C-like source (the paper's Listing 5 with its
declarations) through the static pipeline:

1. parse the pragmas into directive IR;
2. run the analyses — per-rank communication pattern, matching
   validation, synchronization plan, overlap legality;
3. generate translated C for the MPI and SHMEM targets, plus the
   Fortran skeleton.

Run:  python examples/static_translation.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.listings import LISTING5_ANNOTATED
from repro.core.analysis import (
    classify_pattern,
    comm_graph,
    overlap_legal,
    plan_synchronization,
    validate_matching,
)
from repro.core.clauses import Target
from repro.core.codegen import generate_c, generate_fortran
from repro.core.pragma import parse_program

RING_SOURCE = """\
double buf1[128];
double buf2[128];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)
{
    update_interior(grid);
}
"""


def main() -> None:
    print("== 1. the paper's Listing 5 ==")
    program = parse_program(LISTING5_ANNOTATED)
    region = program.regions()[0]
    print(f"parsed: {len(program.regions())} region, "
          f"{len(program.all_p2p())} comm_p2p instances, "
          f"{len(program.structs)} struct type(s), "
          f"{len(program.decls)} buffer declaration(s)")

    plan = plan_synchronization(program)
    print(f"sync plan: {plan.total_sync_calls} call(s) covering "
          f"{sum(pt.covered_instances for pt in plan.points)} "
          f"instance(s) -> {plan.reduction_factor(program):.1f}x fewer "
          "than per-instance synchronization")

    print("\n-- generated C (MPI target) --")
    print(generate_c(program))

    print("-- generated C (SHMEM target) --")
    print(generate_c(program, default_target=Target.SHMEM))

    print("-- generated Fortran skeleton --")
    print(generate_fortran(program))

    print("== 2. dataflow analysis of a ring directive ==")
    ring = parse_program(RING_SOURCE)
    node = ring.all_p2p()[0]
    graph = comm_graph(node.clauses, nprocs=8)
    print(f"edges: {graph.edges}")
    print(f"classified pattern: {classify_pattern(graph)!r}")
    issues = validate_matching(graph)
    print(f"matching issues: {issues or 'none'}")
    verdict = overlap_legal(node)
    print(f"overlap legality of the body: {verdict.legal} "
          f"({verdict.reason})")


if __name__ == "__main__":
    main()
