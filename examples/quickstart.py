#!/usr/bin/env python
"""Quickstart: the paper's Listings 1-3 as runnable programs.

Runs three directive programs on the simulated machine:

1. a ring exchange using only the four required clauses (Listing 1);
2. even->odd pairing via sendwhen/receivewhen (Listing 2);
3. a comm_parameters region wrapping a loop of per-element comm_p2p
   directives with one consolidated synchronization (Listing 3);

and prints the delivered data, the modelled virtual times, and the
synchronization counts that show the consolidation at work.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.netmodel import gemini_model
from repro.sim import Engine


def listing1_ring(nprocs: int = 5) -> None:
    print(f"-- Listing 1: ring pattern on {nprocs} ranks")
    model = gemini_model()
    eng = Engine(nprocs)

    def program(env):
        mpi.init(env, model)
        prev = (env.rank - 1 + env.size) % env.size
        nxt = (env.rank + 1) % env.size
        buf1 = np.full(4, float(env.rank))
        buf2 = np.zeros(4)
        with comm_p2p(env, sender=prev, receiver=nxt,
                      sbuf=buf1, rbuf=buf2):
            pass
        return buf2[0]

    res = eng.run(program)
    for rank, got in enumerate(res.values):
        print(f"   rank {rank} received {got:.0f} "
              f"(from rank {(rank - 1) % nprocs})")
    print(f"   virtual makespan: {res.makespan * 1e6:.2f} us")


def listing2_evenodd(nprocs: int = 6) -> None:
    print(f"\n-- Listing 2: even ranks send to the next odd rank")
    model = gemini_model()
    eng = Engine(nprocs)

    def program(env):
        mpi.init(env, model)
        buf1 = np.full(2, float(env.rank * 10))
        buf2 = np.zeros(2)
        with comm_p2p(env, sbuf=buf1, rbuf=buf2,
                      sender=env.rank - 1, receiver=env.rank + 1,
                      sendwhen=env.rank % 2 == 0,
                      receivewhen=env.rank % 2 == 1):
            pass
        return buf2[0]

    res = eng.run(program)
    for rank, got in enumerate(res.values):
        role = "received" if rank % 2 else "sent; buffer untouched ="
        print(f"   rank {rank} ({'odd' if rank % 2 else 'even'}) "
              f"{role} {got:.0f}")


def listing3_region(nprocs: int = 2, n: int = 8) -> None:
    print(f"\n-- Listing 3: region with {n} per-element directives")
    model = gemini_model()
    eng = Engine(nprocs)

    def program(env):
        mpi.init(env, model)
        buf1 = np.arange(float(n))
        buf2 = np.zeros(n)
        with comm_parameters(env, sender=env.rank - 1,
                             receiver=env.rank + 1,
                             sendwhen=env.rank % 2 == 0,
                             receivewhen=env.rank % 2 == 1,
                             count=1, max_comm_iter=n,
                             place_sync="END_PARAM_REGION"):
            for p in range(n):
                with comm_p2p(env, sbuf=buf1[p:p + 1],
                              rbuf=buf2[p:p + 1]):
                    pass
        return buf2.tolist()

    res = eng.run(program)
    print(f"   rank 1 received: {res.values[1]}")
    waits = eng.stats.sync_calls["wait"]
    waitalls = eng.stats.sync_calls["waitall"]
    print(f"   synchronization generated: {waitalls} MPI_Waitall, "
          f"{waits} MPI_Wait")
    print(f"   ({n} transfers per rank consolidated into ONE "
          "synchronization call each — Section III-A)")


if __name__ == "__main__":
    listing1_ring()
    listing2_evenodd()
    listing3_region()
