#!/usr/bin/env python
"""Halo-exchange stencil: a real solver on the directive layer.

Solves the 1-D heat equation by explicit finite differences across
simulated ranks, exchanging boundary halos every step with the
directive layer (two comm_p2p in one comm_parameters region, one
consolidated sync) and overlapping the interior update with the halo
transfers — the structured-communication payoff the paper argues for,
on a workload its introduction motivates.

Verifies the parallel result against a single-rank reference and
reports modelled times with and without overlap.

Run:  python examples/halo_stencil.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.netmodel import gemini_model
from repro.sim import Engine

NX = 4_000          # global grid points
STEPS = 25
ALPHA = 0.4         # diffusion number (stable: <= 0.5)
HALO = 1


def initial(nx: int) -> np.ndarray:
    x = np.linspace(0.0, 1.0, nx)
    return np.exp(-200.0 * (x - 0.35) ** 2) + 0.5 * (x > 0.8)


def reference(nx: int, steps: int) -> np.ndarray:
    u = initial(nx)
    for _ in range(steps):
        un = u.copy()
        un[1:-1] = u[1:-1] + ALPHA * (u[2:] - 2 * u[1:-1] + u[:-2])
        u = un
    return u


def run_parallel(nprocs: int, *, overlap: bool) -> tuple[np.ndarray, float]:
    model = gemini_model()
    eng = Engine(nprocs)
    chunk = NX // nprocs

    def program(env):
        comm = mpi.init(env, model)
        rank, size = env.rank, env.size
        lo, hi = rank * chunk, (rank + 1) * chunk if rank < size - 1 \
            else NX
        u = initial(NX)[lo:hi].copy()
        left_halo = np.zeros(HALO)
        right_halo = np.zeros(HALO)
        # Modelled per-step interior-update cost (5 flops/point at a
        # notional 1 GF/s effective rate).
        interior_cost = 5.0 * (hi - lo) * 1e-9

        for _ in range(STEPS):
            left_edge = np.ascontiguousarray(u[:HALO])
            right_edge = np.ascontiguousarray(u[-HALO:])
            with comm_parameters(env):
                with comm_p2p(env,
                              sender=max(rank - 1, 0),
                              receiver=min(rank + 1, size - 1),
                              sendwhen=rank < size - 1,
                              receivewhen=rank > 0,
                              sbuf=right_edge, rbuf=left_halo):
                    if overlap:
                        # Interior points do not touch the halos:
                        # legal to compute while halos fly.
                        env.compute(interior_cost)
                with comm_p2p(env,
                              sender=min(rank + 1, size - 1),
                              receiver=max(rank - 1, 0),
                              sendwhen=rank > 0,
                              receivewhen=rank < size - 1,
                              sbuf=left_edge, rbuf=right_halo):
                    pass
            if not overlap:
                env.compute(interior_cost)
            ext = np.concatenate([
                left_halo if rank > 0 else u[:1],
                u,
                right_halo if rank < size - 1 else u[-1:],
            ])
            new_u = ext[1:-1] + ALPHA * (ext[2:] - 2 * ext[1:-1]
                                         + ext[:-2])
            # Global Dirichlet boundaries stay fixed (as the serial
            # reference's un[1:-1] update leaves them).
            if rank == 0:
                new_u[0] = u[0]
            if rank == size - 1:
                new_u[-1] = u[-1]
            u = new_u
        return u

    res = eng.run(program)
    assembled = np.concatenate(res.values)
    return assembled, res.makespan


def main() -> None:
    ref = reference(NX, STEPS)
    for nprocs in (4, 8):
        solution, makespan = run_parallel(nprocs, overlap=False)
        _, makespan_ov = run_parallel(nprocs, overlap=True)
        err = float(np.abs(solution - ref).max())
        print(f"{nprocs} ranks: max|parallel - serial| = {err:.2e}  "
              f"(must be ~1e-15)")
        print(f"   modelled time/step: plain "
              f"{makespan / STEPS * 1e6:7.2f} us, overlapped "
              f"{makespan_ov / STEPS * 1e6:7.2f} us "
              f"({makespan / makespan_ov:.2f}x)")
        assert err < 1e-12


if __name__ == "__main__":
    main()
