#!/usr/bin/env python
"""2-D Jacobi smoother on a Cartesian process grid.

Combines the library's pieces the way a structured-grid application
would: `mpi.Cart_create` builds the process grid, the `halo2d`
directive pattern exchanges all four boundary strips with ONE
consolidated synchronization per sweep, and the interior update is
verified against a single-rank reference.

Also prints the run's communication matrix (who sent how much to
whom), recovered from the trace — the dynamic analysis the directives
make easy.

Run:  python examples/stencil2d.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import mpi
from repro.netmodel import gemini_model
from repro.patterns.halo2d import HaloBuffers, grid_shape, run_directive
from repro.sim import Engine, comm_matrix

NY_GLOBAL, NX_GLOBAL = 24, 36
SWEEPS = 10


def initial(ny: int, nx: int) -> np.ndarray:
    u = np.zeros((ny, nx))
    u[ny // 3: 2 * ny // 3, nx // 3: 2 * nx // 3] = 100.0
    return u


def reference(sweeps: int) -> np.ndarray:
    u = initial(NY_GLOBAL, NX_GLOBAL)
    for _ in range(sweeps):
        v = u.copy()
        v[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:])
        u = v
    return u


def run_parallel(nprocs: int):
    py, px = grid_shape(nprocs)
    assert NY_GLOBAL % py == 0 and NX_GLOBAL % px == 0
    ny, nx = NY_GLOBAL // py, NX_GLOBAL // px
    model = gemini_model()
    eng = Engine(nprocs, trace=True)

    def program(env):
        comm = mpi.init(env, model)
        cart = mpi.Cart_create(comm, [py, px])
        cy, cx = cart.coords
        full = initial(NY_GLOBAL, NX_GLOBAL)
        u = full[cy * ny:(cy + 1) * ny, cx * nx:(cx + 1) * nx].copy()
        bufs = HaloBuffers(ny, nx)
        for _ in range(SWEEPS):
            run_directive(env, u, bufs, py, px)
            # Assemble the extended block: physical boundary cells keep
            # their values (Dirichlet), interior edges use the halos.
            ext = np.zeros((ny + 2, nx + 2))
            ext[1:-1, 1:-1] = u
            ext[0, 1:-1] = bufs.halo["north"] if cy > 0 else u[0]
            ext[-1, 1:-1] = bufs.halo["south"] if cy < py - 1 else u[-1]
            ext[1:-1, 0] = bufs.halo["west"] if cx > 0 else u[:, 0]
            ext[1:-1, -1] = bufs.halo["east"] if cx < px - 1 else u[:, -1]
            v = 0.25 * (ext[:-2, 1:-1] + ext[2:, 1:-1]
                        + ext[1:-1, :-2] + ext[1:-1, 2:])
            # Global Dirichlet boundary stays fixed.
            if cy == 0:
                v[0] = u[0]
            if cy == py - 1:
                v[-1] = u[-1]
            if cx == 0:
                v[:, 0] = u[:, 0]
            if cx == px - 1:
                v[:, -1] = u[:, -1]
            u = v
        return (cart.coords, u)

    res = eng.run(program)
    assembled = np.zeros((NY_GLOBAL, NX_GLOBAL))
    for (cy, cx), block in res.values:
        assembled[cy * ny:(cy + 1) * ny, cx * nx:(cx + 1) * nx] = block
    return assembled, res, eng


def main() -> None:
    ref = reference(SWEEPS)
    for nprocs in (4, 6, 12):
        sol, res, eng = run_parallel(nprocs)
        err = float(np.abs(sol - ref).max())
        py, px = grid_shape(nprocs)
        waitalls = eng.stats.sync_calls["waitall"]
        print(f"{py}x{px} grid: max error {err:.2e}, "
              f"makespan {res.makespan * 1e6:.1f} us, "
              f"{waitalls} consolidated syncs "
              f"({SWEEPS} sweeps x {nprocs} ranks)")
        assert err < 1e-12
        assert waitalls == SWEEPS * nprocs
    print("\ncommunication matrix of the last run:")
    print(comm_matrix(eng.trace, nprocs).render())


if __name__ == "__main__":
    main()
