#!/usr/bin/env python
"""Fault injection walkthrough: jitter, stalls, crashes, watchdog.

Four demonstrations on the ring exchange from the paper's Listing 1:

1. adversarial timing (jitter + reordering pressure + drop/retransmit)
   shifts every virtual time but not one byte of delivered data;
2. a rank stall drags its dependents along the ring — the stall's cost
   propagates exactly as far as the communication structure carries it;
3. a rank crash terminates the run promptly with a RankFailedError
   naming the dead rank and what every survivor was doing;
4. the sync-plan fuzzer replays one (pattern, target, seed) triple —
   the same call CI uses to reproduce a reported failure.

Run:  python examples/fault_injection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import mpi
from repro.core import comm_p2p
from repro.errors import RankFailedError
from repro.faults import FaultPlan, RankCrash, RankStall, Watchdog, fuzz_one
from repro.netmodel import gemini_model
from repro.sim import Engine

NPROCS = 5
MODEL = gemini_model()


def ring_program(env):
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    out = np.arange(4.0) + 100.0 * env.rank
    inb = np.zeros(4)
    mpi.init(env, MODEL)
    with comm_p2p(env, sender=prev, receiver=nxt, sbuf=out, rbuf=inb):
        pass
    return inb.tolist()


def demo_jitter() -> None:
    print("-- 1. adversarial timing changes times, never data")
    clean = Engine(NPROCS)
    base = clean.run(ring_program)
    plan = FaultPlan(seed=7, delay_jitter=1e-5, reorder_prob=0.25,
                     drop_prob=0.05)
    eng = Engine(NPROCS, faults=plan)
    res = eng.run(ring_program)
    assert res.values == base.values
    print(f"   data identical on all {NPROCS} ranks")
    print(f"   clean finish:     {max(base.finish_times):.3e}s")
    print(f"   perturbed finish: {max(res.finish_times):.3e}s")
    print(f"   injected faults:  {dict(eng.stats.faults)}")
    print(f"   replay seed:      {eng.stats.fault_seed}\n")


def demo_stall() -> None:
    print("-- 2. a stalled rank drags its ring successors along")
    plan = FaultPlan(seed=0, stalls=(RankStall(rank=2, at=0.0,
                                               duration=0.5),))
    eng = Engine(NPROCS, faults=plan)
    res = eng.run(ring_program)
    for rank, t in enumerate(res.finish_times):
        mark = "  <- stalled" if rank == 2 else ""
        print(f"   rank {rank} finished at {t:.4f}s{mark}")
    print()


def demo_crash() -> None:
    print("-- 3. a crashed rank fails fast with a named diagnosis")
    plan = FaultPlan(seed=0, crashes=(RankCrash(rank=2, at=0.0),))
    eng = Engine(NPROCS, faults=plan, watchdog=Watchdog(wall_timeout=30.0))
    try:
        eng.run(ring_program)
    except RankFailedError as err:
        print(f"   failed ranks: {list(err.failed)}")
        print("   " + str(err).splitlines()[0])
    print()


def demo_fuzz_replay() -> None:
    print("-- 4. one sync-plan fuzzer triple (ring, SHMEM, seed 3)")
    failure = fuzz_one("ring", "TARGET_COMM_SHMEM", 3)
    print("   passed" if failure is None else f"   {failure}")
    print()


if __name__ == "__main__":
    demo_jitter()
    demo_stall()
    demo_crash()
    demo_fuzz_replay()
