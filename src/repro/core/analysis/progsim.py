"""Concretely execute a parsed directive program in the simulator.

The static analyses reason over a :class:`~repro.core.ir.Program`
symbolically; this module closes the loop by *running* the same program
in :class:`repro.sim.Engine` under a calibrated machine model. Every
directive is replayed through the runtime DSL (``comm_parameters`` /
``comm_p2p``), so the modeled time reflects the real lowering — sync
consolidation, dependent flushes, per-target protocol costs — rather
than a re-derivation of it.

This is the measurement half of the advisor's proof-carrying fixes
(:mod:`repro.core.analysis.fix`): a rewrite is only accepted when the
simulated time of the rewritten program does not regress against the
original on the same ``(nprocs, target, netmodel)`` triple.

Compute statements
------------------

Raw code is mostly not executed (it is C text), with two modeled
exceptions:

* a line containing ``compute_us(expr)`` charges ``expr`` microseconds
  of computation to the executing rank via ``env.compute`` — how the
  pessimized examples (``examples/pragmas/slow/``) express overlap-able
  work so the advisor's savings become visible in simulation;
* a plain element assignment ``name[idx] = expr;`` whose index and
  right-hand side both evaluate in the clause-expression language is
  *performed* on the materialized buffer (and recorded by the access
  sanitizer when armed). Generated programs use this to seed each rank
  with distinct data, which is what makes the differential oracle's
  bit-for-bit payload comparison across lowering targets meaningful.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import mpi, shmem
from repro.core import exprs
from repro.core.clauses import DEFAULT_TARGET, Target
from repro.core.directives import comm_flush, comm_p2p, comm_parameters
from repro.core.ir import (
    BufferDecl,
    ClauseExprs,
    Node,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.core.analysis.independence import base_identifier
from repro.dtypes.primitives import PrimitiveType
from repro.errors import ReproError
from repro.netmodel import gemini_model
from repro.netmodel.base import MachineModel
from repro.profiling.spans import Profile
from repro.sim import Engine
from repro.sim.process import Env
from repro.sim.stats import SimStats

__all__ = ["ProgramSimError", "SimOutcome", "simulate_program",
           "simulate_all_targets"]

#: ``compute_us(<expr>)`` in raw code charges modeled microseconds.
_COMPUTE = re.compile(r"\bcompute_us\s*\(([^()]*)\)")

#: ``name[idx] = ...`` (plain or compound) in raw code — the write
#: sites the access sanitizer records (mirrors the static verifier's
#: assignment scan; ``==``/``<=``/``>=``/``!=`` are rejected). The
#: compound operator, when present, is captured so plain ``=`` stores
#: can additionally be performed on the materialized buffer.
_ASSIGN = re.compile(
    r"\b([A-Za-z_]\w*)\s*\[([^\][]*)\]\s*([+\-*/%&|^]|<<|>>)?=(?!=)")


class ProgramSimError(ReproError):
    """The parsed program cannot be materialized for simulation."""


@dataclass(frozen=True)
class SimOutcome:
    """Result of one concrete run of a parsed program."""

    nprocs: int
    target: str
    #: Virtual completion time of the slowest rank, in modeled seconds.
    modeled_time: float
    #: Per-rank virtual finish times.
    finish_times: tuple[float, ...]
    #: Span profile of the run (``profile=True`` only).
    profile: Profile | None = None
    #: Engine statistics of the run (message counts, and — when
    #: ``sanitize=True`` — the ``sanitizer_checks`` pair count).
    stats: SimStats | None = None
    #: Final per-rank buffer contents (``capture=True`` only): one
    #: ``{buffer name: element list}`` dict per rank. This is the
    #: bit-for-bit payload the differential oracle compares across
    #: lowering targets.
    payloads: tuple[dict[str, list[float]], ...] | None = None
    #: Race reports observed in collect mode (``sanitize="collect"``):
    #: the run finishes and every conflicting access pair is recorded
    #: instead of aborting on the first.
    races: tuple[str, ...] = ()


def simulate_program(program: Program, nprocs: int = 8, *,
                     target: Target | str = DEFAULT_TARGET,
                     extra_vars: dict[str, int] | None = None,
                     model: MachineModel | None = None,
                     max_time: float | None = 10.0,
                     profile: bool = False,
                     sanitize: "bool | str" = False,
                     faults: Any = None,
                     capture: bool = False) -> SimOutcome:
    """Run ``program`` on ``nprocs`` simulated ranks and time it.

    ``target`` is the default lowering for directives without an
    explicit ``target`` clause (mirroring the verifier's per-target
    sweep); an explicit clause always wins. ``extra_vars`` binds free
    names in clause expressions, exactly as in
    :func:`repro.core.analysis.verify.verify_program`.

    Raises :class:`ProgramSimError` when the program cannot be
    materialized (pointer/composite buffers, unknown names); runtime
    clause violations and simulator aborts propagate unwrapped.

    With ``profile=True`` the run records a span profile
    (:mod:`repro.profiling`), returned on :attr:`SimOutcome.profile`;
    directive posts are labeled ``p2p@L<line>`` for per-directive
    attribution.

    With ``sanitize=True`` the engine's byte-interval access sanitizer
    is armed and raw-code buffer assignments are recorded as point
    writes, so a program the static race pass refutes (CI04x) aborts
    here with :class:`repro.errors.RaceError` — the differential
    cross-check the race examples exercise. ``sanitize="collect"``
    arms the sanitizer in *collect* mode instead: the run completes
    and every observed race report is returned on
    :attr:`SimOutcome.races` (the differential oracle's precision
    measurement needs the full list, not the first abort).

    ``faults`` applies a :class:`repro.faults.plan.FaultPlan` —
    adversarial delivery timing for the generated-program fuzz arm.
    With ``capture=True`` the final contents of every materialized
    buffer are returned on :attr:`SimOutcome.payloads`, one dict per
    rank, for bit-for-bit comparison across lowering targets.
    """
    default_target = Target.parse(target)
    machine = model if model is not None else gemini_model()
    order, symmetric = _plan_buffers(program, default_target)
    extras = dict(extra_vars or {})
    engine = Engine(nprocs, max_time=max_time, profile=profile,
                    sanitize=bool(sanitize), faults=faults)
    if sanitize == "collect" and engine.sanitizer is not None:
        engine.sanitizer.collect = True

    def main(env: Env) -> dict[str, list[float]] | None:
        mpi.init(env, machine)  # fix the machine model for all targets
        buffers = _allocate(env, order, symmetric)
        variables: dict[str, Any] = {"nprocs": env.size,
                                     "size": env.size,
                                     "rank": env.rank, **extras}
        _Executor(env, buffers, variables, default_target).run(
            program.nodes)
        comm_flush(env)
        if not capture:
            return None
        return {name: np.asarray(
            buf.data if hasattr(buf, "data") else buf
        ).reshape(-1).tolist() for name, buf in buffers.items()}

    result = engine.run(main)
    times = tuple(result.finish_times)
    races: tuple[str, ...] = ()
    if engine.sanitizer is not None and engine.sanitizer.collect:
        races = tuple(str(r) for r in engine.sanitizer.races)
    return SimOutcome(nprocs=nprocs, target=default_target.value,
                      modeled_time=max(times), finish_times=times,
                      profile=result.profile, stats=engine.stats,
                      payloads=(tuple(result.values) if capture
                                else None),
                      races=races)


def simulate_all_targets(program: Program, nprocs: int = 8, *,
                         targets: "list[Target] | None" = None,
                         **kwargs: Any) -> dict[str, SimOutcome]:
    """Batch entry point: run the program once per lowering target.

    ``kwargs`` are forwarded to :func:`simulate_program`; the result is
    keyed by target keyword. A directive's explicit ``target`` clause
    still wins inside each run, exactly as in the verifier sweep.
    """
    swept = list(targets) if targets else list(Target)
    return {t.value: simulate_program(program, nprocs, target=t,
                                      **kwargs)
            for t in swept}


# ---------------------------------------------------------------------------
# Buffer materialization


def _plan_buffers(program: Program, default_target: Target
                  ) -> tuple[list[BufferDecl], frozenset[str]]:
    """Allocation order + the names that must be symmetric.

    SHMEM requires every receive buffer to be a symmetric object, and
    ``shmem.malloc`` is collective — every rank must allocate the same
    shapes in the same order. Planning statically (declaration order,
    symmetric-or-not decided from the merged clauses) guarantees that.
    """
    used = _used_buffer_names(program)
    order: list[BufferDecl] = []
    for name, decl in program.decls.items():
        if name not in used:
            continue
        if not isinstance(decl.ctype, PrimitiveType):
            raise ProgramSimError(
                f"buffer {name!r} has a composite element type; the "
                "program simulator materializes primitive buffers only")
        if decl.length is None:
            raise ProgramSimError(
                f"buffer {name!r} is declared as a pointer; its length "
                "is unknown so the simulator cannot materialize it")
        order.append(decl)
    missing = sorted(used - set(program.decls))
    if missing:
        raise ProgramSimError(
            f"directive buffers {missing} have no declaration")
    symmetric = frozenset(
        base_identifier(rb)
        for clauses in _merged_clause_sets(program)
        if (clauses.target or default_target) is Target.SHMEM
        for rb in clauses.rbuf)
    return order, symmetric


def _used_buffer_names(program: Program) -> frozenset[str]:
    names: set[str] = set()
    for clauses in _merged_clause_sets(program):
        for b in clauses.sbuf + clauses.rbuf:
            names.add(base_identifier(b))
    return frozenset(names)


def _merged_clause_sets(program: Program) -> list[ClauseExprs]:
    """Every comm_p2p's clauses with its region's merged in."""
    out: list[ClauseExprs] = []

    def walk(nodes: list[Node], region: ClauseExprs | None) -> None:
        for node in nodes:
            if isinstance(node, ParamRegionNode):
                walk(node.body, node.clauses)
            elif isinstance(node, P2PNode):
                merged = (region.merged_into(node.clauses)
                          if region is not None else node.clauses)
                out.append(merged)
                walk(node.body, region)

    walk(program.nodes, None)
    return out


def _allocate(env: Env, order: list[BufferDecl],
              symmetric: frozenset[str]) -> dict[str, Any]:
    """Materialize the declared buffers on one rank."""
    buffers: dict[str, Any] = {}
    for decl in order:
        dtype = decl.ctype.np_dtype  # planned: primitive types only
        assert decl.length is not None
        if decl.name in symmetric:
            buffers[decl.name] = shmem.init(env).malloc(
                decl.length, dtype)
        else:
            buffers[decl.name] = np.zeros(decl.length, dtype=dtype)
    return buffers


# ---------------------------------------------------------------------------
# Program walk


class _Executor:
    """Replays the node tree through the runtime DSL on one rank."""

    def __init__(self, env: Env, buffers: dict[str, Any],
                 variables: dict[str, Any],
                 default_target: Target) -> None:
        self.env = env
        self.buffers = buffers
        self.variables = variables
        self.default_target = default_target

    def run(self, nodes: list[Node]) -> None:
        self._walk(nodes, None)

    def _walk(self, nodes: list[Node],
              region_clauses: ClauseExprs | None) -> None:
        for node in nodes:
            if isinstance(node, RawCode):
                self._raw(node)
            elif isinstance(node, ParamRegionNode):
                self._region(node)
            else:
                self._p2p(node, region_clauses)

    def _raw(self, node: RawCode) -> None:
        sanitizer = self.env.engine.sanitizer
        for offset, line in enumerate(node.lines):
            for match in _COMPUTE.finditer(line):
                micros = exprs.evaluate(match.group(1), self.variables)
                self.env.compute(float(micros) * 1e-6)
            for match in _ASSIGN.finditer(line):
                name = match.group(1)
                index = match.group(2).strip()
                if sanitizer is not None:
                    self._raw_write(sanitizer, name, index,
                                    node.line + offset)
                if match.group(3) is None:
                    rhs = line[match.end():]
                    end = rhs.find(";")
                    self._raw_store(name, index,
                                    rhs[:end] if end != -1 else rhs)

    def _raw_store(self, name: str, index: str, rhs: str) -> None:
        """Perform an evaluable plain assignment on the real buffer.

        Anything outside the clause-expression language (function
        calls, unknown names, non-integer indices) is silently left as
        C text, exactly as before — only the evaluable stores that seed
        generated programs with rank-distinct data take effect.
        """
        buf = self.buffers.get(name)
        if buf is None:
            return
        try:
            idx = exprs.evaluate(index, self.variables)
            value = exprs.evaluate(rhs.strip(), self.variables)
            if isinstance(idx, bool) or not isinstance(idx, int):
                return
            arr = np.asarray(buf.data if hasattr(buf, "data") else buf)
            if 0 <= idx < arr.size:
                arr[idx] = value
        except (ReproError, TypeError, ValueError):
            return

    def _raw_write(self, sanitizer: Any, name: str, index: str,
                   line: int) -> None:
        """Record one raw-code buffer assignment as a sanitized write.

        An evaluable index narrows the write to one element; anything
        else conservatively covers the whole buffer (mirroring the
        static side's interval widening).
        """
        buf = self.buffers.get(name)
        if buf is None:
            return
        arr = np.asarray(buf.data if hasattr(buf, "data") else buf)
        item = arr.dtype.itemsize
        try:
            idx = exprs.evaluate(index, self.variables)
            lo, hi = int(idx) * item, (int(idx) + 1) * item
        except (ReproError, TypeError, ValueError):
            lo, hi = 0, arr.nbytes
        lo = max(0, min(lo, arr.nbytes))
        hi = max(lo, min(hi, arr.nbytes))
        sanitizer.write(self.env.rank, arr, lo, hi,
                        f"the assignment to {name}[{index}] at line "
                        f"{line}")

    def _region(self, node: ParamRegionNode) -> None:
        kwargs: dict[str, Any] = {}
        if node.clauses.place_sync is not None:
            kwargs["place_sync"] = node.clauses.place_sync
        if "max_comm_iter" in node.clauses.exprs:
            kwargs["max_comm_iter"] = int(exprs.evaluate(
                node.clauses.exprs["max_comm_iter"], self.variables))
        with comm_parameters(self.env, **kwargs):
            self._walk(node.body, node.clauses)

    def _p2p(self, node: P2PNode,
             region_clauses: ClauseExprs | None) -> None:
        merged = (region_clauses.merged_into(node.clauses)
                  if region_clauses is not None else node.clauses)
        merged.require_complete()
        kwargs: dict[str, Any] = {
            "sender": self._rank_of(merged, "sender"),
            "receiver": self._rank_of(merged, "receiver"),
            "sbuf": [self._buffer(b) for b in merged.sbuf],
            "rbuf": [self._buffer(b) for b in merged.rbuf],
            "target": merged.target or self.default_target,
        }
        if "sendwhen" in merged.exprs:
            kwargs["sendwhen"] = bool(exprs.evaluate(
                merged.exprs["sendwhen"], self.variables))
            kwargs["receivewhen"] = bool(exprs.evaluate(
                merged.exprs["receivewhen"], self.variables))
        if "count" in merged.exprs:
            kwargs["count"] = int(exprs.evaluate(
                merged.exprs["count"], self.variables))
        prof = self.env.engine.profile
        if prof is not None:
            prof.push_label(self.env.rank, f"p2p@L{node.line}")
        try:
            with comm_p2p(self.env, **kwargs):
                # The body is the overlap window: it executes while the
                # posted transfers are in flight.
                self._walk(node.body, region_clauses)
        finally:
            if prof is not None:
                prof.pop_label(self.env.rank)

    def _rank_of(self, merged: ClauseExprs, clause: str) -> int:
        value = exprs.evaluate(merged.exprs[clause], self.variables)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProgramSimError(
                f"{clause} expression {merged.exprs[clause]!r} does not "
                f"evaluate to an integer rank (got {value!r})")
        return value

    def _buffer(self, expr: str) -> Any:
        name = base_identifier(expr)
        try:
            return self.buffers[name]
        except KeyError:  # pragma: no cover - caught by _plan_buffers
            raise ProgramSimError(
                f"buffer expression {expr!r} names no declared "
                "buffer") from None
