"""Symbolic byte-interval access sets for directive buffers.

The CI04x race pass (:mod:`repro.core.analysis.races`) needs to know
*which bytes* of a buffer each access touches. This module derives
that from what the clauses declare: a buffer expression (``buf``,
``&buf[p]``), a count expression (explicit ``count`` clause or the
Section III-B inferred minimum array length), the declared element
type's storage size, and the per-rank variable bindings the verifier
unrolled with.

Derivation is conservative: when an offset or count cannot be
evaluated statically (loop-carried ``max_comm_iter`` indices, unbound
free names, pointer-only declarations), the interval *widens* to the
whole declared allocation and the finding it supports is demoted from
proof to warning — widening never shrinks an access, so race freedom
claimed on widened intervals is still sound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.core import exprs
from repro.core.analysis.independence import base_identifier
from repro.core.ir import BufferDecl
from repro.errors import ReproError

#: ``&buf[expr]`` / ``buf[expr]`` — the single-subscript forms the
#: pragma buffer lists use (paper Listing 3).
_SUBSCRIPT = re.compile(r"^\s*&?\s*[A-Za-z_]\w*\s*\[(.*)\]\s*$",
                        re.DOTALL)


@dataclass(frozen=True)
class ByteInterval:
    """A half-open byte range ``[lo, hi)`` within one allocation.

    ``hi`` is ``None`` when the extent is unknown (pointer declaration
    with no length); ``widened`` marks intervals grown to the whole
    allocation because an offset/count was not statically evaluable.
    """

    lo: int
    hi: int | None
    widened: bool = False

    def overlap(self, other: "ByteInterval") -> "ByteInterval | None":
        """The common byte range, or None when disjoint."""
        lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        if hi is not None and hi <= lo:
            return None
        return ByteInterval(lo, hi,
                            widened=self.widened or other.widened)

    def describe(self) -> str:
        """Evidence spelling: ``bytes [lo, hi)`` (``...`` = unknown)."""
        hi = "..." if self.hi is None else str(self.hi)
        tag = ", widened" if self.widened else ""
        return f"bytes [{self.lo}, {hi}){tag}"


def element_size_of(decl: BufferDecl | None) -> int:
    """Declared element storage size in bytes (1 when undeclared)."""
    if decl is None:
        return 1
    return int(decl.ctype.size)


def widened_interval(decl: BufferDecl | None) -> ByteInterval:
    """The whole declared allocation, marked widened."""
    if decl is None or decl.length is None:
        return ByteInterval(0, None, widened=True)
    return ByteInterval(0, decl.length * element_size_of(decl),
                        widened=True)


def _evaluate_int(expr: str, variables: dict[str, Any]) -> int | None:
    try:
        return int(exprs.evaluate(expr, variables))
    except (ReproError, TypeError, ValueError):
        return None


def buffer_interval(buffer_expr: str, count_expr: str | None,
                    decls: dict[str, BufferDecl],
                    variables: dict[str, Any]) -> ByteInterval:
    """Bytes a directive transfer touches through one buffer expression.

    ``count_expr`` is the directive's count in *elements* (explicit
    clause text or the inferred literal); ``None`` widens. The offset
    comes from the subscript in ``buffer_expr`` (0 for a plain name).
    Out-of-range intervals are clamped to the declared allocation —
    oversized counts are CI103's finding, not a new race.
    """
    decl = decls.get(base_identifier(buffer_expr))
    esize = element_size_of(decl)
    m = _SUBSCRIPT.match(buffer_expr)
    if m is None:
        offset: int | None = 0
    else:
        offset = _evaluate_int(m.group(1), variables)
    count = (None if count_expr is None
             else _evaluate_int(count_expr, variables))
    if offset is None or count is None or offset < 0 or count < 0:
        return widened_interval(decl)
    lo = offset * esize
    hi = (offset + count) * esize
    if decl is not None and decl.length is not None:
        cap = decl.length * esize
        lo = min(lo, cap)
        hi = min(hi, cap)
    return ByteInterval(lo, hi)


def write_interval(name: str, index_expr: str,
                   decls: dict[str, BufferDecl],
                   variables: dict[str, Any]) -> ByteInterval:
    """Bytes one raw-code assignment ``name[index] = ...`` touches.

    An evaluable index pins a single element; anything else widens to
    the whole declared allocation (the write certainly lands inside
    it, and the demotion keeps unevaluable indices from manufacturing
    error-severity proofs).
    """
    decl = decls.get(name)
    if not index_expr:
        return widened_interval(decl)
    index = _evaluate_int(index_expr, variables)
    if index is None or index < 0:
        return widened_interval(decl)
    esize = element_size_of(decl)
    if decl is not None and decl.length is not None:
        cap = decl.length * esize
        return ByteInterval(min(index * esize, cap),
                            min((index + 1) * esize, cap))
    return ByteInterval(index * esize, (index + 1) * esize)
