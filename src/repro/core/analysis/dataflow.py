"""SPMD dataflow: recover the concrete communication pattern.

Raising the abstraction level makes the communication *analyzable*
(Section I): because a directive carries the sender/receiver/when
expressions explicitly, evaluating them for every rank yields the full
send/receive edge set — something a compiler cannot generally extract
from hand-written MPI. This module does that evaluation, validates the
pattern (every send needs a willing receiver whose ``sender`` clause
points back), and classifies recurring shapes (the ring/shift/pairwise
patterns of the paper's references [1][2][3]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import exprs
from repro.core.ir import ClauseExprs


@dataclass
class CommGraph:
    """The evaluated pattern of one directive over ``nprocs`` ranks."""

    nprocs: int
    #: Directed (sender, receiver) edges, one per sending rank.
    edges: list[tuple[int, int]] = field(default_factory=list)
    #: Ranks whose receivewhen is true, with their expected source.
    expects: dict[int, int] = field(default_factory=dict)

    @property
    def senders(self) -> set[int]:
        """Ranks with at least one outgoing edge."""
        return {s for s, _ in self.edges}

    @property
    def receivers(self) -> set[int]:
        """Ranks whose receivewhen evaluated true."""
        return set(self.expects)

    def out_degree(self, rank: int) -> int:
        """Number of messages this rank sends."""
        return sum(1 for s, _ in self.edges if s == rank)

    def in_degree(self, rank: int) -> int:
        """Number of messages destined to this rank."""
        return sum(1 for _, d in self.edges if d == rank)


@dataclass(frozen=True)
class MatchingIssue:
    """One inconsistency between the send and receive sides.

    ``src``/``dst`` identify the offending sender→receiver pair so
    every rendering names both ends of the transfer, not just the rank
    the issue was detected on.
    """

    kind: str       # "unreceived-send" | "unsatisfied-receive" | ...
    rank: int
    detail: str
    src: int | None = None
    dst: int | None = None

    def __str__(self) -> str:
        pair = (f" ({self.src}->{self.dst})"
                if self.src is not None and self.dst is not None else "")
        return f"[{self.kind}] rank {self.rank}{pair}: {self.detail}"


def _vars_for(rank: int, nprocs: int,
              extra: dict | None = None) -> dict:
    v = {"rank": rank, "nprocs": nprocs, "size": nprocs}
    if extra:
        v.update(extra)
    return v


def comm_graph(clauses: ClauseExprs, nprocs: int,
               extra_vars: dict | None = None) -> CommGraph:
    """Evaluate a directive's clauses for every rank.

    ``extra_vars`` supplies values for free names beyond
    ``rank``/``nprocs`` (e.g. loop bounds) — same bindings on all ranks.
    """
    clauses.require_complete()
    g = CommGraph(nprocs)
    for rank in range(nprocs):
        v = _vars_for(rank, nprocs, extra_vars)
        sendwhen = (bool(exprs.evaluate(clauses.exprs["sendwhen"], v))
                    if "sendwhen" in clauses.exprs else True)
        recvwhen = (bool(exprs.evaluate(clauses.exprs["receivewhen"], v))
                    if "receivewhen" in clauses.exprs else True)
        if sendwhen:
            dest = exprs.evaluate(clauses.exprs["receiver"], v)
            g.edges.append((rank, int(dest)))
        if recvwhen:
            src = exprs.evaluate(clauses.exprs["sender"], v)
            g.expects[rank] = int(src)
    return g


def validate_matching(graph: CommGraph) -> list[MatchingIssue]:
    """Check the send side against the receive side.

    Issues found:

    * a sender whose destination is out of range or not receiving;
    * a receiving rank whose expected source never sends to it;
    * a destination expecting a *different* source than the actual
      sender (mismatched sender clause).
    """
    issues: list[MatchingIssue] = []
    incoming: dict[int, list[int]] = {}
    for s, d in graph.edges:
        if not 0 <= d < graph.nprocs:
            issues.append(MatchingIssue(
                "invalid-destination", s,
                f"receiver expression evaluates to {d}, outside "
                f"0..{graph.nprocs - 1}", src=s, dst=d))
            continue
        incoming.setdefault(d, []).append(s)
        if d not in graph.expects:
            issues.append(MatchingIssue(
                "unreceived-send", s,
                f"sends to rank {d}, whose receivewhen is false",
                src=s, dst=d))
        elif graph.expects[d] != s:
            issues.append(MatchingIssue(
                "mismatched-sender", d,
                f"expects source {graph.expects[d]} but rank {s} "
                f"sends to it", src=s, dst=d))
    for r, src in graph.expects.items():
        if not 0 <= src < graph.nprocs:
            issues.append(MatchingIssue(
                "invalid-source", r,
                f"sender expression evaluates to {src}, outside "
                f"0..{graph.nprocs - 1}", src=src, dst=r))
        elif src not in [s for s in incoming.get(r, [])]:
            issues.append(MatchingIssue(
                "unsatisfied-receive", r,
                f"expects a message from rank {src}, which never sends "
                "to it", src=src, dst=r))
    return issues


def classify_pattern(graph: CommGraph) -> str:
    """Name the recurring point-to-point shape, if recognizable.

    Returns one of ``"ring"``, ``"shift"``, ``"pairwise"``,
    ``"fan-in"``, ``"fan-out"``, ``"none"`` or ``"irregular"``.
    """
    n = graph.nprocs
    edges = sorted(set(graph.edges))
    if not edges:
        return "none"
    # Ring: every rank sends to (rank+k)%n for one fixed k, all ranks.
    if len(edges) == n and len(graph.senders) == n:
        ks = {(d - s) % n for s, d in edges}
        if len(ks) == 1 and 0 not in ks:
            return "ring"
    # Pairwise: edges form disjoint 2-cycles or disjoint pairs.
    # (Checked before shift: even->odd neighbours are both, and the
    # pairwise reading is the stronger structural fact.)
    pair_map = dict(edges)
    if len(pair_map) == len(edges):
        if all(pair_map.get(d) == s for s, d in edges):
            return "pairwise"
        dsts = [d for _, d in edges]
        if len(set(dsts)) == len(dsts) and \
                set(dsts).isdisjoint(graph.senders):
            return "pairwise"
    # Shift: a partial ring (uniform offset, some ranks silent at the
    # boundary, no wraparound).
    ks = {d - s for s, d in edges}
    if len(ks) == 1 and 0 not in ks and len(edges) < n:
        return "shift"
    # Fan-in / fan-out: one hub.
    dsts = {d for _, d in edges}
    srcs = {s for s, _ in edges}
    if len(dsts) == 1 and len(edges) > 1:
        return "fan-in"
    if len(srcs) == 1 and len(edges) > 1:
        return "fan-out"
    return "irregular"
