"""Synchronization planning: consolidation + the place_sync policies.

Given a parsed :class:`~repro.core.ir.Program`, decide where generated
synchronization calls go and how many there are — the quantity the
paper's Figure 4 experiment turns on. The plan records, per region,
which sync *group* its pending communication joins and where each
group's single consolidated call is emitted:

* ``END_PARAM_REGION`` — own group, call at this region's end;
* ``BEGIN_NEXT_PARAM_REGION`` — group deferred to the next region's
  beginning;
* ``END_ADJ_PARAM_REGIONS`` — all regions of a textually adjacent chain
  that specify it share one group, emitted at the last chain member's
  end.

Independence partitioning happens *within* each region: dependent
instances split into sequential groups (see
:func:`repro.core.analysis.independence.independent_groups`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.independence import independent_groups
from repro.core.clauses import SyncPlacement
from repro.core.ir import P2PNode, ParamRegionNode, Program


@dataclass
class SyncPoint:
    """One emitted synchronization call."""

    #: "end" or "begin"
    position: str
    #: The IR node the call is textually attached to: a region for
    #: consolidated syncs, or a standalone ``comm_p2p`` instance (one
    #: outside any region) that synchronizes individually.
    node: ParamRegionNode | P2PNode
    #: Number of p2p instances the call covers.
    covered_instances: int

    @property
    def region(self) -> ParamRegionNode:
        """The region the call is attached to.

        Raises :class:`TypeError` for a standalone-instance point; use
        :attr:`node` (or :meth:`p2p_instances`) when the point may be
        attached to a bare ``comm_p2p``.
        """
        if not isinstance(self.node, ParamRegionNode):
            raise TypeError(
                "SyncPoint is attached to a standalone comm_p2p, not a "
                "region; use .node instead of .region")
        return self.node

    def p2p_instances(self) -> list[P2PNode]:
        """The p2p instances this synchronization call covers."""
        if isinstance(self.node, ParamRegionNode):
            return self.node.p2p_instances()
        return [self.node]


@dataclass
class SyncPlan:
    """The program's synchronization schedule."""

    points: list[SyncPoint] = field(default_factory=list)
    #: Per-region intra-region dependent splits (extra syncs forced by
    #: buffer dependences inside a region).
    forced_splits: dict[int, int] = field(default_factory=dict)

    @property
    def total_sync_calls(self) -> int:
        """Planned synchronization calls, incl. forced splits."""
        return len(self.points) + sum(self.forced_splits.values())

    def naive_sync_calls(self, program: Program) -> int:
        """What unconsolidated code would emit: one wait per instance
        (send and receive sides counted once here — per-instance)."""
        return len(program.all_p2p())

    def reduction_factor(self, program: Program) -> float:
        """Per-instance syncs avoided by consolidation."""
        naive = self.naive_sync_calls(program)
        mine = max(1, self.total_sync_calls)
        return naive / mine


def plan_synchronization(program: Program) -> SyncPlan:
    """Compute the consolidated synchronization schedule."""
    plan = SyncPlan()
    for chain in program.adjacent_region_chains():
        _plan_chain(plan, chain)
    # Standalone p2p directives (outside any region) sync individually.
    region_members = set()
    for r in program.regions():
        region_members.update(id(p) for p in r.p2p_instances())
    for node in program.nodes:
        if isinstance(node, P2PNode) and id(node) not in region_members:
            plan.points.append(SyncPoint("end", node, 1))
    return plan


def _plan_chain(plan: SyncPlan, chain: list[ParamRegionNode]) -> None:
    adj_group: list[ParamRegionNode] = []

    def flush_adj_group() -> None:
        if not adj_group:
            return
        covered = sum(len(r.p2p_instances()) for r in adj_group)
        # A chain of empty regions has nothing to synchronize; emitting
        # a zero-coverage call would be dead code in every lowering.
        if covered:
            plan.points.append(SyncPoint("end", adj_group[-1], covered))
        adj_group.clear()

    deferred_from_prev: ParamRegionNode | None = None
    for region in chain:
        instances = region.p2p_instances()
        groups = independent_groups(instances)
        # Dependent splits inside the region force extra syncs before
        # the final placement-controlled one.
        if len(groups) > 1:
            plan.forced_splits[id(region)] = len(groups) - 1

        if deferred_from_prev is not None:
            covered = len(deferred_from_prev.p2p_instances())
            if covered:
                plan.points.append(SyncPoint("begin", region, covered))
            deferred_from_prev = None

        placement = region.place_sync
        if placement is SyncPlacement.END_ADJ_PARAM_REGIONS:
            adj_group.append(region)
            continue
        flush_adj_group()
        if placement is SyncPlacement.END_PARAM_REGION:
            if instances:  # empty region: nothing to synchronize
                plan.points.append(
                    SyncPoint("end", region, len(instances)))
        elif placement is SyncPlacement.BEGIN_NEXT_PARAM_REGION:
            deferred_from_prev = region
    flush_adj_group()
    if deferred_from_prev is not None:
        # No next region exists: the sync degrades to region end (the
        # runtime requires an explicit flush; statically we can place
        # it for the user and note it).
        covered = len(deferred_from_prev.p2p_instances())
        if covered:
            plan.points.append(
                SyncPoint("end", deferred_from_prev, covered))
