"""Performance advisor: the CI1xx diagnostics and their rewrites.

The correctness analyses (:mod:`repro.core.analysis.verify`) prove what
a directive program *must not* do; this pass reports what it *fails to
exploit*. Each finding is a CI1xx :class:`~repro.core.analysis.codes.
Diagnostic` carrying a net-model **estimated saving in modeled
seconds** for the analyzed ``(nprocs, target, netmodel)`` triple, and —
when the advisor knows a concrete cure — a :class:`Rewrite` describing
a pragma-source edit that :mod:`repro.core.analysis.fix` can apply and
prove.

Detected advisories (see ``docs/LINT.md``):

* **CI100** — adjacent directives with independent buffers synchronize
  separately where one consolidated call would do (Section III-A);
* **CI101** — an overlap body is empty while independent work sits
  right after the synchronization point;
* **CI102** — the synchronization completes earlier than the first use
  of the received data, with movable independent work in between;
* **CI103** — an explicit ``count`` exceeds the smallest declared
  buffer length (the runtime would reject the transfer);
* **CI110** — an explicit lowering target is modeled slower than an
  alternative (measured by actually simulating the alternatives).

The advisor is deliberately *heuristic*: a proposed rewrite may be
wrong (e.g. merging directives whose overlap bodies read each other's
buffers). Soundness lives in the proof gate — every rewrite is
re-verified CI0xx-clean on all targets and re-simulated before it is
accepted, so the detector may be optimistic without risk.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core import exprs
from repro.core.analysis import codes
from repro.core.analysis.independence import buffer_names
from repro.core.analysis.infer import infer_count_static, infer_element_type
from repro.core.analysis.progsim import simulate_program
from repro.core.clauses import DEFAULT_TARGET, SyncPlacement, Target
from repro.core.ir import (
    ClauseExprs,
    Node,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.errors import ReproError
from repro.netmodel import gemini_model
from repro.netmodel.base import MachineModel, TransportParams

__all__ = ["Finding", "Rewrite", "advise_program", "apply_rewrite"]

_IDENT = re.compile(r"[A-Za-z_]\w*")
_COMPUTE = re.compile(r"\bcompute_us\s*\(([^()]*)\)")
#: Lines the hoist pass must not move: declarations and control flow.
_UNMOVABLE = re.compile(
    r"^\s*(?:static\s+|const\s+)?(?:double|float|int|long|unsigned|char|"
    r"short|struct|for|while|if|else|return|do|switch)\b|[{}]")

_KIND = {Target.MPI_2SIDE: "mpi2s", Target.MPI_1SIDE: "mpi1s",
         Target.SHMEM: "shmem"}

#: A retarget advisory must beat the explicit target by this factor.
_RETARGET_MARGIN = 0.9


@dataclass(frozen=True)
class Rewrite:
    """One concrete pragma-source edit curing a CI1xx finding.

    Rewrites are located by directive source line, which is only stable
    for the program they were derived from — the fix engine re-runs the
    advisor after every accepted edit. ``signature`` is the structural
    identity (kind + buffer names) used to remember *rejected* rewrites
    across re-advises, where lines have shifted.
    """

    kind: str                     # merge-standalone | merge-regions |
    #                               hoist-overlap | tighten-count |
    #                               retarget
    code: str                     # the CI1xx code this cures
    line: int                     # anchor directive line
    lines: tuple[int, ...] = ()   # merge members / hoist (raw line,)
    n_lines: int = 0              # hoist: raw lines to move
    value: str = ""               # tighten: new count; retarget: keyword
    signature: str = ""


@dataclass(frozen=True)
class Finding:
    """One advisory with its (optional) curing rewrite."""

    diagnostic: codes.Diagnostic
    rewrite: Rewrite | None = None


@dataclass
class _Ctx:
    """Everything one advise pass needs."""

    program: Program
    nprocs: int
    target: Target
    variables: dict[str, int]
    model: MachineModel
    findings: list[Finding] = field(default_factory=list)


def advise_program(program: Program, nprocs: int = 8, *,
                   target: Target | str = DEFAULT_TARGET,
                   extra_vars: dict[str, int] | None = None,
                   model: MachineModel | None = None,
                   simulate: bool = True) -> list[Finding]:
    """Run every advisory pass over ``program``.

    ``target`` is the default lowering assumed for directives without
    an explicit ``target`` clause; ``extra_vars`` binds free names as
    in the verifier. ``simulate=False`` skips the CI110 pass (the only
    one that runs the simulator during *detection*).

    Findings are returned in diagnostic sort order. A finding whose
    saving cannot be estimated is dropped — the advisor only speaks
    when the net model can quantify the win.
    """
    ctx = _Ctx(program=program, nprocs=nprocs,
               target=Target.parse(target),
               variables={"nprocs": nprocs, "size": nprocs, "rank": 0,
                          **(extra_vars or {})},
               model=model if model is not None else gemini_model())
    _pass_consolidation(ctx)
    _pass_overlap(ctx)
    _pass_count(ctx)
    if simulate:
        _pass_retarget(ctx, extra_vars or {})
    ctx.findings.sort(key=lambda f: f.diagnostic.sort_key())
    return ctx.findings


# ---------------------------------------------------------------------------
# Shared measurement helpers


def _effective_target(clauses: ClauseExprs, ctx: _Ctx) -> Target:
    return clauses.target or ctx.target


def _transport(ctx: _Ctx, target: Target) -> TransportParams:
    return ctx.model.transport(_KIND[target])


def _sync_cost(ctx: _Ctx, target: Target, nreqs: int) -> float:
    """Modeled cost of one synchronization call on ``target``."""
    if target is Target.MPI_2SIDE:
        return ctx.model.waitall_cost(nreqs)
    if target is Target.MPI_1SIDE:
        return (ctx.model.fence_overhead
                + _transport(ctx, target).wire_time(8))
    return ctx.model.quiet_overhead


def _message_bytes(clauses: ClauseExprs, ctx: _Ctx) -> int | None:
    """Bytes per buffer transfer of a resolved directive, or None."""
    try:
        count = int(exprs.evaluate(
            infer_count_static(clauses, ctx.program.decls),
            ctx.variables))
        isz = int(infer_element_type(clauses, ctx.program.decls).size)
    except ReproError:
        return None
    return count * isz


def _merged(node: P2PNode, region: ParamRegionNode | None) -> ClauseExprs:
    if region is None:
        return node.clauses
    return region.clauses.merged_into(node.clauses)


def _serial_cost(ctx: _Ctx, clauses: ClauseExprs) -> float | None:
    """Modeled post+wait cost of one directive synchronized alone."""
    nbytes = _message_bytes(clauses, ctx)
    if nbytes is None:
        return None
    target = _effective_target(clauses, ctx)
    tp = _transport(ctx, target)
    nbufs = max(len(clauses.sbuf), 1)
    return (nbufs * (tp.send_overhead(nbytes) + tp.wire_time(nbytes))
            + _sync_cost(ctx, target, 2 * nbufs))


# ---------------------------------------------------------------------------
# CI100 — missed consolidation


def _pass_consolidation(ctx: _Ctx) -> None:
    _consolidate_standalone(ctx)
    _consolidate_regions(ctx)


def _standalone_runs(program: Program) -> list[list[P2PNode]]:
    """Maximal runs of consecutive top-level standalone directives."""
    runs: list[list[P2PNode]] = []
    current: list[P2PNode] = []
    for node in program.nodes:
        if isinstance(node, P2PNode):
            current.append(node)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    return runs


def _names_pairwise_disjoint(name_sets: list[set[str]]) -> bool:
    seen: set[str] = set()
    for names in name_sets:
        if names & seen:
            return False
        seen |= names
    return True


def _consolidation_saving(ctx: _Ctx, clause_sets: list[ClauseExprs]
                          ) -> float | None:
    """Serial-sync cost minus one consolidated sync over the group."""
    serial = 0.0
    sends = 0.0
    wires: list[float] = []
    total_reqs = 0
    targets: list[Target] = []
    for clauses in clause_sets:
        nbytes = _message_bytes(clauses, ctx)
        if nbytes is None:
            return None
        target = _effective_target(clauses, ctx)
        targets.append(target)
        tp = _transport(ctx, target)
        nbufs = max(len(clauses.sbuf), 1)
        cost = _serial_cost(ctx, clauses)
        if cost is None:
            return None
        serial += cost
        sends += nbufs * tp.send_overhead(nbytes)
        wires.append(tp.wire_time(nbytes))
        total_reqs += 2 * nbufs
    consolidated = (sends + max(wires)
                    + _sync_cost(ctx, targets[0], total_reqs))
    return max(serial - consolidated, 0.0)


def _consolidate_standalone(ctx: _Ctx) -> None:
    for run in _standalone_runs(ctx.program):
        name_sets = [buffer_names(n.clauses) for n in run]
        if not _names_pairwise_disjoint(name_sets):
            continue
        saving = _consolidation_saving(
            ctx, [n.clauses for n in run])
        if saving is None:
            continue
        lines = tuple(n.line for n in run)
        rewrite = Rewrite(
            kind="merge-standalone", code="CI100", line=lines[0],
            lines=lines,
            signature="merge-standalone:" + "|".join(
                ",".join(sorted(s)) for s in name_sets))
        ctx.findings.append(Finding(
            codes.make(
                "CI100", lines[0],
                f"{len(run)} adjacent standalone directives with "
                f"independent buffers synchronize separately "
                f"({len(run)} sync calls where 1 would do)",
                directive=lines[0], target=ctx.target.value,
                fixit="wrap the directives at lines "
                      f"{list(lines)} in one comm_parameters region",
                saving_s=saving),
            rewrite))


def _consolidate_regions(ctx: _Ctx) -> None:
    for chain in ctx.program.adjacent_region_chains():
        if len(chain) < 2:
            continue
        if any(r.clauses.place_sync is not None for r in chain):
            continue  # an explicit placement is respected as written
        name_sets = []
        clause_sets = []
        for region in chain:
            instances = region.p2p_instances()
            if not instances:
                break
            names: set[str] = set()
            for inst in instances:
                merged = _merged(inst, region)
                names |= buffer_names(merged)
                clause_sets.append(merged)
            name_sets.append(names)
        else:
            if not _names_pairwise_disjoint(name_sets):
                continue
            saving = _consolidation_saving(ctx, clause_sets)
            if saving is None:
                continue
            lines = tuple(r.line for r in chain)
            rewrite = Rewrite(
                kind="merge-regions", code="CI100", line=lines[0],
                lines=lines,
                signature="merge-regions:" + "|".join(
                    ",".join(sorted(s)) for s in name_sets))
            ctx.findings.append(Finding(
                codes.make(
                    "CI100", lines[0],
                    f"{len(chain)} adjacent comm_parameters regions "
                    "with independent buffers synchronize separately "
                    f"({len(chain)} sync calls where 1 would do)",
                    directive=lines[0], target=ctx.target.value,
                    fixit="give the regions at lines "
                          f"{list(lines)} place_sync("
                          "END_ADJ_PARAM_REGIONS) so one call covers "
                          "the chain",
                    saving_s=saving),
                rewrite))


# ---------------------------------------------------------------------------
# CI101 / CI102 — forfeited overlap & eager sync


def _compute_us_of(lines: list[str], variables: dict[str, int]) -> float:
    total = 0.0
    for line in lines:
        for match in _COMPUTE.finditer(line):
            try:
                total += float(exprs.evaluate(match.group(1), variables))
            except ReproError:
                return 0.0
    return total


def _body_compute_us(node: P2PNode, variables: dict[str, int]) -> float:
    total = 0.0
    for child in node.body:
        if isinstance(child, RawCode):
            total += _compute_us_of(child.lines, variables)
    return total


def _hoistable_prefix(raw: RawCode, live_names: set[str]) -> int:
    """How many leading lines of ``raw`` may move into an overlap body.

    A line qualifies while it neither touches an in-flight buffer nor
    is a declaration / control-flow construct. Trailing blank lines are
    not counted.
    """
    n = 0
    for i, line in enumerate(raw.lines):
        if not line.strip():
            continue
        if _UNMOVABLE.search(line):
            break
        if set(_IDENT.findall(line)) & live_names:
            break
        n = i + 1
    return n


def _pass_overlap(ctx: _Ctx) -> None:
    nodes = ctx.program.nodes
    for i, node in enumerate(nodes):
        if i + 1 >= len(nodes) or not isinstance(nodes[i + 1], RawCode):
            continue
        raw = nodes[i + 1]
        assert isinstance(raw, RawCode)
        if isinstance(node, P2PNode):
            host: P2PNode = node
            live = buffer_names(node.clauses)
            clause_sets = [node.clauses]
        elif isinstance(node, ParamRegionNode):
            if node.place_sync is not SyncPlacement.END_PARAM_REGION:
                continue  # sync is not at this boundary
            instances = node.p2p_instances()
            if not instances:
                continue
            host = instances[-1]
            live = set()
            clause_sets = []
            for inst in instances:
                merged = _merged(inst, node)
                live |= buffer_names(merged)
                clause_sets.append(merged)
        else:
            continue
        n_lines = _hoistable_prefix(raw, live)
        if n_lines == 0:
            continue
        hoist_us = _compute_us_of(raw.lines[:n_lines], ctx.variables)
        if hoist_us <= 0.0:
            continue  # nothing modeled to hide behind the transfer
        wires = []
        for clauses in clause_sets:
            nbytes = _message_bytes(clauses, ctx)
            if nbytes is None:
                break
            tp = _transport(ctx, _effective_target(clauses, ctx))
            wires.append(tp.wire_time(nbytes))
        if len(wires) != len(clause_sets):
            continue
        saving = min(hoist_us * 1e-6, max(wires))
        code = ("CI101" if _body_compute_us(host, ctx.variables) == 0.0
                else "CI102")
        rewrite = Rewrite(
            kind="hoist-overlap", code=code, line=host.line,
            lines=(raw.line,), n_lines=n_lines,
            signature=f"hoist-overlap:{','.join(sorted(live))}:"
                      f"{n_lines}")
        what = ("the overlap body is empty" if code == "CI101"
                else "the synchronization runs before the first use "
                     "of the received data")
        ctx.findings.append(Finding(
            codes.make(
                code, host.line,
                f"{what} while {n_lines} independent statement line(s) "
                f"(~{hoist_us:.0f} modeled us of compute) follow the "
                "synchronization point",
                directive=host.line, target=ctx.target.value,
                fixit=f"move the {n_lines} line(s) after line "
                      f"{raw.line} into the overlap body of the "
                      f"directive at line {host.line}",
                saving_s=saving),
            rewrite))


# ---------------------------------------------------------------------------
# CI103 — oversized count


def _walk_p2p(program: Program
              ) -> list[tuple[P2PNode, ParamRegionNode | None]]:
    out: list[tuple[P2PNode, ParamRegionNode | None]] = []

    def walk(nodes: list[Node], region: ParamRegionNode | None) -> None:
        for node in nodes:
            if isinstance(node, ParamRegionNode):
                walk(node.body, node)
            elif isinstance(node, P2PNode):
                out.append((node, region))
                walk(node.body, region)

    walk(program.nodes, None)
    return out


def _pass_count(ctx: _Ctx) -> None:
    for node, region in _walk_p2p(ctx.program):
        clauses = _merged(node, region)
        if "count" not in clauses.exprs:
            continue
        names = sorted(buffer_names(clauses))
        lengths = [d.length for n in names
                   if (d := ctx.program.decls.get(n)) is not None
                   and d.length is not None]
        if not lengths:
            continue
        min_len = min(lengths)
        try:
            count = int(exprs.evaluate(clauses.exprs["count"],
                                       ctx.variables))
            isz = int(infer_element_type(
                clauses, ctx.program.decls).size)
        except ReproError:
            continue
        if count <= min_len:
            continue
        target = _effective_target(clauses, ctx)
        tp = _transport(ctx, target)
        nbufs = max(len(clauses.sbuf), 1)
        saving = nbufs * (
            tp.wire_time(count * isz) - tp.wire_time(min_len * isz)
            + tp.send_overhead(count * isz)
            - tp.send_overhead(min_len * isz))
        rewrite = Rewrite(
            kind="tighten-count", code="CI103", line=node.line,
            value=str(min_len),
            signature=f"tighten-count:{','.join(names)}:{min_len}")
        ctx.findings.append(Finding(
            codes.make(
                "CI103", node.line,
                f"count evaluates to {count} but the smallest listed "
                f"buffer holds {min_len} elements; the generated "
                "transfer would overrun it",
                directive=node.line, target=ctx.target.value,
                fixit=f"tighten count to {min_len}",
                saving_s=saving),
            rewrite))


# ---------------------------------------------------------------------------
# CI110 — lowering-target mismatch (measured by simulation)


def _explicit_target_nodes(program: Program
                           ) -> list[P2PNode | ParamRegionNode]:
    out: list[P2PNode | ParamRegionNode] = []

    def walk(nodes: list[Node]) -> None:
        for node in nodes:
            if isinstance(node, (P2PNode, ParamRegionNode)):
                if node.clauses.target is not None:
                    out.append(node)
                walk(node.body)

    walk(program.nodes)
    return out


def _pass_retarget(ctx: _Ctx, extra_vars: dict[str, int]) -> None:
    carriers = _explicit_target_nodes(ctx.program)
    if not carriers:
        return
    try:
        base = simulate_program(
            ctx.program, ctx.nprocs, target=ctx.target,
            extra_vars=extra_vars, model=ctx.model).modeled_time
    except Exception:
        return  # the original does not even run; CI103 et al. apply
    for node in carriers:
        explicit = node.clauses.target
        assert explicit is not None
        best: tuple[float, Target] | None = None
        for alt in Target:
            if alt is explicit:
                continue
            node.clauses.target = alt
            try:
                t = simulate_program(
                    ctx.program, ctx.nprocs, target=ctx.target,
                    extra_vars=extra_vars, model=ctx.model
                ).modeled_time
            except Exception:
                continue
            finally:
                node.clauses.target = explicit
            if best is None or t < best[0]:
                best = (t, alt)
        if best is None or best[0] >= base * _RETARGET_MARGIN:
            continue
        saving = base - best[0]
        rewrite = Rewrite(
            kind="retarget", code="CI110", line=node.line,
            value=best[1].value,
            signature="retarget:"
                      f"{','.join(sorted(buffer_names(node.clauses)))}"
                      f":{best[1].value}")
        ctx.findings.append(Finding(
            codes.make(
                "CI110", node.line,
                f"explicit target {explicit.value} simulates "
                f"{base * 1e6:.2f} us; {best[1].value} simulates "
                f"{best[0] * 1e6:.2f} us on the same model",
                directive=node.line, target=explicit.value,
                fixit=f"retarget the directive to {best[1].value}",
                saving_s=saving),
            rewrite))


# ---------------------------------------------------------------------------
# Applying rewrites


def apply_rewrite(program: Program, rewrite: Rewrite) -> bool:
    """Apply ``rewrite`` to ``program`` (mutating it) if its site still
    exists; returns False when the site cannot be located."""
    if rewrite.kind == "merge-standalone":
        return _apply_merge_standalone(program, rewrite)
    if rewrite.kind == "merge-regions":
        return _apply_merge_regions(program, rewrite)
    if rewrite.kind == "hoist-overlap":
        return _apply_hoist(program, rewrite)
    if rewrite.kind == "tighten-count":
        return _apply_tighten(program, rewrite)
    if rewrite.kind == "retarget":
        return _apply_retarget(program, rewrite)
    return False


def _apply_merge_standalone(program: Program, rw: Rewrite) -> bool:
    wanted = set(rw.lines)
    idxs = [i for i, n in enumerate(program.nodes)
            if isinstance(n, P2PNode) and n.line in wanted]
    if len(idxs) != len(rw.lines):
        return False
    if idxs != list(range(idxs[0], idxs[0] + len(idxs))):
        return False
    members = [program.nodes[i] for i in idxs]
    region = ParamRegionNode(clauses=ClauseExprs(), body=members,
                             line=members[0].line)
    program.nodes[idxs[0]:idxs[-1] + 1] = [region]
    return True


def _apply_merge_regions(program: Program, rw: Rewrite) -> bool:
    wanted = set(rw.lines)
    found = [n for n in program.nodes
             if isinstance(n, ParamRegionNode) and n.line in wanted]
    if len(found) != len(rw.lines):
        return False
    for region in found:
        region.clauses.place_sync = SyncPlacement.END_ADJ_PARAM_REGIONS
    return True


def _apply_hoist(program: Program, rw: Rewrite) -> bool:
    raw_line = rw.lines[0] if rw.lines else -1
    raw = next((n for n in program.nodes
                if isinstance(n, RawCode) and n.line == raw_line), None)
    host = next((n for n in program.all_p2p() if n.line == rw.line),
                None)
    if raw is None or host is None or rw.n_lines <= 0 \
            or rw.n_lines > len(raw.lines):
        return False
    moved = raw.lines[:rw.n_lines]
    del raw.lines[:rw.n_lines]
    host.body.append(RawCode(lines=moved, line=raw.line))
    if not any(ln.strip() for ln in raw.lines):
        program.nodes.remove(raw)
    return True


def _apply_tighten(program: Program, rw: Rewrite) -> bool:
    host = next((n for n in program.all_p2p() if n.line == rw.line),
                None)
    if host is None:
        return False
    host.clauses.exprs["count"] = rw.value
    return True


def _apply_retarget(program: Program, rw: Rewrite) -> bool:
    for node, _region in _walk_p2p(program):
        if node.line == rw.line and node.clauses.target is not None:
            node.clauses.target = Target(rw.value)
            return True
    for node in program.nodes:
        if isinstance(node, ParamRegionNode) and node.line == rw.line \
                and node.clauses.target is not None:
            node.clauses.target = Target(rw.value)
            return True
    return False
