"""Proof-carrying auto-fix: apply advisor rewrites, accept only proofs.

The advisor (:mod:`repro.core.analysis.advisor`) is heuristic; this
module is where soundness lives. For each proposed rewrite, in
diagnostic order:

1. apply it to a freshly parsed program and print the result
   (:meth:`Program.to_source` — the parse/print fixpoint);
2. **verifier gate** — the rewritten program must lint with zero
   error-severity CI0xx findings, which sweeps *all three* lowering
   targets (:func:`repro.core.analysis.lint.lint_program`); CI04x race
   findings additionally reject at *any* severity — a rewrite that may
   introduce a buffer-aliasing race is never a proof-carrying fix;
3. **simulation gate** — the rewritten program's modeled time must not
   regress against the original on any target it can run on
   (:func:`repro.core.analysis.progsim.simulate_program`); an original
   that cannot run at all (e.g. a CI103 count overflow) is treated as
   unboundedly slow, but the rewritten program must run.

Only a rewrite passing both gates lands in the source; every attempt —
accepted or rejected — is recorded as a :class:`FixStep`, so
``repro-lint --fix-dry-run`` can show the full machine-checked ledger.
Rejected rewrites are remembered by structural signature and never
retried, which (with the round cap) guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.advisor import advise_program, apply_rewrite
from repro.core.analysis.codes import RACE_CODES
from repro.core.analysis.lint import lint_program
from repro.core.analysis.progsim import simulate_program
from repro.core.clauses import Target
from repro.core.ir import Program
from repro.core.pragma import parse_program
from repro.errors import ReproError
from repro.netmodel.base import MachineModel

__all__ = ["FixResult", "FixStep", "fix_source", "fix_sources"]

#: Relative tolerance of the simulation gate: "does not regress" allows
#: bit-level jitter but nothing observable.
_SIM_RTOL = 1e-9


@dataclass(frozen=True)
class FixStep:
    """One attempted rewrite and the verdict of its proof gates."""

    code: str                  # CI1xx code the rewrite cures
    kind: str                  # rewrite kind
    line: int                  # anchor directive line (in its source)
    signature: str             # structural identity of the rewrite
    predicted_saving_s: float  # the advisor's net-model estimate
    accepted: bool
    #: Why the rewrite was rejected ("" when accepted).
    reason: str = ""
    #: Modeled seconds per target, before/after. A target the original
    #: cannot run on is absent from ``times_before_s``.
    times_before_s: dict[str, float] = field(default_factory=dict)
    times_after_s: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        out: dict[str, object] = {
            "code": self.code,
            "kind": self.kind,
            "line": self.line,
            "signature": self.signature,
            "predicted_saving_s": self.predicted_saving_s,
            "accepted": self.accepted,
        }
        if self.reason:
            out["reason"] = self.reason
        if self.times_before_s:
            out["times_before_s"] = dict(self.times_before_s)
        if self.times_after_s:
            out["times_after_s"] = dict(self.times_after_s)
        return out


@dataclass
class FixResult:
    """Outcome of one :func:`fix_source` run."""

    source: str          # final (possibly rewritten) source text
    changed: bool
    steps: list[FixStep] = field(default_factory=list)
    rounds: int = 0

    @property
    def accepted(self) -> list[FixStep]:
        """The rewrites that passed both proof gates."""
        return [s for s in self.steps if s.accepted]

    @property
    def rejected(self) -> list[FixStep]:
        """The rewrites the proof gates refused."""
        return [s for s in self.steps if not s.accepted]


def fix_source(source: str, *, nprocs: int = 8,
               extra_vars: dict[str, int] | None = None,
               model: MachineModel | None = None,
               max_rounds: int = 16) -> FixResult:
    """Advise + apply + prove until no applicable rewrite remains.

    Each round re-parses the current source, re-runs the advisor (so
    line numbers and follow-on opportunities are always fresh), and
    attempts the first rewrite not yet tried. The returned
    :class:`FixResult` carries the final source and the full ledger.
    """
    result = FixResult(source=source, changed=False)
    attempted: set[str] = set()
    current = source
    for _round in range(max_rounds):
        result.rounds = _round + 1
        prog = parse_program(current)
        findings = advise_program(prog, nprocs, extra_vars=extra_vars,
                                  model=model)
        candidate = next(
            (f for f in findings
             if f.rewrite is not None
             and f.rewrite.signature not in attempted), None)
        if candidate is None:
            break
        rewrite = candidate.rewrite
        assert rewrite is not None
        attempted.add(rewrite.signature)
        saving = candidate.diagnostic.saving_s or 0.0

        def step(accepted: bool, reason: str = "",
                 before: dict[str, float] | None = None,
                 after: dict[str, float] | None = None) -> FixStep:
            return FixStep(
                code=rewrite.code, kind=rewrite.kind, line=rewrite.line,
                signature=rewrite.signature, predicted_saving_s=saving,
                accepted=accepted, reason=reason,
                times_before_s=before or {}, times_after_s=after or {})

        work = parse_program(current)
        if not apply_rewrite(work, rewrite):
            result.steps.append(step(False, "rewrite site not found"))
            continue
        new_src = work.to_source()
        try:
            new_prog = parse_program(new_src)
        except ReproError as exc:
            result.steps.append(step(
                False, f"rewritten source fails to parse: {exc}"))
            continue

        report = lint_program(new_prog, nprocs, extra_vars)
        if report.errors:
            listing = "; ".join(str(d) for d in report.errors[:3])
            result.steps.append(step(
                False, f"verifier gate: rewritten program is not "
                       f"CI0xx-clean: {listing}"))
            continue
        races = [d for d in report.diagnostics if d.code in RACE_CODES]
        if races:
            # CI04x findings reject at ANY severity: a rewrite that
            # merely *might* introduce a race (widened byte intervals
            # demote to warning) is still not a proof-carrying fix.
            listing = "; ".join(str(d) for d in races[:3])
            result.steps.append(step(
                False, f"verifier gate: rewrite introduces CI04x race "
                       f"finding(s): {listing}"))
            continue

        ok, reason, before, after = _simulation_gate(
            prog, new_prog, nprocs, extra_vars, model)
        if not ok:
            result.steps.append(step(False, reason, before, after))
            continue

        result.steps.append(step(True, "", before, after))
        current = new_src
    result.source = current
    result.changed = current != source
    return result


def fix_sources(sources: dict[str, str], *, nprocs: int = 8,
                extra_vars: dict[str, int] | None = None,
                model: MachineModel | None = None,
                max_rounds: int = 16) -> dict[str, FixResult]:
    """Batch :func:`fix_source` over named sources.

    Keys are arbitrary labels (file names, generator seeds); the result
    maps each back to its :class:`FixResult`. A source whose fix run
    *raises* (rather than rejecting rewrites) gets an unchanged result
    with the failure recorded as a rejected step — batch callers (the
    ``repro.gen`` oracle) must see every program's verdict, not die on
    the first pathological one.
    """
    out: dict[str, FixResult] = {}
    for label, source in sources.items():
        try:
            out[label] = fix_source(source, nprocs=nprocs,
                                    extra_vars=extra_vars, model=model,
                                    max_rounds=max_rounds)
        except ReproError as exc:
            out[label] = FixResult(source=source, changed=False, steps=[
                FixStep(code="", kind="error", line=0, signature="",
                        predicted_saving_s=0.0, accepted=False,
                        reason=f"fix run raised: {exc}")])
    return out


def _simulation_gate(prog: Program, new_prog: Program, nprocs: int,
                     extra_vars: dict[str, int] | None,
                     model: MachineModel | None
                     ) -> tuple[bool, str, dict[str, float],
                                dict[str, float]]:
    """Original-vs-rewritten modeled time on every lowering target.

    An original that fails to run on a target (it may literally crash,
    as with an oversized count) imposes no bound there; the rewritten
    program must run on every target regardless.
    """
    before: dict[str, float] = {}
    after: dict[str, float] = {}
    for target in Target:
        try:
            t_before: float | None = simulate_program(
                prog, nprocs, target=target, extra_vars=extra_vars,
                model=model).modeled_time
        except Exception:
            t_before = None
        try:
            t_after = simulate_program(
                new_prog, nprocs, target=target, extra_vars=extra_vars,
                model=model).modeled_time
        except Exception as exc:
            return (False,
                    f"simulation gate: rewritten program fails on "
                    f"{target.value}: {exc}", before, after)
        after[target.value] = t_after
        if t_before is None:
            continue
        before[target.value] = t_before
        if t_after > t_before * (1.0 + _SIM_RTOL):
            return (False,
                    f"simulation gate: modeled time regresses on "
                    f"{target.value} ({t_before * 1e6:.3f} us -> "
                    f"{t_after * 1e6:.3f} us)", before, after)
    return True, "", before, after
