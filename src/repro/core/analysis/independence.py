"""Buffer-independence of adjacent directives.

Section III-A: "For every set of adjacent comm_p2p directives with
independent buffers, synchronization is consolidated and reduced in
most cases to one call at the end of all the adjacent communication."

Two granularities:

* **static** — by buffer *name*: adjacent instances are independent
  when their sbuf/rbuf name sets are disjoint (a conservative symbolic
  check; aliasing through pointers defeats it, which is exactly why the
  paper prohibits pointers inside composite types);
* **runtime** — by *memory*: ``numpy.shares_memory`` between the actual
  arrays, used by the directive runtime before joining a consolidated
  sync group.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.ir import ClauseExprs, P2PNode


def buffer_names(clauses: ClauseExprs) -> set[str]:
    """The base buffer identifiers a directive references.

    ``&buf[i]``/``buf[i]`` expressions reduce to ``buf``; plain names
    stay as-is. This is the symbol-level view a compiler gets from the
    pragma's argument list.
    """
    names: set[str] = set()
    for expr in (*clauses.sbuf, *clauses.rbuf):
        names.add(base_identifier(expr))
    return names


def base_identifier(buffer_expr: str) -> str:
    """Strip address-of, indexing and member access to the base name."""
    e = buffer_expr.strip().lstrip("&").strip()
    for sep in ("[", "(", ".", "->"):
        idx = e.find(sep)
        if idx != -1:
            e = e[:idx]
    return e.strip()


def names_independent(a: ClauseExprs | set[str],
                      b: ClauseExprs | set[str]) -> bool:
    """Symbolic independence: no shared base buffer identifiers."""
    sa = a if isinstance(a, set) else buffer_names(a)
    sb = b if isinstance(b, set) else buffer_names(b)
    return sa.isdisjoint(sb)


def arrays_independent(a: Iterable[np.ndarray],
                       b: Iterable[np.ndarray]) -> bool:
    """Runtime independence: no pair of arrays shares memory."""
    bl = list(b)
    for x in a:
        for y in bl:
            if np.shares_memory(x, y):
                return False
    return True


def independent_groups(instances: list[P2PNode]) -> list[list[P2PNode]]:
    """Partition adjacent instances into maximal consolidatable groups.

    Scanning in order, an instance joins the current group while its
    buffer names are disjoint from every name already in the group;
    a dependent instance closes the group (its sync must precede the
    dependent communication) and starts a new one.
    """
    groups: list[list[P2PNode]] = []
    current: list[P2PNode] = []
    seen: set[str] = set()
    for node in instances:
        names = buffer_names(node.clauses)
        if current and not names.isdisjoint(seen):
            groups.append(current)
            current = []
            seen = set()
        current.append(node)
        seen |= names
    if current:
        groups.append(current)
    return groups
