"""Compiler analyses over the directive IR (and runtime helpers).

These implement the "automatic analysis and optimization" story of the
paper: buffer-independence of adjacent directives, synchronization
consolidation/placement, count and datatype inference, SPMD dataflow
(send/receive sets per rank), and overlap legality.
"""

from repro.core.analysis.independence import (
    arrays_independent,
    buffer_names,
    names_independent,
)
from repro.core.analysis.infer import (
    infer_count_static,
    infer_element_type,
)
from repro.core.analysis.syncopt import SyncPlan, plan_synchronization
from repro.core.analysis.dataflow import (
    CommGraph,
    MatchingIssue,
    classify_pattern,
    comm_graph,
    validate_matching,
)
from repro.core.analysis.overlap import overlap_legal
from repro.core.analysis.codes import (
    ADVISOR_CODES,
    DEADLOCK_CODES,
    RULES,
    STALE_READ_CODES,
    Diagnostic,
    Rule,
    severity_of,
)
from repro.core.analysis.advisor import (
    Finding,
    Rewrite,
    advise_program,
    apply_rewrite,
)
from repro.core.analysis.fix import FixResult, FixStep, fix_source
from repro.core.analysis.progsim import (
    ProgramSimError,
    SimOutcome,
    simulate_program,
)
from repro.core.analysis.lint import (
    LintReport,
    lint_program,
    render_json,
    render_sarif,
)
from repro.core.analysis.verify import (
    WEAKENINGS,
    VerifyReport,
    verify_program,
)

__all__ = [
    "ADVISOR_CODES",
    "DEADLOCK_CODES",
    "RULES",
    "STALE_READ_CODES",
    "Diagnostic",
    "Rule",
    "severity_of",
    "Finding",
    "Rewrite",
    "advise_program",
    "apply_rewrite",
    "FixResult",
    "FixStep",
    "fix_source",
    "ProgramSimError",
    "SimOutcome",
    "simulate_program",
    "LintReport",
    "lint_program",
    "render_json",
    "render_sarif",
    "WEAKENINGS",
    "VerifyReport",
    "verify_program",
    "arrays_independent",
    "buffer_names",
    "names_independent",
    "infer_count_static",
    "infer_element_type",
    "SyncPlan",
    "plan_synchronization",
    "CommGraph",
    "MatchingIssue",
    "classify_pattern",
    "comm_graph",
    "validate_matching",
    "overlap_legal",
]
