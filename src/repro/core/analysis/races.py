"""CI04x byte-interval aliasing and race analysis.

The verifier (:mod:`repro.core.analysis.verify`) proves *ordering*
properties; this pass proves the *data* property on top of them: no
two conflicting accesses touch overlapping bytes of one allocation
while unordered in the happens-before graph.

Every access is reduced to a **window on its owner rank's trace**:

* a posted send reads its ``sbuf`` bytes over ``[post, flushing
  sync)``;
* a matched receive is written over ``[post, guaranteeing sync)`` on
  the receiver — except under SHMEM, where the put does not wait for
  the receiver at all: the window opens at the first receiver event
  that does *not* happen before the origin's put (computed from the
  graph's vector clocks) and two puts from the *same* origin are
  ordered by the origin's flushing quiet;
* a raw-code assignment is a point access at its event index, with
  the byte interval of its subscript when evaluable
  (:mod:`repro.core.analysis.access` widens everything else).

Two accesses conflict when at least one writes, their windows overlap
on the owner's timeline, and their byte intervals intersect. The
classification is stable: write-write from different SHMEM origins is
CI043, any other write-write is CI040, a directive's own send/recv
aliasing is CI042, and a raw write under a posted read window is
CI041. Findings built on widened intervals or loop-carried
(``max_comm_iter``) directives are demoted to warnings — the unrolled
snapshot cannot prove them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

from repro.core.analysis import hb
from repro.core.analysis.access import (
    ByteInterval,
    buffer_interval,
    write_interval,
)
from repro.core.analysis.codes import Diagnostic, make
from repro.core.analysis.independence import base_identifier
from repro.core.analysis.infer import infer_count_static
from repro.core.clauses import Target
from repro.core.ir import Program
from repro.errors import ReproError

#: Trace-index "never synchronized": later than any real event.
_OPEN = 1 << 30

_SHMEM = Target.SHMEM.value
_PUT_LIKE = frozenset({Target.SHMEM.value, Target.MPI_1SIDE.value})


class RankTrace(Protocol):
    """The per-rank unroll the race pass consumes (a ``_RankTracer``)."""

    rank: int
    variables: dict[str, int]
    handles: list[hb.Handle]
    trace: list[hb.Event]


@dataclass
class _Access:
    """One byte-interval access window on its owner rank's timeline."""

    kind: str                 # "read" | "write"
    comm: bool                # True: directive window; False: raw write
    start: int                # owner trace index, inclusive
    end: int                  # owner trace index, exclusive
    span: ByteInterval
    owner: int
    name: str
    line: int
    directive: int | None
    desc: str
    #: Origin rank of a transfer (sender) / writer rank for raw code.
    origin: int | None = None
    #: Origin-trace indices of the transfer's post and flushing sync,
    #: for the same-origin put ordering rule.
    origin_post: int | None = None
    origin_sync: int | None = None
    shmem: bool = False
    #: True for put-based lowerings (SHMEM, MPI 1-sided): the delivery
    #: is performed by the origin's epoch, so the origin's flush/quiet
    #: orders it before anything the origin posts later.
    put_like: bool = False


def _count_exprs(program: Program) -> dict[int, str | None]:
    """Directive line -> count expression in elements (None widens)."""
    out: dict[int, str | None] = {}
    for node in program.all_p2p():
        region = next((r for r in program.regions()
                       if node in r.p2p_instances()), None)
        clauses = (region.clauses.merged_into(node.clauses)
                   if region is not None else node.clauses)
        if "count" in clauses.exprs:
            out[node.line] = clauses.exprs["count"]
        else:
            try:
                out[node.line] = infer_count_static(clauses,
                                                    program.decls)
            except ReproError:
                out[node.line] = None
    return out


def _collect(program: Program, tracers: Sequence[RankTrace],
             clocks: dict[hb.Event, list[int]]
             ) -> dict[tuple[int, str], list[_Access]]:
    """All accesses, grouped by (owner rank, buffer base name)."""
    counts = _count_exprs(program)
    vars_of = {t.rank: t.variables for t in tracers}
    groups: dict[tuple[int, str], list[_Access]] = {}

    def add(acc: _Access) -> None:
        groups.setdefault((acc.owner, acc.name), []).append(acc)

    for tracer in tracers:
        rank = tracer.rank
        for h in tracer.handles:
            name = next(iter(h.names))
            span = buffer_interval(h.expr, counts.get(h.directive),
                                   program.decls, tracer.variables)
            # The handle is complete only when its guaranteeing sync
            # *returns*: a cross-rank access ordered after every event
            # before the sync but not after the sync itself (its
            # vector-clock start equals the sync index — e.g. a SHMEM
            # put landing concurrently with the receiver's Waitall)
            # still conflicts with the in-flight transfer, so the
            # window closes after the sync event, not before it.
            # Same-rank accesses are unaffected (no two events share a
            # trace index); this mirrors the dynamic sanitizer's
            # close-epoch rule exactly.
            end = h.sync.index + 1 if h.sync is not None else _OPEN
            shmem = h.target == _SHMEM
            put_like = h.target in _PUT_LIKE
            if h.kind == "send":
                add(_Access(
                    kind="read", comm=True, start=h.post.index,
                    end=end, span=span, owner=rank, name=name,
                    line=h.post.line, directive=h.directive,
                    desc=f"the send posted by the directive at line "
                         f"{h.directive}",
                    origin=rank, origin_post=h.post.index,
                    origin_sync=(h.sync.index if h.sync is not None
                                 else None),
                    shmem=shmem, put_like=put_like))
                if shmem and h.matched is None and h.dest_expr:
                    # An unmatched SHMEM put still delivers: the typed
                    # put writes the destination PE's symmetric mirror
                    # without any receiver participation, so the write
                    # lands on the peer's timeline from the first peer
                    # event not happening before the put onward — and
                    # with no receiving sync, the window never closes.
                    vc = clocks.get(h.post)
                    add(_Access(
                        kind="write", comm=True,
                        start=(vc[h.peer] if vc is not None else 0),
                        end=_OPEN,
                        span=buffer_interval(
                            h.dest_expr, counts.get(h.directive),
                            program.decls, tracer.variables),
                        owner=h.peer,
                        name=base_identifier(h.dest_expr),
                        line=h.post.line, directive=h.directive,
                        desc=(f"the unreceived put delivered by the "
                              f"directive at line {h.directive} from "
                              f"rank {rank}"),
                        origin=rank, origin_post=h.post.index,
                        origin_sync=(h.sync.index
                                     if h.sync is not None else None),
                        shmem=True, put_like=True))
                continue
            if h.matched is None:
                continue  # nothing is ever delivered (CI002/CI003)
            start = h.post.index
            if shmem:
                # The put needs nothing from the receiver: it can land
                # from the first receiver event not happening before
                # the origin's put onward.
                vc = clocks.get(h.matched.post)
                start = vc[rank] if vc is not None else 0
                # And it lands where the *origin* aims it: the shmem
                # put writes the symmetric buffer named by the sender's
                # rbuf operand, not the buffer this receive posted
                # (they differ when mismatched directives pair up).
                if h.matched.dest_expr:
                    name = base_identifier(h.matched.dest_expr)
                    span = buffer_interval(
                        h.matched.dest_expr,
                        counts.get(h.matched.directive), program.decls,
                        vars_of.get(h.matched.rank, tracer.variables))
            add(_Access(
                kind="write", comm=True, start=start, end=end,
                span=span, owner=rank, name=name, line=h.post.line,
                directive=h.directive,
                desc=(f"the put delivered by the directive at line "
                      f"{h.directive}" if shmem else
                      f"the delivery of the receive posted by the "
                      f"directive at line {h.directive}"),
                origin=h.matched.rank,
                origin_post=h.matched.post.index,
                origin_sync=(h.matched.sync.index
                             if h.matched.sync is not None else None),
                shmem=shmem, put_like=put_like))
        for event in tracer.trace:
            for wname, idx_expr in sorted(event.writes):
                add(_Access(
                    kind="write", comm=False, start=event.index,
                    end=event.index + 1,
                    span=write_interval(wname, idx_expr,
                                        program.decls,
                                        tracer.variables),
                    owner=rank, name=wname, line=event.line,
                    directive=event.directive,
                    desc=f"the assignment at line {event.line}",
                    origin=rank))
    return groups


def _same_origin_ordered(a: _Access, b: _Access) -> bool:
    """True for two same-origin put deliveries ordered by the origin's
    flushing sync (put, flush/quiet, put never reorders).

    The delivery of a put-based lowering (SHMEM *or* MPI 1-sided) is
    performed by the origin's access epoch: the origin's quiet/flush
    completes it remotely before anything the origin posts afterwards,
    regardless of which put-based target each transfer uses. Two-sided
    deliveries are receiver-driven (the Waitall on the receiver closes
    them), so they never qualify."""
    if not (a.put_like and b.put_like and a.comm and b.comm):
        return False
    if a.origin is None or a.origin != b.origin:
        return False
    first, second = ((a, b) if (a.origin_post or 0) <= (b.origin_post
                                                        or 0)
                     else (b, a))
    return (first.origin_sync is not None
            and second.origin_post is not None
            and first.origin_sync <= second.origin_post)


def _classify(a: _Access, b: _Access) -> tuple[str, str]:
    """(code, message) for one conflicting pair."""
    name = a.name
    if a.kind == "write" and b.kind == "write":
        if (a.comm and b.comm and a.shmem and b.shmem
                and a.origin != b.origin):
            ov = a.span.overlap(b.span)
            assert ov is not None
            return "CI043", (
                f"symmetric-heap collision on {name!r}: unordered "
                f"puts from different origins ({a.desc}; {b.desc}) "
                f"overlap at {ov.describe()} of the same symmetric "
                f"allocation")
        ov = a.span.overlap(b.span)
        assert ov is not None
        return "CI040", (
            f"write-write race on {name!r}: {a.desc} writes "
            f"{a.span.describe()} while {b.desc} writes "
            f"{b.span.describe()} in the same open window; the "
            f"overlapping {ov.describe()} are schedule-dependent")
    read, write = (a, b) if a.kind == "read" else (b, a)
    ov = read.span.overlap(write.span)
    assert ov is not None
    if read.comm and write.comm:
        return "CI042", (
            f"send/recv aliasing on {name!r}: {read.desc} reads "
            f"{read.span.describe()} while {write.desc} writes "
            f"{write.span.describe()} on the same rank "
            f"(overlap {ov.describe()})")
    return "CI041", (
        f"read-write race on posted buffer {name!r}: {write.desc} "
        f"writes {write.span.describe()} while {read.desc} still "
        f"reads {read.span.describe()} before its guaranteeing "
        f"synchronization (overlap {ov.describe()})")


def race_diagnostics(program: Program, tracers: Sequence[RankTrace],
                     graph: hb.HBGraph, target: Target,
                     loop_varying: frozenset[int]) -> list[Diagnostic]:
    """All CI04x findings for one unrolled target, rank-aggregated."""
    clocks = hb.vector_clocks(graph)
    groups = _collect(program, tracers, clocks)

    found: dict[tuple[str, str, int, int, str], tuple[str, str,
                                                      int | None,
                                                      list[int]]] = {}
    order: list[tuple[str, str, int, int, str]] = []
    for (owner, _name), accesses in sorted(groups.items()):
        accesses.sort(key=lambda x: (x.start, x.line, x.kind))
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.kind == "read" and b.kind == "read":
                    continue
                if not (a.start < b.end and b.start < a.end):
                    continue
                if a.span.overlap(b.span) is None:
                    continue
                if _same_origin_ordered(a, b):
                    continue
                code, message = _classify(a, b)
                demote = (a.span.widened or b.span.widened
                          or a.directive in loop_varying
                          or b.directive in loop_varying)
                severity = "warning" if demote else "error"
                if demote:
                    message += (" (demoted: the byte intervals are "
                                "widened or the directive iterates "
                                "with loop-carried clauses)")
                line = max(a.line, b.line)
                directive = (b.directive if b.line >= a.line
                             else a.directive)
                key = (code, a.name, min(a.line, b.line), line,
                       message)
                if key not in found:
                    found[key] = (message, severity, directive, [])
                    order.append(key)
                found[key][3].append(owner)
    out: list[Diagnostic] = []
    for key in order:
        code, _name, _lo_line, line, _msg = key
        message, severity, directive, ranks = found[key]
        uniq = sorted(set(ranks))
        plural = "s" if len(uniq) > 1 else ""
        rank_list = ", ".join(str(r) for r in uniq)
        out.append(make(
            code, line,
            f"{message} (rank{plural} {rank_list})",
            directive=directive, target=target.value,
            severity=severity))
    return out
