"""Overlap legality: may a directive's body run during the transfer?

The body of a ``comm_p2p`` is "a region of computation that can overlap
communication at run time" (Section III). That is only sound when the
body does not touch the buffers in flight: reading an ``rbuf`` before
synchronization observes indeterminate data; writing an ``sbuf`` races
the outgoing transfer. This static check scans the body's raw source
for occurrences of the directive's buffer base names — conservative in
the direction a compiler must be (identifier occurrence => assume
access).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.analysis.independence import buffer_names
from repro.core.ir import Node, P2PNode, ParamRegionNode, RawCode


@dataclass(frozen=True)
class OverlapVerdict:
    legal: bool
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.legal


def _body_text(nodes: list[Node]) -> str:
    parts: list[str] = []
    for n in nodes:
        if isinstance(n, RawCode):
            parts.extend(n.lines)
        elif isinstance(n, (P2PNode, ParamRegionNode)):
            parts.extend(_body_text(n.body).splitlines())
    return "\n".join(parts)


def overlap_legal(node: P2PNode) -> OverlapVerdict:
    """Check whether the body may overlap this directive's transfers."""
    text = _body_text(node.body)
    if not text.strip():
        return OverlapVerdict(True, "empty body")
    for name in sorted(buffer_names(node.clauses)):
        if re.search(rf"\b{re.escape(name)}\b", text):
            return OverlapVerdict(
                False,
                f"body references in-flight buffer {name!r}; it must "
                "not be accessed before the synchronization point")
    return OverlapVerdict(True, "body is independent of the directive's "
                                "buffers")
