"""Static count and datatype inference for directives.

Section III-B: ``count`` may be omitted if a buffer in ``sbuf``/``rbuf``
is an array — the generated message size is the array size, or the
*smallest* size when several buffers are arrays. Section III-A: buffer
types map to MPI basic types (primitives) or generated MPI structs
(composites); for SHMEM the element storage size selects the call name.
"""

from __future__ import annotations

from repro.core.analysis.independence import base_identifier
from repro.core.ir import BufferDecl, ClauseExprs
from repro.dtypes.composite import CompositeType
from repro.dtypes.primitives import PrimitiveType
from repro.errors import ClauseError


def _decl_of(expr: str, decls: dict[str, BufferDecl]) -> BufferDecl:
    name = base_identifier(expr)
    decl = decls.get(name)
    if decl is None:
        raise ClauseError(
            f"buffer {expr!r} (base {name!r}) has no visible declaration")
    return decl


def infer_count_static(clauses: ClauseExprs,
                       decls: dict[str, BufferDecl]) -> str:
    """The count *expression* the generated code should use.

    An explicit ``count`` clause wins. Otherwise the smallest declared
    array length among the listed buffers becomes a literal count; if
    no buffer is an array (all pointers), the directive is rejected.
    Indexed buffer expressions (``&buf[p]``) count as single elements of
    the base array, matching the paper's Listing 3 usage with an
    explicit count.
    """
    if "count" in clauses.exprs:
        return clauses.exprs["count"]
    lengths = []
    for expr in (*clauses.sbuf, *clauses.rbuf):
        decl = _decl_of(expr, decls)
        if decl.is_array:
            lengths.append(decl.length)
    if not lengths:
        raise ClauseError(
            "count omitted but no buffer in sbuf/rbuf is a declared "
            "array (Section III-B requires one)")
    return str(min(lengths))


def infer_element_type(clauses: ClauseExprs,
                       decls: dict[str, BufferDecl]
                       ) -> "PrimitiveType | CompositeType":
    """The (single) element type of a directive's buffers.

    All listed buffers must agree on their element type — the generated
    transfer uses one MPI datatype / one SHMEM call name per directive.
    """
    types: list[PrimitiveType | CompositeType] = []
    for expr in (*clauses.sbuf, *clauses.rbuf):
        types.append(_decl_of(expr, decls).ctype)
    first = types[0]
    for t in types[1:]:
        same = (t is first or t == first
                or (isinstance(t, PrimitiveType)
                    and isinstance(first, PrimitiveType)
                    and t.size == first.size))
        if not same:
            raise ClauseError(
                f"buffers mix element types ({_type_name(first)} vs "
                f"{_type_name(t)}); one datatype per directive")
    return first


def _type_name(t: "PrimitiveType | CompositeType") -> str:
    return t.c_name if isinstance(t, PrimitiveType) else t.name


def shmem_call_for(ctype: "PrimitiveType | CompositeType") -> str:
    """The SHMEM put call name matched to a buffer's storage size.

    Section III-A: "communication calls that match the data type and
    storage size of the buffers are generated."
    """
    if isinstance(ctype, CompositeType):
        return "shmem_putmem"
    if ctype.c_name == "double":
        return "shmem_double_put"
    if ctype.c_name == "float":
        return "shmem_float_put"
    if ctype.size == 8:
        return "shmem_put64"
    if ctype.size == 4:
        return "shmem_put32"
    return "shmem_putmem"
