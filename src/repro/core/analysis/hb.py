"""Happens-before graph over per-rank symbolic event traces.

The verifier (:mod:`repro.core.analysis.verify`) unrolls a directive
program into one event trace per rank — posts, synchronization calls,
and buffer uses. This module holds the graph machinery those traces
feed:

* **events** are totally ordered within a rank (program order) and
  cross-rank edges express what an event *waits for* before it can
  execute (a Waitall waiting for the matching post, a one-sided put
  waiting for its exposure epoch, a notify-wait waiting for the
  origin's flush);
* the **executability fixpoint** computes which events can ever run: an
  event runs once everything before it on its rank ran and every
  cross-rank prerequisite ran. Events left non-executable are a proof
  of deadlock — either a prerequisite is *missing* (a wait on a message
  nobody sends) or the blocked events form a cross-rank cycle;
* :func:`find_cycle` recovers the rank-level wait cycle for the
  diagnostic message.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

#: Event kinds.
POST_SEND = "post_send"
POST_RECV = "post_recv"
SYNC = "sync"
USE = "use"


@dataclass(eq=False)
class Event:
    """One abstract operation on one rank (identity-hashed)."""

    rank: int
    index: int                      # position in the rank's trace
    kind: str                       # POST_SEND | POST_RECV | SYNC | USE
    line: int = 0                   # source line for diagnostics
    #: Line of the directive this event belongs to (posts/overlap uses).
    directive: int | None = None
    #: Peer rank: destination for sends, source for receives.
    peer: int | None = None
    #: Buffer base names the event touches (posts and uses).
    names: frozenset[str] = frozenset()
    #: Raw-code writes to declared buffers: ``(base name, index
    #: expression text)`` pairs (empty index text = whole buffer).
    writes: frozenset[tuple[str, str]] = frozenset()
    #: Directive lines whose overlap body lexically encloses this event.
    enclosing: tuple[int, ...] = ()

    def describe(self) -> str:
        """Short human-readable description for diagnostics."""
        if self.kind == POST_SEND:
            return f"send to rank {self.peer} (line {self.line})"
        if self.kind == POST_RECV:
            return f"receive from rank {self.peer} (line {self.line})"
        if self.kind == SYNC:
            return f"synchronization at line {self.line}"
        return f"use of {sorted(self.names)} at line {self.line}"


@dataclass(eq=False)
class Handle:
    """One posted message half awaiting synchronization (static twin of
    the runtime's Send/RecvHandle)."""

    kind: str                       # "send" | "recv"
    rank: int
    peer: int                       # dest for sends, source for recvs
    post: Event
    directive: int                  # directive source line
    names: frozenset[str]           # buffer base names it moves
    target: str                     # lowering target keyword
    #: The buffer expression as written (``&buf[p]``), for the
    #: byte-interval derivation of :mod:`repro.core.analysis.access`.
    expr: str = ""
    #: The sync event that completed this handle; None when a weakened
    #: plan discarded it (the runtime handle was dropped before sync).
    sync: Event | None = None
    #: The matched opposite half on the peer rank, if any.
    matched: "Handle | None" = None
    #: The positionally paired half whose lowering target disagrees
    #: (CI007): the shared sequence counters pair them, but no backend
    #: delivers across lowerings, so they never match.
    mislowered: "Handle | None" = None
    #: For sends: the paired destination-buffer expression (the rbuf the
    #: runtime zips with this sbuf), for delivery-site byte intervals.
    dest_expr: str = ""
    #: id() of the enclosing region node; None for standalone p2p.
    region_key: int | None = None


@dataclass
class HBGraph:
    """Per-rank traces plus cross-rank waits-for dependencies."""

    nprocs: int
    traces: list[list[Event]] = field(default_factory=list)
    #: Cross-rank prerequisites: event -> events it waits for.
    deps: dict[Event, list[Event]] = field(default_factory=dict)
    #: Unsatisfiable prerequisites: event -> human-readable reasons
    #: paired with the rule code that proves the deadlock.
    missing: dict[Event, list[tuple[str, str, int | None]]] = field(
        default_factory=dict)

    def add_dep(self, event: Event, prerequisite: Event) -> None:
        """Record that ``event`` cannot execute before ``prerequisite``."""
        self.deps.setdefault(event, []).append(prerequisite)

    def add_missing(self, event: Event, code: str, reason: str,
                    directive: int | None = None) -> None:
        """Record a prerequisite that no rank ever produces.

        ``directive`` is the source line of the directive whose
        communication is unsatisfiable (the event itself may be a
        consolidated sync covering several directives).
        """
        self.missing.setdefault(event, []).append((code, reason, directive))

    # -- executability ----------------------------------------------------

    def executable(self) -> set[Event]:
        """Least fixpoint of events that can ever run.

        A rank's events execute in order; each event additionally needs
        its cross-rank prerequisites. An event with a missing
        prerequisite blocks its rank permanently.
        """
        done: set[Event] = set()
        progress = [0] * len(self.traces)
        changed = True
        while changed:
            changed = False
            for rank, trace in enumerate(self.traces):
                i = progress[rank]
                while i < len(trace):
                    event = trace[i]
                    if event in self.missing:
                        break
                    if any(d not in done for d in
                           self.deps.get(event, ())):
                        break
                    done.add(event)
                    i += 1
                    changed = True
                progress[rank] = i
        return done

    def blocked_frontier(self, done: set[Event]) -> list[Event]:
        """Each rank's first non-executable event (ranks that finish
        their trace contribute nothing)."""
        frontier: list[Event] = []
        for trace in self.traces:
            for event in trace:
                if event not in done:
                    frontier.append(event)
                    break
        return frontier


def vector_clocks(graph: HBGraph) -> dict[Event, list[int]]:
    """Per-event vector clocks over the happens-before relation.

    ``vc[e][r]`` is the number of rank-``r`` events that happen before
    ``e`` (inclusive of ``e`` itself on its own rank): an event ``a``
    happens before ``b`` iff ``vc[b][a.rank] > a.index``. Only events
    the executability fixpoint reaches get a clock — blocked events
    (deadlocked programs) are absent from the result.
    """
    done: dict[Event, list[int]] = {}
    n = graph.nprocs
    progress = [0] * len(graph.traces)
    changed = True
    while changed:
        changed = False
        for tidx, trace in enumerate(graph.traces):
            i = progress[tidx]
            while i < len(trace):
                event = trace[i]
                if event in graph.missing:
                    break
                deps = graph.deps.get(event, ())
                if any(d not in done for d in deps):
                    break
                vc = list(done[trace[i - 1]]) if i else [0] * n
                for d in deps:
                    dv = done[d]
                    for k in range(n):
                        if dv[k] > vc[k]:
                            vc[k] = dv[k]
                vc[event.rank] = event.index + 1
                done[event] = vc
                i += 1
                changed = True
            progress[tidx] = i
    return done


# ---------------------------------------------------------------------------
# Content-hash keyed unroll cache
#
# One symbolic unroll — the per-rank tracers plus the assembled
# happens-before graph — is pure in (source text, nprocs, extra_vars,
# target, weakening, sync-plan shape). The verify, race and batch-lint
# passes all consume the same unroll, and batch linting thousands of
# generated programs (repro.gen) re-verifies identical shrunk
# candidates constantly; caching by content hash means each distinct
# (program, nprocs, target) pays the graph cost once instead of once
# per pass.


@dataclass
class CachedUnroll:
    """One memoized symbolic unroll: tracers + graph (either may be
    ``None``-ish only in the nothing-to-unroll case, where ``graph`` is
    ``None`` and ``tracers`` is the empty-handled tracer list)."""

    tracers: list[Any]
    graph: "HBGraph | None"


class GraphCache:
    """Bounded LRU of :class:`CachedUnroll` keyed by content hash."""

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[str, CachedUnroll] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> CachedUnroll | None:
        """The cached unroll for ``key``, refreshing its LRU slot."""
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: CachedUnroll) -> None:
        """Store ``value``, evicting the least recently used entry."""
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Counters for tooling (the ``repro-gen`` stats artifact)."""
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}


#: The process-wide unroll cache :func:`repro.core.analysis.verify.
#: verify_program` consults (pass ``cache=False`` there to bypass).
GRAPH_CACHE = GraphCache()


def unroll_key(source: str, nprocs: int, target: str,
               extra_vars: dict[str, int] | None,
               weakening: str | None,
               plan_fingerprint: tuple[tuple[int, str], ...]) -> str:
    """Content hash identifying one symbolic unroll.

    Everything the unroll is a pure function of participates: the
    printed source (the parse/print fixpoint makes it canonical), the
    world size, extra variable bindings, the default lowering target,
    the applied weakening, and the sync-plan shape (line/position pairs
    — a caller-mutated plan changes the fingerprint).
    """
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(repr((nprocs, target, weakening,
                   tuple(sorted((extra_vars or {}).items())),
                   plan_fingerprint)).encode())
    return h.hexdigest()


def find_cycle(graph: HBGraph, done: set[Event]) -> list[Event]:
    """A cross-rank wait cycle among the blocked frontier events.

    Each blocked event waits (directly, or transitively through its
    rank's program order) on some other rank's blocked event; following
    that relation from any frontier event must revisit a rank, closing
    the cycle. Returns the frontier events forming the cycle, in wait
    order; empty when the blockage is caused by missing prerequisites
    only.
    """
    frontier = {e.rank: e for e in graph.blocked_frontier(done)}

    def next_blocked(event: Event) -> Event | None:
        for dep in graph.deps.get(event, ()):
            if dep not in done:
                # The dependency itself is blocked on its own rank's
                # frontier (it cannot run because an earlier event on
                # its rank is stuck, or it is the stuck event).
                return frontier.get(dep.rank)
        return None

    for start in frontier.values():
        seen: list[Event] = []
        cur: Event | None = start
        while cur is not None and cur not in seen:
            seen.append(cur)
            cur = next_blocked(cur)
        if cur is not None:
            return seen[seen.index(cur):]
    return []
