"""Whole-program directive linting.

Bundles the static analyses into one diagnostic pass over a parsed
:class:`~repro.core.ir.Program` — the "automated analysis" the paper
argues directives enable that raw MPI defeats. Produces structured
:class:`Diagnostic` records a tool (or the CLI's ``--analyze``) can
render.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.dataflow import (
    classify_pattern,
    comm_graph,
    validate_matching,
)
from repro.core.analysis.infer import infer_count_static
from repro.core.analysis.overlap import overlap_legal
from repro.core.analysis.syncopt import plan_synchronization
from repro.core.ir import P2PNode, Program
from repro.errors import ReproError


@dataclass(frozen=True)
class Diagnostic:
    """One finding about one directive (or the whole program)."""

    severity: str        # "error" | "warning" | "info"
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: line {self.line}: {self.message}"


@dataclass
class LintReport:
    """All findings plus the headline numbers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    n_directives: int = 0
    n_regions: int = 0
    sync_calls: int = 0
    sync_reduction: float = 1.0
    patterns: dict[int, str] = field(default_factory=dict)

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings that make the program untranslatable."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings worth fixing but not fatal."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    def render(self) -> str:
        """Human-readable report text."""
        lines = [
            f"{self.n_directives} comm_p2p in {self.n_regions} "
            f"region(s); {self.sync_calls} synchronization call(s) "
            f"({self.sync_reduction:.1f}x consolidation)",
        ]
        for line_no, pattern in sorted(self.patterns.items()):
            lines.append(f"info: line {line_no}: pattern = {pattern}")
        lines.extend(str(d) for d in self.diagnostics)
        return "\n".join(lines)


def lint_program(program: Program, nprocs: int = 8,
                 extra_vars: dict | None = None) -> LintReport:
    """Run every static analysis over a parsed program."""
    report = LintReport()
    report.n_directives = len(program.all_p2p())
    report.n_regions = len(program.regions())
    plan = plan_synchronization(program)
    report.sync_calls = plan.total_sync_calls
    report.sync_reduction = plan.reduction_factor(program)

    for region_id, splits in plan.forced_splits.items():
        region = next(r for r in program.regions()
                      if id(r) == region_id)
        report.diagnostics.append(Diagnostic(
            "warning", region.line,
            f"region has {splits} dependent buffer split(s); "
            "synchronization cannot fully consolidate"))

    for node in program.all_p2p():
        _lint_directive(program, node, nprocs, extra_vars, report)
    return report


def _lint_directive(program: Program, node: P2PNode, nprocs: int,
                    extra_vars: dict | None, report: LintReport) -> None:
    region = next((r for r in program.regions()
                   if node in r.p2p_instances()), None)
    clauses = (region.clauses.merged_into(node.clauses)
               if region is not None else node.clauses)
    try:
        clauses.require_complete()
    except ReproError as exc:
        report.diagnostics.append(Diagnostic("error", node.line,
                                             str(exc)))
        return
    try:
        infer_count_static(clauses, program.decls)
    except ReproError as exc:
        report.diagnostics.append(Diagnostic("error", node.line,
                                             str(exc)))
    try:
        graph = comm_graph(clauses, nprocs, extra_vars)
        report.patterns[node.line] = classify_pattern(graph)
        for issue in validate_matching(graph):
            report.diagnostics.append(Diagnostic(
                "warning", node.line, str(issue)))
    except ReproError as exc:
        report.diagnostics.append(Diagnostic(
            "info", node.line,
            f"pattern not statically evaluable: {exc}"))
    verdict = overlap_legal(node)
    if not verdict.legal:
        report.diagnostics.append(Diagnostic(
            "error", node.line, f"illegal overlap: {verdict.reason}"))
