"""Whole-program directive linting.

Bundles the static analyses into one diagnostic pass over a parsed
:class:`~repro.core.ir.Program` — the "automated analysis" the paper
argues directives enable that raw MPI defeats. Per-directive checks
(clause completeness, count inference, SPMD matching, overlap legality)
are combined with the whole-program verifier
(:mod:`repro.core.analysis.verify`), which proves deadlock freedom,
stale-read freedom, consolidation safety and byte-interval race
freedom (the CI04x family, :mod:`repro.core.analysis.races`) for
every lowering target.

Findings are :class:`~repro.core.analysis.codes.Diagnostic` records
with stable ``CI``-prefixed codes; :func:`render_json` and
:func:`render_sarif` serialize a report for tooling (SARIF 2.1.0 for
code-scanning UIs), and the ``repro-lint`` console entry point
(:mod:`repro.core.pragma.__main__`) drives all of it from the shell.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.analysis.codes import RULES, Diagnostic, help_uri, make
from repro.core.analysis.dataflow import (
    classify_pattern,
    comm_graph,
    validate_matching,
)
from repro.core.analysis.infer import infer_count_static
from repro.core.analysis.overlap import overlap_legal
from repro.core.analysis.syncopt import SyncPlan, plan_synchronization
from repro.core.analysis.verify import verify_all_targets
from repro.core.clauses import Target
from repro.core.ir import P2PNode, Program
from repro.errors import ReproError, VerificationError

#: MatchingIssue.kind -> diagnostic code.
_MATCH_CODES = {
    "invalid-destination": "CI004",
    "invalid-source": "CI004",
    "unreceived-send": "CI005",
    "mismatched-sender": "CI006",
    "unsatisfied-receive": "CI005",
}


@dataclass
class LintReport:
    """All findings plus the headline numbers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    n_directives: int = 0
    n_regions: int = 0
    sync_calls: int = 0
    sync_reduction: float = 1.0
    patterns: dict[int, str] = field(default_factory=dict)
    #: Source file the program came from ("" when linted from memory).
    path: str = ""
    #: The lowering targets the verifier swept (all three unless the
    #: caller restricted the analysis).
    targets: list[str] = field(
        default_factory=lambda: [t.value for t in Target])

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings that make the program untranslatable."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings worth fixing but not fatal."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    def require_clean(self) -> None:
        """Raise :class:`VerificationError` on error-severity findings."""
        errors = self.errors
        if errors:
            listing = "\n".join(str(d) for d in errors)
            raise VerificationError(
                f"static verification refuted the program with "
                f"{len(errors)} error(s):\n{listing}")

    def render(self) -> str:
        """Human-readable report text."""
        lines = [
            f"{self.n_directives} comm_p2p in {self.n_regions} "
            f"region(s); {self.sync_calls} synchronization call(s) "
            f"({self.sync_reduction:.1f}x consolidation)",
        ]
        for line_no, pattern in sorted(self.patterns.items()):
            lines.append(f"info: line {line_no}: pattern = {pattern}")
        lines.extend(str(d) for d in self.diagnostics)
        return "\n".join(lines)


def render_json(reports: list[LintReport],
                fixes: dict[str, Any] | None = None) -> str:
    """Serialize lint reports as one JSON document.

    ``fixes`` optionally maps a report path to a
    :class:`repro.core.analysis.fix.FixResult`, whose proof ledger is
    embedded under a ``fix`` key (``repro-lint --fix-dry-run``).
    """
    payload = []
    for report in reports:
        entry: dict[str, Any] = {
            "path": report.path,
            "targets": list(report.targets),
            "n_directives": report.n_directives,
            "n_regions": report.n_regions,
            "sync_calls": report.sync_calls,
            "sync_reduction": round(report.sync_reduction, 3),
            "patterns": {str(k): v
                         for k, v in sorted(report.patterns.items())},
            "diagnostics": [d.as_dict() for d in report.diagnostics],
        }
        if fixes and report.path in fixes:
            result = fixes[report.path]
            entry["fix"] = {
                "changed": result.changed,
                "rounds": result.rounds,
                "steps": [s.as_dict() for s in result.steps],
            }
        payload.append(entry)
    return json.dumps({"reports": payload}, indent=2)


#: Diagnostic severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(reports: list[LintReport]) -> str:
    """Serialize lint reports as a SARIF 2.1.0 log.

    One run; one result per diagnostic. The driver's rule table is the
    *complete* :data:`~repro.core.analysis.codes.RULES` registry — not
    just the codes this run produced — each with ``name``,
    ``shortDescription``, ``helpUri`` and default severity, so a new
    diagnostic family can never ship half-rendered
    (``tests/core/test_lint.py`` pins registry completeness).
    """
    rules = []
    for code in sorted(RULES):
        rule = RULES[code]
        entry: dict[str, object] = {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "helpUri": help_uri(code),
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning")},
        }
        if rule.fixit:
            entry["help"] = {"text": rule.fixit}
        rules.append(entry)
    results = []
    for report in reports:
        for d in report.diagnostics:
            result: dict[str, object] = {
                "ruleId": d.code or "CI999",
                "level": _SARIF_LEVELS.get(d.severity, "warning"),
                "message": {"text": str(d)},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": report.path or "<memory>"},
                        "region": {"startLine": max(1, d.line)},
                    },
                }],
            }
            if d.target and d.target != "*":
                result["properties"] = {"target": d.target}
            results.append(result)
    swept = sorted({t for r in reports for t in r.targets})
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://github.com/ipdpsw13-comm-intent",
                "rules": rules,
            }},
            "properties": {"targets": swept},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)


def lint_program(program: Program, nprocs: int = 8,
                 extra_vars: dict[str, int] | None = None,
                 path: str = "", *,
                 targets: list[Target] | None = None,
                 advise: bool = False,
                 model: Any = None) -> LintReport:
    """Run every static analysis over a parsed program.

    Per-directive validation plus whole-program verification for each
    lowering target; findings identical on every swept target are
    collapsed to one diagnostic with ``target="*"``. ``targets``
    restricts the sweep (default: all three). ``advise=True``
    additionally runs the performance advisor
    (:mod:`repro.core.analysis.advisor`), whose CI1xx warnings carry a
    net-model estimated saving for the first swept target under
    ``model`` (default: the calibrated Gemini model).

    The pass is assembled from independently runnable units —
    :func:`structure_report`, one :func:`verify_target_diagnostics`
    per swept target, :func:`advise_diagnostics` — merged by
    :func:`collapse_across_targets` + :func:`finalize_report`. The
    sharded lint service (:mod:`repro.lintserve`) runs the same units
    in worker processes and merges them with the same functions, which
    is what makes its output byte-identical to this sequential path.
    """
    swept = list(targets) if targets else list(Target)
    plan = plan_synchronization(program)
    report = structure_report(program, nprocs, extra_vars, path,
                              targets=swept, plan=plan)
    per_target = {t.value: verify_target_diagnostics(
        program, nprocs, extra_vars, t, plan=plan) for t in swept}
    collapsed = collapse_across_targets(
        per_target, [t.value for t in swept])
    advisories = (advise_diagnostics(program, nprocs, extra_vars,
                                     swept, model)
                  if advise else [])
    return finalize_report(report, collapsed, advisories)


def structure_report(program: Program, nprocs: int = 8,
                     extra_vars: dict[str, int] | None = None,
                     path: str = "", *,
                     targets: list[Target] | None = None,
                     plan: SyncPlan | None = None) -> LintReport:
    """The target-independent lint unit.

    Headline numbers (directive/region counts, sync-plan
    consolidation), CI021 forced-split findings, and the per-directive
    checks (clause completeness, count inference, pattern
    classification, SPMD matching, overlap legality). Everything here
    is a pure function of (program, nprocs, extra_vars) — no lowering
    target participates — so the sharded driver runs it once per file.
    """
    swept = list(targets) if targets else list(Target)
    report = LintReport(path=path, targets=[t.value for t in swept])
    report.n_directives = len(program.all_p2p())
    report.n_regions = len(program.regions())
    if plan is None:
        plan = plan_synchronization(program)
    report.sync_calls = plan.total_sync_calls
    report.sync_reduction = plan.reduction_factor(program)

    for region_id, splits in plan.forced_splits.items():
        region = next(r for r in program.regions()
                      if id(r) == region_id)
        report.diagnostics.append(make(
            "CI021", region.line,
            f"region has {splits} dependent buffer split(s); "
            "synchronization cannot fully consolidate",
            target="*"))

    for node in program.all_p2p():
        _lint_directive(program, node, nprocs, extra_vars, report)
    return report


def verify_target_diagnostics(program: Program, nprocs: int,
                              extra_vars: dict[str, int] | None,
                              target: Target, *,
                              plan: SyncPlan | None = None
                              ) -> list[Diagnostic]:
    """One lowering target's whole-program verifier unit.

    The smallest shardable verification quantum: a pure function of
    (program, nprocs, extra_vars, target). The returned diagnostics
    carry no ``target`` tag yet — :func:`collapse_across_targets`
    assigns tags when the per-target lists are merged.
    """
    verdicts = verify_all_targets(program, nprocs=nprocs,
                                  extra_vars=extra_vars, plan=plan,
                                  targets=[target])
    return list(verdicts[target].diagnostics)


def advise_diagnostics(program: Program, nprocs: int,
                       extra_vars: dict[str, int] | None,
                       swept: list[Target],
                       model: Any = None) -> list[Diagnostic]:
    """The performance-advisor unit (CI1xx warnings with savings)."""
    from repro.core.analysis.advisor import advise_program
    from repro.core.clauses import DEFAULT_TARGET
    advise_target = (DEFAULT_TARGET if DEFAULT_TARGET in swept
                     else swept[0])
    return [f.diagnostic for f in advise_program(
        program, nprocs, target=advise_target,
        extra_vars=extra_vars, model=model)]


def collapse_across_targets(per_target: dict[str, list[Diagnostic]],
                            swept: list[str]) -> list[Diagnostic]:
    """Merge per-target verifier findings into tagged diagnostics.

    A finding produced with the same (code, line, directive, message)
    on every swept target is target-independent: collapse to
    ``target="*"``. ``per_target`` maps target *values* to the
    diagnostics of that target's verify unit; ``swept`` fixes the
    iteration order (first-seen order decides output order, exactly as
    the sequential sweep produced it).
    """
    grouped: dict[tuple[str, int, int | None, str],
                  tuple[Diagnostic, list[str]]] = {}
    order: list[tuple[str, int, int | None, str]] = []
    for target in swept:
        for d in per_target.get(target, []):
            key = (d.code, d.line, d.directive, d.message)
            if key not in grouped:
                grouped[key] = (d, [])
                order.append(key)
            grouped[key][1].append(target)
    out: list[Diagnostic] = []
    for key in order:
        d, targets = grouped[key]
        if len(targets) == len(swept):
            out.append(Diagnostic(
                severity=d.severity, line=d.line, message=d.message,
                code=d.code, directive=d.directive, target="*",
                fixit=d.fixit))
        else:
            for t in targets:
                out.append(Diagnostic(
                    severity=d.severity, line=d.line,
                    message=d.message, code=d.code,
                    directive=d.directive, target=t, fixit=d.fixit))
    return out


def finalize_report(report: LintReport,
                    verifier: list[Diagnostic],
                    advisories: list[Diagnostic]) -> LintReport:
    """Merge unit outputs into the final report (in place).

    Appends the collapsed verifier findings and the advisories to the
    structure report, drops shadowed findings, and sorts — the last
    word on report ordering, shared by the sequential and sharded
    paths.
    """
    report.diagnostics.extend(verifier)
    report.diagnostics.extend(advisories)
    _suppress_shadowed(report)
    report.diagnostics.sort(key=lambda d: d.sort_key())
    return report


def _suppress_shadowed(report: LintReport) -> None:
    """Drop findings a stronger finding at the same directive subsumes.

    An ``unsatisfied-receive`` matching warning (CI005) is the
    per-directive shadow of a verifier-proved deadlock (CI002) at the
    same directive — keep the proof, drop the shadow. Likewise the
    verifier's own CI010 duplicates :func:`overlap_legal`'s finding.
    """
    deadlocked = {d.directive or d.line for d in report.diagnostics
                  if d.code == "CI002"}
    overlap_lines = {d.line for d in report.diagnostics
                     if d.code == "CI010" and d.target == "*"}
    kept: list[Diagnostic] = []
    for d in report.diagnostics:
        if (d.code == "CI005" and "unsatisfied-receive" in d.message
                and d.line in deadlocked):
            continue
        if (d.code == "CI010" and d.target not in (None, "*")
                and d.line in overlap_lines):
            continue
        kept.append(d)
    report.diagnostics[:] = kept


def _lint_directive(program: Program, node: P2PNode, nprocs: int,
                    extra_vars: dict[str, int] | None,
                    report: LintReport) -> None:
    region = next((r for r in program.regions()
                   if node in r.p2p_instances()), None)
    clauses = (region.clauses.merged_into(node.clauses)
               if region is not None else node.clauses)
    try:
        clauses.require_complete()
    except ReproError as exc:
        report.diagnostics.append(make(
            "CI030", node.line, str(exc), directive=node.line,
            target="*"))
        return
    try:
        infer_count_static(clauses, program.decls)
    except ReproError as exc:
        report.diagnostics.append(make(
            "CI031", node.line, str(exc), directive=node.line,
            target="*"))
    try:
        graph = comm_graph(clauses, nprocs, extra_vars)
        report.patterns[node.line] = classify_pattern(graph)
        for issue in validate_matching(graph):
            code = _MATCH_CODES.get(issue.kind, "CI006")
            report.diagnostics.append(make(
                code, node.line, str(issue), directive=node.line,
                target="*"))
    except ReproError as exc:
        report.diagnostics.append(make(
            "CI032", node.line,
            f"pattern not statically evaluable: {exc}",
            directive=node.line, target="*"))
    verdict = overlap_legal(node)
    if not verdict.legal:
        report.diagnostics.append(make(
            "CI010", node.line, f"illegal overlap: {verdict.reason}",
            directive=node.line, target="*"))
