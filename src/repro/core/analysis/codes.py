"""Stable diagnostic codes and the :class:`Diagnostic` record.

Every finding of the static analyses carries a ``CI``-prefixed code so
tool output is machine-checkable and diff-stable: CLI text, JSON and
SARIF renderers, CI gates, and the docs table in ``docs/LINT.md`` all
key on these. Codes are append-only — a released code never changes
meaning.

Code ranges:

* ``CI000``         — pragma syntax errors (the parser rejected the file);
* ``CI001``–``CI009`` — deadlock and matching proofs (happens-before);
* ``CI010``–``CI019`` — stale-read proofs (data guaranteed by sync);
* ``CI020``–``CI029`` — synchronization-consolidation safety;
* ``CI030``–``CI039`` — clause/declaration/inference validation;
* ``CI040``–``CI049`` — byte-interval aliasing and race proofs
  (conflicting overlapping accesses unordered in the happens-before
  graph), emitted by :mod:`repro.core.analysis.races` with byte-range
  evidence;
* ``CI100``–``CI119`` — performance advisories (missed consolidation,
  forfeited overlap, oversized transfers, lowering-target mismatch),
  emitted by :mod:`repro.core.analysis.advisor` with a net-model
  estimated saving in modeled seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity spellings, strongest first (ordering key for reports).
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")


@dataclass(frozen=True)
class Rule:
    """One diagnostic rule: a stable code with its default severity."""

    code: str
    name: str
    severity: str
    summary: str
    #: Generic remediation text (diagnostics may carry a sharper one).
    fixit: str = ""


RULES: dict[str, Rule] = {r.code: r for r in (
    Rule("CI000", "pragma-syntax-error", "error",
         "the pragma parser rejected the annotated source"),
    Rule("CI001", "deadlock-cycle", "error",
         "cross-rank wait-for cycle: every rank in the cycle waits on "
         "communication another member performs only after its own wait",
         "move the synchronization point after the matching posts "
         "(e.g. a later place_sync) or break the wait order"),
    Rule("CI002", "deadlock-missing-message", "error",
         "a synchronization waits for a message that is never sent",
         "make the sender's sendwhen cover the expected source, or "
         "guard the receive with a matching receivewhen"),
    Rule("CI003", "deadlock-no-exposure", "error",
         "a one-sided put has no reachable exposure epoch on the target",
         "make the target's receivewhen true for this transfer so the "
         "generated exposure epoch exists"),
    Rule("CI004", "invalid-rank", "error",
         "a sender/receiver expression evaluates outside 0..nprocs-1",
         "clamp or guard the rank expression with sendwhen/receivewhen"),
    Rule("CI005", "unreceived-send", "warning",
         "a send targets a rank whose receivewhen is false"),
    Rule("CI006", "mismatched-sender", "warning",
         "a receiver's sender clause names a different rank than the "
         "one that actually sends to it"),
    Rule("CI007", "mismatched-lowering", "error",
         "positionally matched send and receive halves lower to "
         "different targets; no backend delivers across lowerings, so "
         "the receiver's synchronization can never complete",
         "give both directives the same target clause (or drop both "
         "target clauses so the default lowering applies)"),
    Rule("CI010", "stale-read-overlap", "error",
         "the overlap body references a buffer that is still in flight",
         "move the access after the synchronization point, or drop the "
         "buffer from the directive"),
    Rule("CI011", "stale-read-unsynchronized", "error",
         "a receive buffer is never guaranteed by any synchronization",
         "add a synchronization covering the directive (place_sync / "
         "comm_flush) before the data is consumed"),
    Rule("CI012", "stale-read-before-sync", "error",
         "a receive buffer is read before the synchronization that "
         "guarantees it",
         "move the read after the guaranteeing synchronization, or "
         "synchronize earlier (place_sync(END_PARAM_REGION))"),
    Rule("CI020", "unsafe-consolidation", "warning",
         "consolidated directives share a buffer across regions; the "
         "sync plan is downgraded with an extra split to stay correct"),
    Rule("CI021", "consolidation-split", "warning",
         "dependent buffers inside one region force synchronization "
         "splits; consolidation is partial"),
    Rule("CI030", "missing-clause", "error",
         "a comm_p2p instance is missing required clauses"),
    Rule("CI031", "inference-failure", "error",
         "count/datatype inference failed (missing declaration, "
         "pointer-only buffers, or mixed element types)"),
    Rule("CI032", "not-evaluable", "info",
         "clause expressions reference names with no static value; the "
         "pattern cannot be unrolled for this world"),
    Rule("CI040", "race-write-write", "error",
         "two unordered writes touch overlapping bytes of one buffer "
         "inside an open communication window; the final contents are "
         "schedule-dependent",
         "order the writes: synchronize the in-flight communication "
         "before the conflicting write, or move the write after the "
         "guaranteeing synchronization"),
    Rule("CI041", "race-read-write", "error",
         "a buffer is written while posted communication still reads "
         "overlapping bytes of it; the transferred data is "
         "schedule-dependent",
         "keep the send buffer unmodified until the synchronization "
         "that completes the transfer, or double-buffer the write"),
    Rule("CI042", "send-recv-aliasing", "error",
         "one directive sends and receives overlapping bytes of the "
         "same local buffer on the same rank; the outgoing data races "
         "with the incoming delivery",
         "use distinct (or non-overlapping) sbuf and rbuf windows on "
         "ranks that play both roles"),
    Rule("CI043", "symmetric-heap-collision", "error",
         "puts from different origin ranks land in overlapping bytes "
         "of one symmetric-heap allocation with no ordering between "
         "the origins; SHMEM delivery order is undefined",
         "give each origin a disjoint byte window of the symmetric "
         "buffer, or order the origins with an intervening "
         "synchronization"),
    Rule("CI100", "missed-consolidation", "warning",
         "adjacent independent communication synchronizes separately; "
         "one consolidated call would cover every transfer "
         "(Section III-A)",
         "merge the adjacent directives into one comm_parameters "
         "region (or place_sync(END_ADJ_PARAM_REGIONS) across the "
         "chain) so synchronization consolidates"),
    Rule("CI101", "forfeited-overlap", "warning",
         "the overlap body is empty while independent work follows the "
         "synchronization point; the overlap window is forfeited",
         "move the following independent statements into the "
         "directive's overlap body so they hide the transfer"),
    Rule("CI102", "eager-sync", "warning",
         "the synchronization completes earlier than the first use of "
         "the received data; independent work between them could still "
         "overlap the transfer",
         "move the independent statements between the synchronization "
         "and the first use into the overlap body"),
    Rule("CI103", "oversized-count", "warning",
         "the explicit count exceeds the smallest declared buffer "
         "length; the transfer moves more bytes than the buffers hold",
         "tighten count to the inferred minimum array length"),
    Rule("CI110", "target-mismatch", "warning",
         "the explicit lowering target is modeled slower than an "
         "alternative for this message set (e.g. the one-sided plan "
         "serializes what two-sided overlaps, or small messages miss "
         "the SHMEM fast path)",
         "retarget the directive to the modeled-fastest lowering"),
)}

#: Codes whose findings prove a hang: the program cannot terminate.
DEADLOCK_CODES: frozenset[str] = frozenset({"CI001", "CI002", "CI003",
                                            "CI007"})

#: Codes whose findings prove a stale read: data consumed unguaranteed.
STALE_READ_CODES: frozenset[str] = frozenset({"CI010", "CI011", "CI012"})

#: Byte-interval race codes (the CI04x family): conflicting overlapping
#: accesses left unordered by the synchronization plan, with byte-range
#: evidence (see :mod:`repro.core.analysis.races`).
RACE_CODES: frozenset[str] = frozenset(
    {"CI040", "CI041", "CI042", "CI043"})

#: Performance-advisory codes (the CI1xx family): each finding carries
#: a net-model estimated saving and, via the advisor, a concrete
#: pragma rewrite that ``repro-lint --fix`` can prove and apply.
ADVISOR_CODES: frozenset[str] = frozenset(
    {"CI100", "CI101", "CI102", "CI103", "CI110"})


def severity_of(code: str) -> str:
    """The default severity of a rule code."""
    rule = RULES.get(code)
    return rule.severity if rule is not None else "warning"


#: Anchor base for per-rule documentation links (SARIF ``helpUri``).
HELP_URI_BASE = ("https://github.com/ipdpsw13-comm-intent/blob/main/"
                 "docs/LINT.md")


def help_uri(code: str) -> str:
    """Stable documentation URI for a rule code (SARIF ``helpUri``)."""
    return f"{HELP_URI_BASE}#{code.lower()}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding about one directive (or the whole program).

    ``code`` is the stable rule id (``CI001``...); ``directive`` is the
    source line of the directive the finding is about (which may differ
    from ``line``, the location the finding points at); ``target`` names
    the lowering target the finding applies to (``"*"`` when it holds
    for every target); ``fixit`` is optional remediation text.
    ``saving_s`` is the advisor's net-model estimated saving in modeled
    seconds for the analyzed ``(nprocs, target, netmodel)`` triple
    (CI1xx findings only).
    """

    severity: str        # "error" | "warning" | "info"
    line: int
    message: str
    code: str = ""
    directive: int | None = None
    target: str | None = None
    fixit: str = ""
    saving_s: float | None = None

    def __str__(self) -> str:
        code = f" [{self.code}]" if self.code else ""
        tgt = (f" ({self.target})"
               if self.target and self.target != "*" else "")
        return f"{self.severity}{code}: line {self.line}: " \
               f"{self.message}{tgt}"

    def sort_key(self) -> tuple[int, str, int, str]:
        """Deterministic report ordering: (line, code, severity, msg)."""
        sev = (SEVERITIES.index(self.severity)
               if self.severity in SEVERITIES else len(SEVERITIES))
        return (self.line, self.code, sev, self.message)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable field order)."""
        out: dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "line": self.line,
            "message": self.message,
        }
        if self.directive is not None:
            out["directive"] = self.directive
        if self.target is not None:
            out["target"] = self.target
        if self.fixit:
            out["fixit"] = self.fixit
        if self.saving_s is not None:
            out["estimated_saving_s"] = self.saving_s
        return out


def diagnostic_from_dict(data: dict[str, object]) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` from :meth:`Diagnostic.as_dict`.

    Exact inverse of the JSON form: optional fields absent from the
    dict restore their dataclass defaults, so a diagnostic survives a
    JSON round trip bit-for-bit. The sharded lint service
    (:mod:`repro.lintserve`) depends on this to keep parallel and
    memoized reports byte-identical to the sequential path.
    """
    line = data["line"]
    if not isinstance(line, int):
        raise TypeError(f"diagnostic line must be an int, got {line!r}")
    directive = data.get("directive")
    if directive is not None and not isinstance(directive, int):
        raise TypeError(f"diagnostic directive must be an int, "
                        f"got {directive!r}")
    target = data.get("target")
    saving = data.get("estimated_saving_s")
    if saving is not None and not isinstance(saving, (int, float)):
        raise TypeError(f"estimated_saving_s must be a number, "
                        f"got {saving!r}")
    return Diagnostic(
        severity=str(data["severity"]),
        line=line,
        message=str(data["message"]),
        code=str(data.get("code", "")),
        directive=directive,
        target=str(target) if target is not None else None,
        fixit=str(data.get("fixit", "")),
        saving_s=float(saving) if saving is not None else None,
    )


def make(code: str, line: int, message: str, *,
         directive: int | None = None, target: str | None = None,
         fixit: str | None = None,
         severity: str | None = None,
         saving_s: float | None = None) -> Diagnostic:
    """Build a diagnostic for a rule, defaulting severity and fix-it."""
    rule = RULES.get(code)
    if severity is None:
        severity = rule.severity if rule is not None else "warning"
    if fixit is None:
        fixit = rule.fixit if rule is not None else ""
    return Diagnostic(severity=severity, line=line, message=message,
                      code=code, directive=directive, target=target,
                      fixit=fixit, saving_s=saving_s)
