"""Whole-program static verification over the directive IR.

The paper's Section I claim is that directives make communication
*analyzable*. This module is the strongest form of that claim the
repository implements: a per-rank symbolic executor that unrolls each
directive for a concrete ``nprocs``, replays the synchronization plan
(:func:`repro.core.analysis.syncopt.plan_synchronization`) the way the
runtime region machinery would, and proves or refutes three properties
over the resulting happens-before graph (:mod:`repro.core.analysis.hb`):

1. **deadlock freedom** — no cross-rank wait-for cycle, no wait on a
   message that is never sent, no one-sided put without a reachable
   exposure epoch (``CI001``/``CI002``/``CI003``);
2. **no stale reads** — every use of a receive buffer is dominated by
   the synchronization that guarantees it (``CI011``/``CI012``; the
   overlap-body case ``CI010`` is covered by
   :func:`repro.core.analysis.overlap.overlap_legal`);
3. **consolidation safety** — directives consolidated into one
   synchronization group have independent buffers; aliasing downgrades
   the plan with an extra split instead of miscompiling (``CI020``).

The executor is deliberately the static twin of
:mod:`repro.core.region`: posts accumulate into a pending set, plan
points flush it, an instance whose buffers alias pending communication
forces the pending synchronization first. The same three *weakenings*
the dynamic sync-plan fuzzer applies to ``PendingComm.sync`` at run
time (:data:`WEAKENINGS`) can be applied here symbolically, which is
what lets ``tests/faults/test_fuzz.py`` cross-check that every plan the
fuzzer catches dynamically is also refuted statically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core import exprs
from repro.core.analysis import hb
from repro.core.analysis.codes import Diagnostic, make
from repro.core.analysis.independence import base_identifier
from repro.core.analysis.races import race_diagnostics
from repro.core.analysis.syncopt import SyncPlan, plan_synchronization
from repro.core.clauses import SyncPlacement, Target
from repro.core.ir import (
    ClauseExprs,
    Node,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.errors import ReproError

#: Sync-plan weakenings shared with the dynamic fuzzer. Each mirrors a
#: bug a hand-written (or miscompiled) synchronization could have:
#:
#: * ``drop-last-recv`` — every synchronization call silently forgets
#:   its last pending receive handle;
#: * ``drop-all-recvs`` — synchronization completes sends only;
#: * ``skip-first-sync`` — each rank's first non-empty synchronization
#:   call is elided entirely (its handles are discarded).
WEAKEN_DROP_LAST_RECV = "drop-last-recv"
WEAKEN_DROP_ALL_RECVS = "drop-all-recvs"
WEAKEN_SKIP_FIRST_SYNC = "skip-first-sync"
WEAKENINGS: tuple[str, ...] = (
    WEAKEN_DROP_LAST_RECV,
    WEAKEN_DROP_ALL_RECVS,
    WEAKEN_SKIP_FIRST_SYNC,
)

_IDENT = re.compile(r"[A-Za-z_]\w*")

#: Raw-code assignment into a subscripted buffer (``buf[i] = ...``,
#: compound assignments included; ``==``/``<=``/``>=``/``!=`` are not
#: assignments).
_ASSIGN = re.compile(
    r"\b([A-Za-z_]\w*)\s*\[([^\][]*)\]\s*(?:[+\-*/%&|^]|<<|>>)?=(?!=)")

_TWO_SIDED = Target.MPI_2SIDE


@dataclass
class VerifyReport:
    """Outcome of one static verification pass (one default target)."""

    target: Target
    nprocs: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: The happens-before graph, for tooling/tests; None when the
    #: program had nothing to unroll.
    graph: hb.HBGraph | None = None
    #: The per-rank symbolic traces, for downstream passes (the CI04x
    #: race analysis) and tests; None when nothing was unrolled.
    tracers: "list[_RankTracer] | None" = None

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity findings (the program is refuted)."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics if d.severity == "warning"]


# ---------------------------------------------------------------------------
# Per-rank symbolic execution


@dataclass
class _Downgrade:
    """One forced synchronization split the executor had to insert."""

    line: int                 # directive that forced the split
    names: frozenset[str]     # aliased buffer names
    cross_region: bool        # aliasing spans a region boundary


class _RankTracer:
    """Symbolically executes the program on one rank.

    Mirrors :class:`repro.core.region.RegionState`: posts accumulate in
    a pending set; plan points (and forced dependent flushes) emit SYNC
    events completing the pending handles, subject to the configured
    weakening.
    """

    def __init__(self, rank: int, nprocs: int, variables: dict[str, int],
                 default_target: Target, plan_points: dict[
                     tuple[int, str], int],
                 rbuf_names: frozenset[str],
                 weakening: str | None,
                 buffer_names: frozenset[str] = frozenset()) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.variables = variables
        self.default_target = default_target
        self.plan_points = plan_points
        self.rbuf_names = rbuf_names
        self.buffer_names = buffer_names or rbuf_names
        self.weakening = weakening
        self.trace: list[hb.Event] = []
        self.handles: list[hb.Handle] = []
        self.pending: list[hb.Handle] = []
        self.downgrades: list[_Downgrade] = []
        #: The placement policy deferring the current carry, mirroring
        #: :class:`repro.core.region.RegionState.carry_mode`.
        self.carry_mode: SyncPlacement | None = None
        self._skipped_first_sync = False
        self._enclosing: list[int] = []

    # -- events -----------------------------------------------------------

    def _event(self, kind: str, line: int, *, directive: int | None = None,
               peer: int | None = None,
               names: frozenset[str] = frozenset(),
               writes: frozenset[tuple[str, str]] = frozenset()
               ) -> hb.Event:
        event = hb.Event(rank=self.rank, index=len(self.trace), kind=kind,
                         line=line, directive=directive, peer=peer,
                         names=names, writes=writes,
                         enclosing=tuple(self._enclosing))
        self.trace.append(event)
        return event

    def _emit_sync(self, line: int) -> None:
        """Flush the pending set through one synchronization call."""
        live = self.pending
        self.pending = []
        if not live:
            return
        if (self.weakening == WEAKEN_SKIP_FIRST_SYNC
                and not self._skipped_first_sync):
            # The call is elided; its handles are never synchronized.
            self._skipped_first_sync = True
            return
        if self.weakening == WEAKEN_DROP_LAST_RECV:
            recvs = [h for h in live if h.kind == "recv"]
            if recvs:
                live = [h for h in live if h is not recvs[-1]]
        elif self.weakening == WEAKEN_DROP_ALL_RECVS:
            live = [h for h in live if h.kind != "recv"]
        if not live:
            return
        event = self._event(hb.SYNC, line)
        for handle in live:
            handle.sync = event

    # -- program walk -----------------------------------------------------

    def run(self, nodes: list[Node]) -> None:
        """Execute the whole program on this rank."""
        self._walk(nodes, region=None, region_clauses=None)
        # The runtime flushes any carried synchronization when the rank
        # finishes (the trailing comm_flush of
        # :func:`repro.core.analysis.progsim.simulate_program`); a
        # terminal BEGIN_NEXT/END_ADJ carry completes there, not at its
        # region's end.
        if self.pending:
            last = self.trace[-1].line if self.trace else 0
            self._emit_sync(last + 1)

    def _walk(self, nodes: list[Node], region: ParamRegionNode | None,
              region_clauses: ClauseExprs | None) -> None:
        for node in nodes:
            if isinstance(node, RawCode):
                self._scan_uses(node)
            elif isinstance(node, ParamRegionNode):
                # Mirror RegionState.on_region_enter/on_region_exit:
                # a carried sync drains at the entry of the region that
                # ends its deferral, and a non-default placement defers
                # this region's own pending instead of flushing it.
                placement = node.place_sync
                if self.carry_mode is SyncPlacement.BEGIN_NEXT_PARAM_REGION:
                    self._emit_sync(node.line)
                    self.carry_mode = None
                elif (self.carry_mode
                      is SyncPlacement.END_ADJ_PARAM_REGIONS
                      and placement
                      is not SyncPlacement.END_ADJ_PARAM_REGIONS):
                    self._emit_sync(node.line)
                    self.carry_mode = None
                self._walk(node.body, node, node.clauses)
                if placement is SyncPlacement.END_PARAM_REGION:
                    self._emit_sync(node.line)
                    self.carry_mode = None
                else:
                    self.carry_mode = placement
            elif isinstance(node, P2PNode):
                self._directive(node, region, region_clauses)

    def _scan_uses(self, node: RawCode) -> None:
        text = "\n".join(node.lines)
        idents = _IDENT.findall(text)
        assigns = [(m.group(1), m.group(2).strip())
                   for m in _ASSIGN.finditer(text)
                   if m.group(1) in self.buffer_names]
        lhs_counts: dict[str, int] = {}
        for name, _ in assigns:
            lhs_counts[name] = lhs_counts.get(name, 0) + 1
        # A name whose every appearance is an assignment LHS is written,
        # not read — it must not count as a stale-read use.
        reads = frozenset(
            name for name in set(idents) & self.rbuf_names
            if idents.count(name) > lhs_counts.get(name, 0))
        writes = frozenset(assigns)
        if reads or writes:
            self._event(hb.USE, node.line, names=reads, writes=writes)

    def _directive(self, node: P2PNode, region: ParamRegionNode | None,
                   region_clauses: ClauseExprs | None) -> None:
        clauses = (region_clauses.merged_into(node.clauses)
                   if region_clauses is not None else node.clauses)
        resolved = _resolve(clauses, self.variables)
        target = clauses.target or self.default_target
        standalone = region is None
        pending_box = [] if standalone else self.pending

        posted: list[hb.Handle] = []
        if resolved is not None:
            sends_here, recvs_here, src, dst = resolved
            # Dependent-buffer flush (Section III-A): an instance whose
            # buffers alias pending communication forces the pending
            # synchronization first — the plan is downgraded, never
            # miscompiled.
            live_names = _live_names(clauses, sends_here, recvs_here)
            if any(live_names & h.names for h in self.pending):
                # The runtime performs this flush for *every* directive
                # whose buffers alias pending communication — a
                # standalone comm_p2p drains carried sync too, it just
                # keeps its own handles in its own set afterwards.
                here = id(region) if region is not None else None
                cross = any(live_names & h.names
                            and h.region_key != here
                            for h in self.pending)
                self.downgrades.append(_Downgrade(
                    node.line, live_names, cross))
                self._emit_sync(node.line)
                self.carry_mode = None
                if not standalone:
                    pending_box = self.pending
            # Receives before sends, as the runtime posts them (so
            # one-sided exposure precedes the matching put).
            if recvs_here and 0 <= src < self.nprocs:
                for rb in clauses.rbuf:
                    posted.append(self._post("recv", node, src,
                                             frozenset({
                                                 base_identifier(rb)}),
                                             target, region, rb))
            if sends_here and 0 <= dst < self.nprocs:
                for i, sb in enumerate(clauses.sbuf):
                    # The runtime zips sbuf with rbuf: send i delivers
                    # into the i-th receive buffer on the destination.
                    dest = (clauses.rbuf[i]
                            if i < len(clauses.rbuf) else "")
                    posted.append(self._post("send", node, dst,
                                             frozenset({
                                                 base_identifier(sb)}),
                                             target, region, sb,
                                             dest_expr=dest))
            pending_box.extend(posted)

        self._enclosing.append(node.line)
        self._walk(node.body, region, region_clauses)
        self._enclosing.pop()

        if standalone:
            # A standalone comm_p2p synchronizes its own pending at its
            # exit, independent of any carried communication.
            saved = self.pending
            self.pending = pending_box
            self._emit_sync(node.line)
            self.pending = saved

    def _post(self, kind: str, node: P2PNode, peer: int,
              names: frozenset[str], target: Target,
              region: ParamRegionNode | None,
              expr: str = "", dest_expr: str = "") -> hb.Handle:
        event = self._event(hb.POST_SEND if kind == "send"
                            else hb.POST_RECV,
                            node.line, directive=node.line, peer=peer,
                            names=names)
        handle = hb.Handle(kind=kind, rank=self.rank, peer=peer,
                           post=event, directive=node.line, names=names,
                           target=target.value, expr=expr,
                           dest_expr=dest_expr,
                           region_key=(id(region) if region is not None
                                       else None))
        self.handles.append(handle)
        return handle


def _live_names(clauses: ClauseExprs, sends_here: bool,
                recvs_here: bool) -> frozenset[str]:
    """Buffer base names this rank actually touches at the directive."""
    names: set[str] = set()
    if sends_here:
        names.update(base_identifier(e) for e in clauses.sbuf)
    if recvs_here:
        names.update(base_identifier(e) for e in clauses.rbuf)
    return frozenset(names)


def _resolve(clauses: ClauseExprs, variables: dict[str, int]
             ) -> tuple[bool, bool, int, int] | None:
    """Evaluate one directive's when/rank clauses on one rank.

    Returns ``(sends_here, recvs_here, source, dest)`` or None when the
    clauses cannot be evaluated statically (missing clauses, unknown
    free names). Unused halves evaluate to -1.
    """
    try:
        clauses.require_complete()
        sends_here = bool(
            exprs.evaluate(clauses.exprs["sendwhen"], variables)
            if "sendwhen" in clauses.exprs else True)
        recvs_here = bool(
            exprs.evaluate(clauses.exprs["receivewhen"], variables)
            if "receivewhen" in clauses.exprs else True)
        src = (int(exprs.evaluate(clauses.exprs["sender"], variables))
               if recvs_here else -1)
        dst = (int(exprs.evaluate(clauses.exprs["receiver"], variables))
               if sends_here else -1)
    except ReproError:
        return None
    return sends_here, recvs_here, src, dst


# ---------------------------------------------------------------------------
# Cross-rank assembly


def _plan_point_map(plan: SyncPlan) -> dict[tuple[int, str], int]:
    """(node id, position) -> source line of the attached sync call."""
    points: dict[tuple[int, str], int] = {}
    for point in plan.points:
        points[(id(point.node), point.position)] = point.node.line
    return points


def _match(tracers: list[_RankTracer]) -> None:
    """Pair send and receive halves positionally per ordered rank pair,
    mirroring the runtime's per-channel sequence numbers."""
    sends: dict[tuple[int, int], list[hb.Handle]] = {}
    recvs: dict[tuple[int, int], list[hb.Handle]] = {}
    for tracer in tracers:
        for handle in tracer.handles:
            if handle.kind == "send":
                sends.setdefault((handle.rank, handle.peer),
                                 []).append(handle)
            else:
                recvs.setdefault((handle.peer, handle.rank),
                                 []).append(handle)
    for pair, slist in sends.items():
        rlist = recvs.get(pair, [])
        for s, r in zip(slist, rlist):
            if s.target != r.target:
                # The shared sequence counters pair these halves, but
                # no backend delivers across lowerings: a SHMEM put
                # never satisfies an MPI_Irecv, a two-sided Isend never
                # produces a one-sided notify. The pairing is a
                # lowering error (CI007), not a match.
                s.mislowered = r
                r.mislowered = s
                continue
            s.matched = r
            r.matched = s


def _build_graph(tracers: list[_RankTracer], nprocs: int) -> hb.HBGraph:
    """Target-aware cross-rank dependencies over the rank traces."""
    graph = hb.HBGraph(nprocs=nprocs,
                       traces=[t.trace for t in tracers])
    for tracer in tracers:
        for h in tracer.handles:
            one_sided = h.target != _TWO_SIDED.value
            if h.kind == "send":
                if h.target == Target.MPI_1SIDE.value:
                    # The put itself needs the target's exposure epoch.
                    if h.matched is not None:
                        graph.add_dep(h.post, h.matched.post)
                    elif h.mislowered is not None:
                        graph.add_missing(h.post, "CI007", (
                            f"one-sided put from rank {h.rank} to rank "
                            f"{h.peer} (directive at line "
                            f"{h.directive}, target {h.target}) is "
                            f"paired with a receive lowered to "
                            f"{h.mislowered.target} (directive at line "
                            f"{h.mislowered.directive}); no backend "
                            "delivers across lowerings, so no exposure "
                            "epoch ever reaches the put"),
                            directive=h.directive)
                    else:
                        graph.add_missing(h.post, "CI003", (
                            f"one-sided put from rank {h.rank} to rank "
                            f"{h.peer} (directive at line {h.directive}) "
                            "has no reachable exposure epoch: the "
                            "target's receivewhen never exposes the "
                            "buffer"), directive=h.directive)
                continue
            # Receive halves: the guaranteeing sync waits for either the
            # matching post (two-sided) or the origin's flushing sync
            # (one-sided notify).
            if h.sync is None:
                continue
            if h.matched is None:
                if h.mislowered is not None:
                    graph.add_missing(h.sync, "CI007", (
                        f"synchronization at line {h.sync.line} on "
                        f"rank {h.rank} waits for a message from rank "
                        f"{h.peer} lowered to {h.mislowered.target} "
                        f"(directive at line "
                        f"{h.mislowered.directive}), but this receive "
                        f"is lowered to {h.target} (directive at line "
                        f"{h.directive}); no backend delivers across "
                        "lowerings"), directive=h.directive)
                else:
                    graph.add_missing(h.sync, "CI002", (
                        f"synchronization at line {h.sync.line} on "
                        f"rank {h.rank} waits for a message from "
                        f"sender {h.peer} to receiver {h.rank} "
                        f"(directive at line {h.directive}) that is "
                        "never sent"), directive=h.directive)
            elif not one_sided:
                graph.add_dep(h.sync, h.matched.post)
            elif h.matched.sync is None:
                graph.add_missing(h.sync, "CI002", (
                    f"synchronization at line {h.sync.line} on rank "
                    f"{h.rank} waits for the notify of the message from "
                    f"sender {h.peer} to receiver {h.rank} (directive "
                    f"at line {h.directive}), but the sender's flushing "
                    "synchronization never runs"),
                    directive=h.directive)
            else:
                # A one-sided sync flushes outgoing puts and notifies
                # *before* waiting on incoming notifies, so the receiver
                # only needs the sender to *reach* its sync call — i.e.
                # everything before it on the sender's rank, not the
                # sync's own completion (that would manufacture cycles).
                sender_trace = graph.traces[h.matched.rank]
                graph.add_dep(h.sync,
                              sender_trace[h.matched.sync.index - 1])
    return graph


# ---------------------------------------------------------------------------
# Property checks


def _deadlock_diagnostics(graph: hb.HBGraph, target: Target,
                          loop_varying: frozenset[int]
                          ) -> list[Diagnostic]:
    done = graph.executable()
    if len(done) == sum(len(t) for t in graph.traces):
        return []  # every rank runs to completion
    out: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()
    blocked = graph.blocked_frontier(done)
    for event in blocked:
        for code, reason, dline in graph.missing.get(event, ()):
            if (code, reason) in seen:
                continue
            seen.add((code, reason))
            # A missing partner is only a *proof* when the directive
            # runs once with these clause values. Under max_comm_iter
            # with loop-carried partner expressions (the paper's
            # Listing 7: receiver(rcv_rank) advances per iteration),
            # one unrolled snapshot cannot establish starvation —
            # demote to a warning.
            if dline is not None and dline in loop_varying:
                out.append(make(
                    code, event.line, reason
                    + " in this unrolled snapshot; the directive "
                    "iterates (max_comm_iter) with loop-carried "
                    "partner expressions, so a later iteration may "
                    "satisfy it", directive=dline,
                    target=target.value, severity="warning"))
                continue
            out.append(make(code, event.line, reason,
                            directive=dline,
                            target=target.value))
    cycle = hb.find_cycle(graph, done)
    if cycle:
        hops = []
        for i, event in enumerate(cycle):
            waits_on = cycle[(i + 1) % len(cycle)]
            hops.append(f"rank {event.rank} blocks at "
                        f"{event.describe()} waiting on rank "
                        f"{waits_on.rank}")
        out.append(make(
            "CI001", cycle[0].line,
            "deadlock cycle: " + "; ".join(hops),
            directive=cycle[0].directive, target=target.value))
    return out


def _stale_read_diagnostics(tracers: list[_RankTracer],
                            target: Target) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    never: dict[tuple[int, frozenset[str]], list[int]] = {}
    early: dict[tuple[int, frozenset[str], int, str], list[int]] = {}
    for tracer in tracers:
        for h in tracer.handles:
            if h.kind != "recv":
                continue
            if h.sync is None:
                never.setdefault((h.directive, h.names),
                                 []).append(h.rank)
            for use in tracer.trace:
                if use.kind != hb.USE or use.index <= h.post.index:
                    continue
                if not (use.names & h.names):
                    continue
                if h.directive in use.enclosing:
                    continue  # overlap-body case: CI010 (overlap_legal)
                if h.sync is None or use.index < h.sync.index:
                    code = "CI011" if h.sync is None else "CI012"
                    early.setdefault(
                        (h.directive, h.names, use.line, code),
                        []).append(h.rank)
    for (directive, names, use_line, code), ranks in sorted(
            early.items(), key=lambda kv: (kv[0][2], kv[0][0])):
        what = ("is never guaranteed by any synchronization"
                if code == "CI011"
                else "is read before the synchronization that "
                     "guarantees it")
        out.append(make(
            code, use_line,
            f"stale read: {_namelist(names)} received by the directive "
            f"at line {directive} {what} "
            f"(rank{_plural(ranks)} {_ranklist(ranks)})",
            directive=directive, target=target.value))
    for (directive, names), ranks in sorted(never.items()):
        out.append(make(
            "CI011", directive,
            f"receive buffer{_plural(list(names))} {_namelist(names)} "
            f"of the directive at line {directive} "
            f"{'are' if len(names) > 1 else 'is'} never guaranteed by "
            f"any synchronization; the final data is stale on "
            f"rank{_plural(ranks)} {_ranklist(ranks)}",
            directive=directive, target=target.value))
    return out


def _consolidation_diagnostics(tracers: list[_RankTracer],
                               target: Target) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    seen: set[int] = set()
    for tracer in tracers:
        for d in tracer.downgrades:
            if not d.cross_region or d.line in seen:
                continue
            seen.add(d.line)
            out.append(make(
                "CI020", d.line,
                f"directive at line {d.line} shares "
                f"{_namelist(d.names)} with communication consolidated "
                "from an earlier region; the sync plan is downgraded "
                "with an extra synchronization before this directive",
                directive=d.line, target=target.value))
    return out


def _namelist(names: frozenset[str]) -> str:
    return ", ".join(repr(n) for n in sorted(names))


def _ranklist(ranks: list[int]) -> str:
    return ", ".join(str(r) for r in sorted(set(ranks)))


def _plural(items: list[int] | list[str]) -> str:
    return "s" if len(set(items)) > 1 else ""


# ---------------------------------------------------------------------------
# Entry point


def _plan_fingerprint(plan: SyncPlan) -> tuple[tuple[int, str], ...]:
    """Cache-key shape of a sync plan: its (line, position) points."""
    return tuple(sorted((p.node.line, p.position) for p in plan.points))


def _unroll(program: Program, nprocs: int, target: Target,
            variables_base: dict[str, int], plan: SyncPlan,
            weakening: str | None) -> hb.CachedUnroll:
    """Symbolically execute the program on every rank and assemble the
    cross-rank happens-before graph (``graph=None`` when nothing was
    posted anywhere)."""
    rbuf_names = frozenset(
        base_identifier(e) for node in program.all_p2p()
        for e in node.clauses.rbuf)
    buffer_names = frozenset(program.decls) | rbuf_names | frozenset(
        base_identifier(e) for node in program.all_p2p()
        for e in node.clauses.sbuf)
    plan_points = _plan_point_map(plan)
    tracers: list[_RankTracer] = []
    for rank in range(nprocs):
        variables = dict(variables_base)
        variables["rank"] = rank
        tracer = _RankTracer(rank, nprocs, variables, target,
                             plan_points, rbuf_names, weakening,
                             buffer_names)
        tracer.run(program.nodes)
        tracers.append(tracer)
    if not any(t.handles for t in tracers):
        return hb.CachedUnroll(tracers=list(tracers), graph=None)
    _match(tracers)
    return hb.CachedUnroll(tracers=list(tracers),
                           graph=_build_graph(tracers, nprocs))


def undefined_payload_buffers(
        program: Program, nprocs: int,
        target: Target | str = Target.MPI_2SIDE,
        extra_vars: dict[str, int] | None = None
        ) -> frozenset[tuple[int, str]]:
    """``(rank, buffer)`` pairs whose final contents the directive
    contract leaves undefined under one default target.

    A send with no matching receive is never guaranteed by any
    synchronization: a SHMEM put lands its bytes anyway, a two-sided
    Isend never does, and the deferred-delivery fault mode legitimately
    parks them forever. Bit-for-bit payload comparisons (across
    lowerings, or across adversarial schedules) must exclude these
    buffers — their contents are lowering- and schedule-defined, not
    program-defined.
    """
    target = Target.parse(target)
    plan = plan_synchronization(program)
    variables_base: dict[str, int] = {"nprocs": nprocs, "size": nprocs}
    if extra_vars:
        variables_base.update(extra_vars)
    key = hb.unroll_key(program.to_source(), nprocs, target.value,
                        extra_vars, None, _plan_fingerprint(plan))
    unroll = hb.GRAPH_CACHE.get(key)
    if unroll is None:
        unroll = _unroll(program, nprocs, target, variables_base, plan,
                         None)
        hb.GRAPH_CACHE.put(key, unroll)
    out: set[tuple[int, str]] = set()
    for tracer in unroll.tracers:
        for h in tracer.handles:
            if h.kind != "send" or not h.dest_expr:
                continue
            if h.matched is None:
                out.add((h.peer, base_identifier(h.dest_expr)))
            elif h.matched.expr != h.dest_expr:
                # The pairing disagrees on the delivery site: a put
                # writes where the *sender* aims, a two-sided receive
                # where the *receiver* posted. Both destinations are
                # lowering-defined, not program-defined.
                out.add((h.peer, base_identifier(h.dest_expr)))
                out.add((h.peer, base_identifier(h.matched.expr)))
    return frozenset(out)


def verify_program(program: Program, nprocs: int = 8,
                   target: Target | str = Target.MPI_2SIDE,
                   extra_vars: dict[str, int] | None = None,
                   plan: SyncPlan | None = None,
                   weakening: str | None = None,
                   report_unrollable: bool = True,
                   cache: bool = True) -> VerifyReport:
    """Statically verify a parsed program for one default target.

    Unrolls every directive over ``nprocs`` ranks (a directive's own
    ``target`` clause overrides the default), replays ``plan`` (the
    consolidated synchronization schedule; computed when omitted), and
    checks deadlock freedom, stale-read freedom, and consolidation
    safety. ``weakening`` applies one of :data:`WEAKENINGS` to every
    synchronization, mirroring the dynamic fuzzer's adversarial plans.

    With ``cache=True`` (the default) the symbolic unroll — tracers
    plus happens-before graph — is memoized in
    :data:`repro.core.analysis.hb.GRAPH_CACHE`, keyed by the content
    hash of (printed source, nprocs, extra_vars, target, weakening,
    plan shape): the verify and race passes of a batch lint share one
    graph per (program, nprocs, target) instead of rebuilding it.
    """
    target = Target.parse(target)
    if weakening is not None and weakening not in WEAKENINGS:
        raise ValueError(f"unknown weakening {weakening!r}; "
                         f"expected one of {WEAKENINGS}")
    if plan is None:
        plan = plan_synchronization(program)
    report = VerifyReport(target=target, nprocs=nprocs)

    variables_base: dict[str, int] = {"nprocs": nprocs, "size": nprocs}
    if extra_vars:
        variables_base.update(extra_vars)

    if report_unrollable:
        report.diagnostics.extend(
            _unrollable_diagnostics(program, variables_base, target))

    unroll: hb.CachedUnroll | None = None
    key = ""
    if cache:
        key = hb.unroll_key(program.to_source(), nprocs, target.value,
                            extra_vars, weakening,
                            _plan_fingerprint(plan))
        unroll = hb.GRAPH_CACHE.get(key)
    if unroll is None:
        unroll = _unroll(program, nprocs, target, variables_base, plan,
                         weakening)
        if cache:
            hb.GRAPH_CACHE.put(key, unroll)
    tracers: list[_RankTracer] = list(unroll.tracers)
    if unroll.graph is None:
        report.graph = None
        return report

    graph = unroll.graph
    report.graph = graph
    report.tracers = tracers
    loop_varying = _loop_varying_lines(program)
    deadlocks = _deadlock_diagnostics(graph, target, loop_varying)
    report.diagnostics.extend(deadlocks)
    report.diagnostics.extend(_stale_read_diagnostics(tracers, target))
    report.diagnostics.extend(
        _consolidation_diagnostics(tracers, target))
    if not any(d.severity == "error" for d in deadlocks):
        # The race pass needs the executability fixpoint to order
        # events (vector clocks); a refuted-deadlocked unroll has no
        # meaningful clocks to reason over.
        report.diagnostics.extend(race_diagnostics(
            program, tracers, graph, target, loop_varying))
    report.diagnostics.sort(key=lambda d: d.sort_key())
    return report


def verify_all_targets(program: Program, nprocs: int = 8,
                       extra_vars: dict[str, int] | None = None,
                       plan: SyncPlan | None = None,
                       targets: "list[Target] | None" = None,
                       weakening: str | None = None,
                       report_unrollable: bool = False,
                       cache: bool = True) -> dict[Target, VerifyReport]:
    """Batch entry point: one :class:`VerifyReport` per lowering target.

    The sync plan is computed once and shared across the sweep; the
    unroll cache makes re-sweeps of the same source (the differential
    oracle, the fix engine's proof gate, batch lints) near-free.
    """
    if plan is None:
        plan = plan_synchronization(program)
    swept = list(targets) if targets else list(Target)
    return {target: verify_program(
        program, nprocs=nprocs, target=target, extra_vars=extra_vars,
        plan=plan, weakening=weakening,
        report_unrollable=report_unrollable, cache=cache)
        for target in swept}


#: Names the unroller itself binds; anything else is a program value.
_STATIC_NAMES = frozenset({"rank", "nprocs", "size"})


def _loop_varying_lines(program: Program) -> frozenset[int]:
    """Directives whose partner choice is loop-carried.

    A directive under ``max_comm_iter`` whose sender/receiver/when
    expressions reference program variables communicates with different
    partners on different iterations; one static unroll is a single
    snapshot of that loop, so missing-partner findings against it are
    demoted from proofs to warnings.
    """
    lines: set[int] = set()
    for node in program.all_p2p():
        region = next((r for r in program.regions()
                       if node in r.p2p_instances()), None)
        clauses = (region.clauses.merged_into(node.clauses)
                   if region is not None else node.clauses)
        # max_comm_iter is region-level only and stripped by the merge.
        iterates = ("max_comm_iter" in node.clauses.exprs
                    or (region is not None
                        and "max_comm_iter" in region.clauses.exprs))
        if not iterates:
            continue
        names: set[str] = set()
        for k in ("sender", "receiver", "sendwhen", "receivewhen"):
            if k in clauses.exprs:
                try:
                    names |= exprs.free_names(clauses.exprs[k])
                except ReproError:
                    pass
        if names - _STATIC_NAMES:
            lines.add(node.line)
    return frozenset(lines)


def _unrollable_diagnostics(program: Program,
                            variables: dict[str, int],
                            target: Target) -> list[Diagnostic]:
    """CI032 for directives whose clauses cannot be evaluated."""
    out: list[Diagnostic] = []
    probe = dict(variables)
    probe["rank"] = 0
    for node in program.all_p2p():
        region = next((r for r in program.regions()
                       if node in r.p2p_instances()), None)
        clauses = (region.clauses.merged_into(node.clauses)
                   if region is not None else node.clauses)
        if not all(clauses.has(n) for n in
                   ("sender", "receiver", "sbuf", "rbuf")):
            continue  # CI030 is the linter's finding
        if _resolve(clauses, probe) is None:
            names: set[str] = set()
            for k in ("sender", "receiver", "sendwhen", "receivewhen",
                      "count"):
                if k in clauses.exprs:
                    try:
                        names |= exprs.free_names(clauses.exprs[k])
                    except ReproError:
                        pass
            unknown = sorted(names - set(probe))
            out.append(make(
                "CI032", node.line,
                f"directive cannot be unrolled statically: no value "
                f"for free name(s) {unknown} (pass extra_vars/--var)",
                directive=node.line, target=target.value))
    return out
