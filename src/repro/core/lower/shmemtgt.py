"""``TARGET_COMM_SHMEM``: typed shmem_put + quiet/notify.

Each directive message becomes a typed ``shmem_put`` whose variant is
chosen by the buffers' element storage size — the call-name/type
matching the paper's compiler performs ("data type selection is tightly
coupled with the communication call, in that the data type is embedded
in the name of the library call", Section III-A). The receive buffer
must be a symmetric data object; :func:`repro.core.buffers.
check_target_buffers` enforced that before lowering.

Synchronization: the origin's ``shmem_quiet`` completes its outstanding
puts, followed by one flag notify per message; receivers wait on their
notifies (the ``shmem_wait_until`` idiom of generated code).
"""

from __future__ import annotations

from repro import shmem
from repro.core.buffers import array_of
from repro.core.clauses import Target
from repro.core.lower.base import Backend, RecvHandle, SendHandle
from repro.core.lower.notify import ExposureService
from repro.errors import LoweringError
from repro.shmem.symheap import SymArray


class ShmemBackend(Backend):
    target = Target.SHMEM

    def __init__(self, env):
        super().__init__(env)
        self.sh = shmem.init(env)
        self.svc = ExposureService.attach(env.engine)

    @staticmethod
    def _put_spec(data) -> tuple[int | None, str]:
        """The size-matched typed-put call for a buffer (compile-time
        matching): ``(element size to enforce, call name)``."""
        size = data.dtype.itemsize
        if size == 8:
            return 8, ("shmem_double_put" if data.dtype.kind == "f"
                       else "shmem_put64")
        if size == 4:
            return 4, ("shmem_float_put" if data.dtype.kind == "f"
                       else "shmem_put32")
        # Composite or odd-width payloads move as raw bytes (putmem).
        return None, "shmem_putmem"

    def _typed_put(self, rbuf: SymArray, data, dest: int) -> float:
        """Dispatch to the size-matched typed put (compile-time matching)."""
        elem_size, name = self._put_spec(data)
        return self.sh._put(rbuf, data, dest, 0, elem_size, name)

    def post_send(self, dest: int, sbuf, rbuf, count: int) -> SendHandle:
        if not isinstance(rbuf, SymArray):
            raise LoweringError(
                "SHMEM target requires symmetric receive buffers")
        src = array_of(sbuf).reshape(-1)[:count]
        seq = self.svc.next_send_seq(self.env.rank, dest)
        faults = self.env.engine.faults
        if faults is not None and faults.deferred_delivery:
            # Deferred delivery: the typed put's target-side write is
            # parked until the receiver's sync consumes the notify.
            elem_size, name = self._put_spec(src)
            completion, commit = self.sh.put_staged(
                rbuf, src, dest, elem_size=elem_size, name=name)
            self.svc.stage(self.env.rank, dest, seq, commit)
        else:
            completion = self._typed_put(rbuf, src, dest)
        handle = SendHandle(backend=self, dest=dest, seq=seq,
                            nbytes=count * src.dtype.itemsize,
                            payload=completion)
        san = self.env.engine.sanitizer
        if san is not None:
            rank = self.env.rank
            # The put writes the destination PE's mirror directly; both
            # that write and the source read stay live until the
            # origin's quiet (same-origin puts to one address are
            # unordered without it — the OpenSHMEM memory model).
            san.open_window(
                ("put", id(handle)), rank, rbuf.mirror_on(dest), 0,
                handle.nbytes, "write",
                f"the shmem put of message #{seq} into PE {dest}'s "
                "symmetric buffer")
            san.open_window(
                ("put-src", id(handle)), rank, array_of(sbuf), 0,
                handle.nbytes, "read",
                f"the shmem put of message #{seq} to PE {dest} "
                "(source read)")
        return handle

    def post_recv(self, source: int, rbuf, count: int) -> RecvHandle:
        self.env.engine.check_peer_alive(source)
        arr = array_of(rbuf)
        seq = self.svc.next_recv_seq(source, self.env.rank)
        return RecvHandle(backend=self, source=source, seq=seq,
                          nbytes=count * arr.dtype.itemsize)

    def sync_publish(self, sends: list[SendHandle]) -> None:
        env = self.env
        san = env.engine.sanitizer
        if sends:
            self.sh.quiet()
            notify_visible = env.now + self.sh._tp.wire_time(8)
            for h in sends:
                if san is not None:
                    # quiet completes this origin's puts; the notify
                    # publishes the post-quiet snapshot the receiver
                    # acquires below.
                    san.close_window(("put", id(h)), env.rank)
                    san.close_window(("put-src", id(h)), env.rank)
                    san.publish(("notify", env.rank, h.dest, h.seq),
                                env.rank)
                self.svc.notify(env, env.rank, h.dest, h.seq,
                                notify_visible)

    def sync_wait(self, sends: list[SendHandle],
                  recvs: list[RecvHandle]) -> None:
        env = self.env
        san = env.engine.sanitizer
        for h in recvs:
            self.svc.await_notify(env, h.source, env.rank, h.seq)
            if san is not None:
                san.acquire(("notify", h.source, env.rank, h.seq),
                            env.rank)
