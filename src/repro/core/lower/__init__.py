"""Lowering: directives -> executable communication on a chosen target.

Each :class:`~repro.core.lower.base.Backend` implements the translation
of one ``target`` keyword:

* :class:`~repro.core.lower.mpi2s.Mpi2sBackend` —
  ``TARGET_COMM_MPI_2SIDE`` (default): non-blocking ``MPI_Isend`` /
  ``MPI_Irecv`` pairs, consolidated into one ``MPI_Waitall``;
* :class:`~repro.core.lower.mpi1s.Mpi1sBackend` —
  ``TARGET_COMM_MPI_1SIDE``: ``MPI_Put`` into dynamically exposed
  target memory, flush + notification at synchronization points;
* :class:`~repro.core.lower.shmemtgt.ShmemBackend` —
  ``TARGET_COMM_SHMEM``: size-matched typed ``shmem_put`` calls into
  symmetric buffers, ``shmem_quiet`` + notification.
"""

from repro.core.lower.base import Backend, RecvHandle, SendHandle, get_backend

__all__ = ["Backend", "RecvHandle", "SendHandle", "get_backend"]
