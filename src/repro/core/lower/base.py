"""Backend protocol shared by the three translation targets.

A backend translates one directive *message* (one buffer pair of a
``comm_p2p`` instance) into library operations, returning handles the
region machinery synchronizes later — possibly consolidated across many
adjacent instances, per the ``place_sync`` policy. Backends are per-rank
objects cached on the engine; :func:`get_backend` is the factory the
directive runtime uses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.clauses import Target
from repro.errors import LoweringError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Env

_SERVICE_KEY = "directive_backends"


@dataclass
class SendHandle:
    """One posted outgoing message awaiting synchronization."""

    backend: "Backend"
    dest: int               # global rank
    seq: int
    nbytes: int
    payload: Any = None     # backend-specific (e.g. an MPI Request)


@dataclass
class RecvHandle:
    """One expected incoming message awaiting synchronization."""

    backend: "Backend"
    source: int             # global rank
    seq: int
    nbytes: int
    payload: Any = None


class Backend(abc.ABC):
    """Translation target for directive messages (one instance per rank)."""

    #: The target keyword this backend implements.
    target: Target

    def __init__(self, env: "Env"):
        self.env = env

    @abc.abstractmethod
    def post_send(self, dest: int, sbuf, rbuf, count: int) -> SendHandle:
        """Initiate the transfer of ``count`` elements of ``sbuf`` toward
        ``dest``'s ``rbuf`` counterpart. Non-blocking in spirit: returns
        once the transfer is in flight locally."""

    @abc.abstractmethod
    def post_recv(self, source: int, rbuf, count: int) -> RecvHandle:
        """Declare the expectation of ``count`` elements into ``rbuf``
        from ``source``. Non-blocking."""

    @abc.abstractmethod
    def sync_publish(self, sends: list[SendHandle]) -> None:
        """Phase 1 of a consolidated sync: complete outgoing transfers
        (flush/quiet) and publish their notifies.

        Must never block on a *peer's* synchronization — a consolidated
        sync spanning several backends publishes every backend's
        notifies first, so no rank can wait in phase 2 for a notify
        another rank would only publish after its own phase-2 wait.
        The static verifier's deadlock model relies on this order (a
        one-sided sync "flushes outgoing puts and notifies before
        waiting on incoming notifies")."""

    @abc.abstractmethod
    def sync_wait(self, sends: list[SendHandle],
                  recvs: list[RecvHandle]) -> None:
        """Phase 2 of a consolidated sync: block until every given
        handle's transfer is complete on this rank."""

    def sync(self, sends: list[SendHandle], recvs: list[RecvHandle]) -> None:
        """One consolidated synchronization covering all given handles.

        This is the call the directive translation reduces adjacent
        communication to (Section III-A: "synchronization is
        consolidated and reduced in most cases to one call at the end
        of all the adjacent communication"). Both phases back to back;
        a multi-backend consolidated sync interleaves them instead
        (see :meth:`repro.core.region.PendingComm.sync`).
        """
        self.sync_publish(sends)
        self.sync_wait(sends, recvs)


def get_backend(env: "Env", target: Target) -> Backend:
    """This rank's backend for ``target`` (created once, then cached)."""
    cache: dict[tuple[int, Target], Backend]
    cache = env.engine.services.setdefault(_SERVICE_KEY, {})
    key = (env.rank, target)
    backend = cache.get(key)
    if backend is None:
        # Imports here to avoid a cycle (backends import this module).
        from repro.core.lower.mpi1s import Mpi1sBackend
        from repro.core.lower.mpi2s import Mpi2sBackend
        from repro.core.lower.shmemtgt import ShmemBackend
        factories = {
            Target.MPI_2SIDE: Mpi2sBackend,
            Target.MPI_1SIDE: Mpi1sBackend,
            Target.SHMEM: ShmemBackend,
        }
        factory = factories.get(target)
        if factory is None:
            raise LoweringError(f"no backend for target {target}")
        backend = factory(env)
        cache[key] = backend
    return backend
