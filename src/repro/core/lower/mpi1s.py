"""``TARGET_COMM_MPI_1SIDE``: MPI_Put + flush/notify synchronization.

Each directive message becomes an ``MPI_Put`` of the send buffer into
the receiver's exposed ``rbuf``. Window collectivity is avoided by the
dynamic-exposure model of :mod:`repro.core.lower.notify`: the receiver
registers its buffer when it reaches the directive; an origin arriving
first waits for the exposure (the access-epoch ordering a real window
imposes). Synchronization flushes the origin's outstanding puts and
posts one notify per message; the receiver's synchronization waits for
the notifies of everything it expects.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffers import array_of
from repro.core.clauses import Target
from repro.core.lower.base import Backend, RecvHandle, SendHandle
from repro.core.lower.notify import ExposureService
from repro.errors import TruncationError
from repro.netmodel.base import MPI_1SIDED


class Mpi1sBackend(Backend):
    target = Target.MPI_1SIDE

    def __init__(self, env):
        super().__init__(env)
        # Reuse the MPI world's model if one exists so directive targets
        # are compared under identical machine assumptions.
        from repro import mpi
        self.comm = mpi.init(env)
        self.model = self.comm.world.model
        self.tp = self.model.transport(MPI_1SIDED)
        self.svc = ExposureService.attach(env.engine)

    def post_send(self, dest: int, sbuf, rbuf, count: int) -> SendHandle:
        self.env.engine.check_peer_alive(dest)
        src = array_of(sbuf)
        nbytes = count * src.dtype.itemsize
        seq = self.svc.next_send_seq(self.env.rank, dest)
        target_arr = self.svc.await_exposure(self.env, self.env.rank,
                                             dest, seq)
        san = self.env.engine.sanitizer
        if san is not None:
            # The exposure handshake is an acquire: the origin's access
            # epoch orders after the receiver's pre-exposure history.
            san.acquire(("expose", self.env.rank, dest, seq),
                        self.env.rank)
        if target_arr.nbytes < nbytes:
            raise TruncationError(
                f"MPI_Put of {nbytes} bytes exceeds the exposed "
                f"{target_arr.nbytes}-byte target buffer")
        post_t0 = self.env.now
        self.env.advance(self.tp.send_overhead(nbytes))
        dst_bytes = target_arr.reshape(-1).view(np.uint8)
        src_bytes = np.ascontiguousarray(src).reshape(-1).view(np.uint8)
        faults = self.env.engine.faults
        if faults is not None and faults.deferred_delivery:
            # The put reads the source now, but the target-side write is
            # parked until the receiver's sync consumes the notify.
            data = src_bytes[:nbytes].copy()

            def commit(dst_bytes=dst_bytes, data=data, nbytes=nbytes):
                dst_bytes[:nbytes] = data

            self.svc.stage(self.env.rank, dest, seq, commit)
        else:
            dst_bytes[:nbytes] = src_bytes[:nbytes]
        extra = (faults.message_delay(self.tp, self.env.rank, dest, nbytes)
                 if faults is not None else 0.0)
        completion = self.env.now + self.tp.wire_time(nbytes) + extra
        self.comm.world.stats.count_message(MPI_1SIDED, nbytes)
        self.env.trace("dir.mpi1s.put", dest=dest, nbytes=nbytes)
        profile = self.env.engine.profile
        if profile is not None:
            profile.add(dest, "message", post_t0, completion,
                        src=self.env.rank, dst=dest, seq=seq,
                        nbytes=nbytes, transport="mpi1s")
        handle = SendHandle(backend=self, dest=dest, seq=seq,
                            nbytes=nbytes, payload=completion)
        if san is not None:
            rank = self.env.rank
            # The put's target-side write and source-side read are both
            # live until the origin's flush (the directive contract: no
            # buffer may be touched before the guaranteeing sync).
            san.open_window(
                ("put", id(handle)), rank, target_arr, 0, nbytes,
                "write",
                f"the put of message #{seq} into rank {dest}'s buffer")
            san.open_window(
                ("put-src", id(handle)), rank, src, 0, nbytes, "read",
                f"the put of message #{seq} to rank {dest} (source "
                "read)")
        return handle

    def post_recv(self, source: int, rbuf, count: int) -> RecvHandle:
        self.env.engine.check_peer_alive(source)
        arr = array_of(rbuf)
        seq = self.svc.next_recv_seq(source, self.env.rank)
        san = self.env.engine.sanitizer
        if san is not None:
            # Publish the receiver's snapshot with the exposure: the
            # origin acquires it before writing the exposed buffer.
            san.publish(("expose", source, self.env.rank, seq),
                        self.env.rank)
        self.svc.expose(self.env, source, self.env.rank, seq, arr)
        return RecvHandle(backend=self, source=source, seq=seq,
                          nbytes=count * arr.dtype.itemsize)

    def sync_publish(self, sends: list[SendHandle]) -> None:
        env = self.env
        san = env.engine.sanitizer
        if sends:
            # Local flush of the access epoch, then one notify per
            # message (the flag put the generated code pairs with data).
            env.advance(self.model.fence_overhead)
            self.comm.world.stats.count_sync("flush")
            env.advance_to(max(h.payload for h in sends))
            notify_visible = env.now + self.tp.wire_time(8)
            for h in sends:
                if san is not None:
                    # Close at the flush, then publish the post-flush
                    # snapshot with the notify: the receiver's acquire
                    # orders the put before its post-sync accesses.
                    san.close_window(("put", id(h)), env.rank)
                    san.close_window(("put-src", id(h)), env.rank)
                    san.publish(("notify", env.rank, h.dest, h.seq),
                                env.rank)
                self.svc.notify(env, env.rank, h.dest, h.seq,
                                notify_visible)

    def sync_wait(self, sends: list[SendHandle],
                  recvs: list[RecvHandle]) -> None:
        env = self.env
        san = env.engine.sanitizer
        for h in recvs:
            self.svc.await_notify(env, h.source, env.rank, h.seq)
            if san is not None:
                san.acquire(("notify", h.source, env.rank, h.seq),
                            env.rank)
