"""Exposure and notification plumbing for the one-sided backends.

A one-sided translation has two problems a two-sided one does not:

1. **Exposure** (MPI one-sided only): the origin needs the target's
   buffer. Real generated code would create an RMA window; creating MPI
   windows is collective over a communicator, which a point-to-point
   directive reached by a subset of ranks cannot afford. We model the
   *dynamic-window* style instead: the receiving rank registers its
   ``rbuf`` when it reaches the directive; an origin arriving first
   blocks until the exposure exists (the access-epoch ordering a real
   window would impose).

2. **Notification**: a put moves data but tells the target nothing.
   The generated code a real compiler emits pairs the payload puts with
   a flag update the target waits on. We model that flag: at a sender's
   synchronization point, after its local flush, one 8-byte notify
   "put" per message is recorded with its visibility time; the
   receiver's synchronization blocks until the notifies for all its
   expected messages are visible.

Matching is by per-(sender, receiver) sequence number: the n-th
directive message from A to B pairs with the n-th expectation B posts
for A — well-defined because SPMD ranks execute directives in program
order (the same discipline MPI imposes on collectives).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Env

_SERVICE_KEY = "onesided_exposure"


class ExposureService:
    """Engine-wide registry of exposures, notifications and sequence
    counters for the one-sided backends."""

    def __init__(self) -> None:
        #: (src, dst, seq) -> exposed target ndarray.
        self.exposed: dict[tuple[int, int, int], np.ndarray] = {}
        #: (src, dst, seq) -> waiter of an origin blocked on exposure.
        self.exposure_waiters: dict[tuple[int, int, int], object] = {}
        #: (src, dst, seq) -> visibility time of the sender's notify.
        self.notified: dict[tuple[int, int, int], float] = {}
        #: (src, dst, seq) -> waiter of a receiver blocked on a notify.
        self.notify_waiters: dict[tuple[int, int, int], object] = {}
        #: per-(src, dst) message sequence counters, per side.
        self.send_seq: dict[tuple[int, int], int] = {}
        self.recv_seq: dict[tuple[int, int], int] = {}
        #: (src, dst, seq) -> deferred-delivery commit callable (fault
        #: injection): the payload write parked until the receiver's
        #: synchronization consumes the matching notify.
        self.staged: dict[tuple[int, int, int], object] = {}

    @classmethod
    def attach(cls, engine: Engine) -> "ExposureService":
        """The engine-wide service instance (created on first use)."""
        svc = engine.services.get(_SERVICE_KEY)
        if svc is None:
            svc = cls()
            engine.services[_SERVICE_KEY] = svc
        return svc

    # -- sequencing -------------------------------------------------------

    def next_send_seq(self, src: int, dst: int) -> int:
        """Allocate the sender-side sequence number of a pair."""
        seq = self.send_seq.get((src, dst), 0)
        self.send_seq[(src, dst)] = seq + 1
        return seq

    def next_recv_seq(self, src: int, dst: int) -> int:
        """Allocate the receiver-side sequence number of a pair."""
        seq = self.recv_seq.get((src, dst), 0)
        self.recv_seq[(src, dst)] = seq + 1
        return seq

    # -- exposure (mpi1s) ---------------------------------------------------

    def expose(self, env: "Env", src: int, dst: int, seq: int,
               buf: np.ndarray) -> None:
        """The receiver exposes its buffer for one expected put."""
        key = (src, dst, seq)
        self.exposed[key] = buf
        waiter = self.exposure_waiters.pop(key, None)
        if waiter is not None:
            env.engine.wake(waiter, env.now)

    def await_exposure(self, env: "Env", src: int, dst: int,
                       seq: int) -> np.ndarray:
        """The origin obtains the exposed target buffer, blocking if the
        receiver has not reached the directive yet."""
        key = (src, dst, seq)
        buf = self.exposed.get(key)
        if buf is None:
            waiter = env.make_waiter(
                f"RMA exposure of message {seq} by rank {dst}")
            self.exposure_waiters[key] = waiter
            env.block("dir.mpi1s.exposure")
            buf = self.exposed[key]
        del self.exposed[key]
        return buf

    # -- notification (both one-sided backends) -----------------------------

    def notify(self, env: "Env", src: int, dst: int, seq: int,
               visible_at: float) -> None:
        """Record the sender's flag update for one message."""
        key = (src, dst, seq)
        self.notified[key] = visible_at
        profile = env.engine.profile
        if profile is not None:
            # The flag update is what actually gates the receiver's
            # synchronization on the one-sided targets — the delivery
            # event critical-path edges follow.
            profile.add(dst, "notify", env.now, visible_at,
                        src=src, dst=dst, seq=seq, nbytes=8)
        waiter = self.notify_waiters.pop(key, None)
        if waiter is not None:
            env.engine.wake(waiter, visible_at)

    def stage(self, src: int, dst: int, seq: int, commit) -> None:
        """Park one message's deferred payload write (fault injection).

        ``commit`` runs when the receiver's synchronization consumes the
        matching notify — the point at which the translation *claims*
        the data is valid. A sync plan that never awaits the notify
        leaves the write uncommitted, which the fuzzer detects.
        """
        self.staged[(src, dst, seq)] = commit

    def _commit_staged(self, key: tuple[int, int, int]) -> None:
        commit = self.staged.pop(key, None)
        if commit is not None:
            commit()

    def await_notify(self, env: "Env", src: int, dst: int,
                     seq: int) -> float:
        """The receiver waits for one message's notify; returns its
        visibility time (the caller's clock already covers it)."""
        key = (src, dst, seq)
        t = self.notified.pop(key, None)
        if t is not None:
            env.advance_to(t)
            self._commit_staged(key)
            return t
        waiter = env.make_waiter(
            f"one-sided notify of message {seq} from rank {src}")
        self.notify_waiters[key] = waiter
        env.block("dir.onesided.notify")
        del self.notified[(src, dst, seq)]
        self._commit_staged(key)
        return env.now
