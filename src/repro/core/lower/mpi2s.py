"""``TARGET_COMM_MPI_2SIDE``: non-blocking Isend/Irecv + one Waitall.

The default translation (Section III-B): each directive message becomes
an ``MPI_Isend``/``MPI_Irecv`` pair on a dedicated matching channel
(so generated traffic can never collide with user tags), with message
sequence numbers as tags. Synchronization consolidates all pending
requests into a single ``MPI_Waitall`` — and uses the library's pooled
request path, the "optimal generation of message passing calls" the
paper attributes to the compiler.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core.buffers import array_of
from repro.core.clauses import Target
from repro.core.lower.base import Backend, RecvHandle, SendHandle
from repro.core.lower.notify import ExposureService
from repro.core.lower.typecache import TypeCache
from repro.mpi.request import Request

#: Matching channel reserved for directive-generated traffic.
_CHANNEL = "dir"


class Mpi2sBackend(Backend):
    target = Target.MPI_2SIDE

    def __init__(self, env):
        super().__init__(env)
        self.comm = mpi.init(env)
        self.svc = ExposureService.attach(env.engine)
        self.typecache = TypeCache.attach(env.engine)

    def _datatype(self, arr: np.ndarray):
        """Basic type for primitive buffers; cached committed struct for
        composite buffers (automatic datatype handling, Section III-A)."""
        if arr.dtype.fields is None:
            return mpi.type_from_buffer(arr)
        return self.typecache.datatype_for(self.comm, arr.dtype)

    def post_send(self, dest: int, sbuf, rbuf, count: int) -> SendHandle:
        arr = array_of(sbuf)
        dt = self._datatype(arr)
        seq = self.svc.next_send_seq(self.env.rank, dest)
        op = self.comm._post_send((arr, count, dt), dest, tag=seq,
                                  pooled=True, channel=_CHANNEL)
        handle = SendHandle(backend=self, dest=dest, seq=seq,
                            nbytes=count * dt.size,
                            payload=Request(op, "send"))
        san = self.env.engine.sanitizer
        if san is not None:
            rank = self.env.rank
            san.publish(("post", rank, dest, seq), rank)
            san.open_window(
                ("send", id(handle)), rank, arr, 0, handle.nbytes, "read",
                f"the posted send of message #{seq} to rank {dest}")
        return handle

    def post_recv(self, source: int, rbuf, count: int) -> RecvHandle:
        arr = array_of(rbuf)
        dt = self._datatype(arr)
        seq = self.svc.next_recv_seq(source, self.env.rank)
        op = self.comm._post_recv((arr, count, dt), source, tag=seq,
                                  pooled=True, channel=_CHANNEL)
        handle = RecvHandle(backend=self, source=source, seq=seq,
                            nbytes=count * dt.size,
                            payload=Request(op, "recv"))
        san = self.env.engine.sanitizer
        if san is not None:
            san.open_window(
                ("recv", id(handle)), self.env.rank, arr, 0,
                handle.nbytes, "write",
                f"the delivery of message #{seq} from rank {source}")
        return handle

    def sync_publish(self, sends: list[SendHandle]) -> None:
        # Two-sided transfers are fully launched at post time; there is
        # nothing a peer could be waiting on that this phase must
        # publish (receivers need the Isend *post*, not its completion).
        del sends

    def sync_wait(self, sends: list[SendHandle],
                  recvs: list[RecvHandle]) -> None:
        requests = [h.payload for h in (*sends, *recvs)]
        if requests:
            self.comm.Waitall(requests)
        san = self.env.engine.sanitizer
        if san is not None:
            rank = self.env.rank
            for h in recvs:
                # The completed receive carries the sender's post-time
                # snapshot: deliveries order after the sender's history.
                san.acquire(("post", h.source, rank, h.seq), rank)
            for h in sends:
                san.close_window(("send", id(h)), rank)
            for h in recvs:
                san.close_window(("recv", id(h)), rank)
