"""Per-scope derived-datatype cache.

Section III-A: when a directive's buffer is a composite type, the
compiler generates MPI calls that create and commit an MPI struct, and
"this new MPI data type is reused within the function scope for any
communication directive with buffers of the same type". We key the
cache on the structured numpy dtype; creation+commit costs are charged
exactly once per (rank, dtype), reuse is free — and the stats counters
(``struct_created`` vs ``struct_reused``) make the amortization visible
to benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.comm import Comm
from repro.mpi.datatypes import Datatype, Type_create_struct, basic
from repro.sim.engine import Engine

_SERVICE_KEY = "directive_typecache"


def _triples_from_dtype(dtype: np.dtype) -> tuple[list, list, list]:
    """Flatten a structured numpy dtype into MPI struct arrays."""
    blocklengths: list[int] = []
    displacements: list[int] = []
    types: list[Datatype] = []

    def emit(dt: np.dtype, base: int) -> None:
        for name in dt.names:
            sub, offset = dt.fields[name][0], dt.fields[name][1]
            if sub.subdtype is not None:
                elem, shape = sub.subdtype
                count = int(np.prod(shape))
            else:
                elem, count = sub, 1
            if elem.fields is not None:
                for i in range(count):
                    emit(elem, base + offset + i * elem.itemsize)
            else:
                blocklengths.append(count)
                displacements.append(base + offset)
                types.append(_basic_for(elem))

    emit(dtype, 0)
    return blocklengths, displacements, types


def _basic_for(elem: np.dtype) -> Datatype:
    kind_map = {
        ("i", 1): "MPI_CHAR", ("u", 1): "MPI_BYTE",
        ("i", 4): "MPI_INT", ("i", 8): "MPI_LONG",
        ("f", 4): "MPI_FLOAT", ("f", 8): "MPI_DOUBLE",
    }
    name = kind_map.get((elem.kind, elem.itemsize))
    if name is None:
        # i2/u2/u4/u8 map onto same-width basics for transfer purposes.
        fallback = {1: "MPI_CHAR", 2: "MPI_CHAR", 4: "MPI_INT",
                    8: "MPI_LONG"}
        name = fallback.get(elem.itemsize, "MPI_BYTE")
    return basic(name)


class TypeCache:
    """Engine-wide cache of committed derived types, per rank."""

    def __init__(self) -> None:
        self._cache: dict[tuple[int, str], Datatype] = {}

    @classmethod
    def attach(cls, engine: Engine) -> "TypeCache":
        """The engine-wide cache instance (created on first use)."""
        svc = engine.services.get(_SERVICE_KEY)
        if svc is None:
            svc = cls()
            engine.services[_SERVICE_KEY] = svc
        return svc

    def datatype_for(self, comm: Comm, dtype: np.dtype) -> Datatype:
        """The committed derived type for a structured dtype.

        First use on a rank creates and commits (charging the model's
        costs); later uses reuse the committed type for free.
        """
        key = (comm.env.rank, dtype.str + str(dtype.fields))
        dt = self._cache.get(key)
        if dt is not None:
            comm.world.stats.count_datatype("struct_reused")
            return dt
        blocklengths, displacements, types = _triples_from_dtype(dtype)
        dt = Type_create_struct(comm, blocklengths, displacements, types)
        dt.size = dtype.itemsize  # extent must match the array stride
        dt.Commit(comm)
        self._cache[key] = dt
        return dt
