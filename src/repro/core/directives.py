"""The user-facing directives: ``comm_parameters`` and ``comm_p2p``.

Runtime embedding of the paper's pragmas as context managers::

    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    with comm_p2p(env, sender=prev, receiver=nxt,
                  sbuf=buf1, rbuf=buf2):
        pass   # body runs overlapped with the transfer

    with comm_parameters(env, sender=from_rank, receiver=to_rank,
                         sendwhen=env.rank == from_rank,
                         receivewhen=env.rank == to_rank,
                         place_sync="END_PARAM_REGION"):
        with comm_p2p(env, sbuf=scalars, rbuf=scalars, count=1):
            pass
        with comm_p2p(env, sbuf=[vr, rhotot], rbuf=[vr, rhotot],
                      count=size1):
            pass

Semantics implemented from Sections III-A/III-B:

* clause values are the per-rank evaluations of the paper's clause
  expressions; ``sender`` = the rank that sends *to me*, ``receiver`` =
  the rank I send to; ranks are world ranks;
* on entry a ``comm_p2p`` posts its non-blocking communication (sends
  if ``sendwhen``, receives if ``receivewhen``); the body then executes
  *overlapped* with the transfers;
* inside a ``comm_parameters`` region, synchronization of adjacent
  instances with independent buffers is consolidated into one backend
  sync placed per ``place_sync``; an instance whose buffers overlap
  pending communication forces the pending sync first;
* a standalone ``comm_p2p`` synchronizes at its own exit.
"""

from __future__ import annotations

from typing import Any

from repro.core import buffers as bufmod
from repro.core.clauses import ClauseSet, SyncPlacement
from repro.core.lower.base import get_backend
from repro.core.region import PendingComm, RegionState
from repro.errors import ClauseError, DirectiveError
from repro.sim.process import Env


class CommParameters:
    """An active ``comm_parameters`` region on one rank."""

    def __init__(self, env: Env, **clauses: Any):
        self.env = env
        self.clauses = ClauseSet.build(directive="parameters", **clauses)
        self.pending = PendingComm()
        self._state: RegionState | None = None
        #: comm_p2p executions inside this region entry, checked against
        #: max_comm_iter (which sizes the generated sync bookkeeping).
        self.instance_count = 0

    def note_instance(self) -> None:
        """Count one comm_p2p execution against max_comm_iter."""
        self.instance_count += 1
        if self.clauses.has("max_comm_iter") \
                and self.instance_count > self.clauses.max_comm_iter:
            raise ClauseError(
                f"comm_p2p executed {self.instance_count} times in a "
                f"region declaring max_comm_iter"
                f"({self.clauses.max_comm_iter}); the generated "
                "synchronization bookkeeping would overflow "
                "(Section III-B)")

    @property
    def place_sync(self) -> SyncPlacement:
        """The region's sync placement (defaulted)."""
        return (self.clauses.place_sync if self.clauses.has("place_sync")
                else SyncPlacement.END_PARAM_REGION)

    def __enter__(self) -> "CommParameters":
        self._state = RegionState.of(self.env)
        self._state.on_region_enter(self.env, self.place_sync)
        self._state.stack.append(self)
        self.env.trace("dir.region_enter",
                       place_sync=self.place_sync.value)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        state = self._state
        assert state is not None
        if state.stack and state.stack[-1] is self:
            state.stack.pop()
        else:  # pragma: no cover - misuse guard
            raise DirectiveError(
                "comm_parameters regions must be exited in LIFO order")
        if exc_type is not None:
            # Do not synchronize on the error path; drop the pending
            # handles so the error propagates undisturbed.
            return
        state.on_region_exit(self.env, self.pending, self.place_sync)
        self.env.trace("dir.region_exit")


class CommP2P:
    """One ``comm_p2p`` directive instance on one rank."""

    def __init__(self, env: Env, **clauses: Any):
        self.env = env
        self.own_clauses = ClauseSet.build(directive="p2p", **clauses)
        self.region: CommParameters | None = None
        self._standalone_pending: PendingComm | None = None

    # -- resolution ---------------------------------------------------------

    def _resolve(self) -> ClauseSet:
        state = RegionState.of(self.env)
        self.region = state.stack[-1] if state.stack else None
        if self.region is not None:
            merged = self.region.clauses.merged_into(self.own_clauses)
        else:
            merged = self.own_clauses
        merged.require_p2p_complete()
        return merged

    # -- protocol -----------------------------------------------------------

    def __enter__(self) -> "CommP2P":
        env = self.env
        merged = self._resolve()

        sends_here = merged.effective_sendwhen
        recvs_here = merged.effective_receivewhen
        sbufs = bufmod.as_buffer_list(merged.sbuf, "sbuf")
        rbufs = bufmod.as_buffer_list(merged.rbuf, "rbuf")
        target = merged.effective_target
        bufmod.check_target_buffers(target, sbufs, rbufs)
        count = bufmod.infer_count(merged, sbufs, rbufs)
        bufmod.check_count_fits(count, sbufs, rbufs)

        backend = get_backend(env, target)
        if self.region is not None:
            self.region.note_instance()
        pending = (self.region.pending if self.region is not None
                   else PendingComm())
        if self.region is None:
            self._standalone_pending = pending

        # Adjacent-directive independence (Section III-A): an instance
        # whose buffers overlap pending communication cannot share its
        # consolidated sync — the pending communication completes first.
        # Only the buffers of roles this rank actually plays are live
        # here: a pure sender's rbuf (or vice versa) is untouched by
        # its communication.
        local_arrays = []
        if sends_here:
            local_arrays.extend(bufmod.array_of(b) for b in sbufs)
        if recvs_here:
            local_arrays.extend(bufmod.array_of(b) for b in rbufs)
        # All unsynchronized communication on this rank is pending, not
        # just the innermost region's: carried sync from earlier
        # regions (place_sync deferral) and enclosing regions of a
        # nested chain hold live handles too. The downgrade CI020
        # promises must flush every aliasing set, or the deferred
        # delivery races with this directive's transfer.
        state = RegionState.of(env)
        if state.carried.overlaps(local_arrays):
            env.trace("dir.dependent_flush")
            state.flush_carry(env)
        for enclosing in state.stack:
            if (enclosing.pending is not pending
                    and enclosing.pending.overlaps(local_arrays)):
                env.trace("dir.dependent_flush")
                enclosing.pending.sync(env)
        if pending.overlaps(local_arrays):
            env.trace("dir.dependent_flush")
            pending.sync(env)

        profile = env.engine.profile
        post_t0 = env.now
        my_sends = []
        my_recvs = []
        # Receives are declared before sends so self-transfers and
        # one-sided exposure always find the destination ready.
        if recvs_here:
            if not merged.has("sender"):  # pragma: no cover - required
                raise ClauseError("receivewhen without sender")
            src = self._check_rank(merged.sender, "sender")
            for rb in rbufs:
                my_recvs.append(backend.post_recv(src, rb, count))
        if sends_here:
            dst = self._check_rank(merged.receiver, "receiver")
            for sb, rb in zip(sbufs, rbufs):
                my_sends.append(backend.post_send(dst, sb, rb, count))

        pending.sends.extend(my_sends)
        pending.recvs.extend(my_recvs)
        pending.buffers.extend(local_arrays)
        if profile is not None and (my_sends or my_recvs):
            label = profile.current_label(env.rank)
            profile.add(
                env.rank, "post", post_t0, env.now, target=target.value,
                count=count, sends=len(my_sends), recvs=len(my_recvs),
                bytes=sum(h.nbytes for h in (*my_sends, *my_recvs)),
                **({} if label is None else {"label": label}))
            pending.note_window(env)
        env.trace("dir.p2p", target=target.value, count=count,
                  sends=len(my_sends), recvs=len(my_recvs))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        if self._standalone_pending is not None:
            # Standalone instance: synchronize at its own exit.
            self._standalone_pending.sync(self.env)

    def _check_rank(self, value: Any, clause: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ClauseError(
                f"{clause} must evaluate to a process id, got {value!r}")
        if not 0 <= value < self.env.size:
            raise ClauseError(
                f"{clause} evaluates to rank {value}, outside the "
                f"0..{self.env.size - 1} world")
        return value


def comm_parameters(env: Env, **clauses: Any) -> CommParameters:
    """Open a ``comm_parameters`` region (use as a context manager)."""
    return CommParameters(env, **clauses)


def comm_p2p(env: Env, **clauses: Any) -> CommP2P:
    """One point-to-point directive instance (use as a context manager).

    The body of the ``with`` block is the computation that may overlap
    the communication at run time (Section III-A).
    """
    return CommP2P(env, **clauses)


def comm_flush(env: Env) -> None:
    """Force any carried synchronization (deferred by
    ``BEGIN_NEXT_PARAM_REGION`` / ``END_ADJ_PARAM_REGIONS``) to execute
    now. Needed when a deferral chain reaches the end of the program."""
    RegionState.of(env).flush_carry(env)
