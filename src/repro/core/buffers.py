"""Runtime buffer handling for the directives.

The ``sbuf``/``rbuf`` clauses accept "a list of buffers ... pointers or
arrays of primitive or composite type" (Section III-B). At runtime a
buffer is a ``numpy`` array (a structured dtype is a composite type) or,
for the SHMEM target, a :class:`repro.shmem.SymArray`. This module
normalizes clause values to buffer lists, infers the message size when
``count`` is omitted, and enforces the paper's allocation rule for
SHMEM ("the buffers ... must also be symmetric data objects").
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.clauses import ClauseSet, Target
from repro.errors import ClauseError, SymmetryError
from repro.shmem.symheap import SymArray


def as_buffer_list(value: Any, clause: str) -> list:
    """Normalize a clause value to a non-empty list of buffers."""
    if isinstance(value, (np.ndarray, SymArray)):
        items = [value]
    elif isinstance(value, (list, tuple)):
        items = list(value)
    else:
        raise ClauseError(
            f"{clause} must be a buffer or a list of buffers; "
            f"got {type(value).__name__}")
    if not items:
        raise ClauseError(f"{clause} must list at least one buffer")
    for b in items:
        if not isinstance(b, (np.ndarray, SymArray)):
            raise ClauseError(
                f"{clause} entries must be numpy arrays (or symmetric "
                f"arrays for the SHMEM target); got {type(b).__name__}")
    return items


def array_of(buf: np.ndarray | SymArray) -> np.ndarray:
    """The local ndarray behind a buffer handle."""
    return buf.data if isinstance(buf, SymArray) else buf


def element_size(buf: np.ndarray | SymArray) -> int:
    """Element storage size (bytes) of a buffer."""
    return array_of(buf).dtype.itemsize


def length_of(buf: np.ndarray | SymArray) -> int:
    """Element count of a buffer."""
    return array_of(buf).size


def infer_count(clauses: ClauseSet, sbufs: list, rbufs: list) -> int:
    """The directive's per-buffer element count.

    If ``count`` is present, use it. Otherwise at least one buffer must
    be an array (size > 1 or explicitly shaped); the inferred size is
    the *smallest* array length among all listed buffers
    (Section III-B: "If more than one of the buffers is an array, the
    message size will be the size of the smallest array").
    """
    if clauses.has("count"):
        return clauses.count
    lengths = [length_of(b) for b in sbufs + rbufs]
    arrays = [n for n in lengths if n >= 1]
    if not arrays:
        raise ClauseError(
            "count was omitted but no buffer in sbuf/rbuf is an array; "
            "provide count explicitly")
    return min(arrays)


def check_target_buffers(target: Target, sbufs: list, rbufs: list) -> None:
    """Enforce per-target allocation requirements on buffer lists."""
    if target is Target.SHMEM:
        bad = [i for i, b in enumerate(rbufs) if not isinstance(b, SymArray)]
        if bad:
            raise SymmetryError(
                "TARGET_COMM_SHMEM requires every rbuf entry to be a "
                f"symmetric data object (shmem.malloc); entries {bad} "
                "are plain arrays (Section III-B)")
    if len(sbufs) != len(rbufs):
        raise ClauseError(
            f"sbuf and rbuf must list the same number of buffers "
            f"(payloads pair up positionally); got {len(sbufs)} vs "
            f"{len(rbufs)}")
    for i, (s, r) in enumerate(zip(sbufs, rbufs)):
        if element_size(s) != element_size(r):
            raise ClauseError(
                f"buffer pair {i}: element sizes differ "
                f"({element_size(s)} vs {element_size(r)} bytes); "
                "the generated transfer would reinterpret elements")


def check_count_fits(count: int, sbufs: list, rbufs: list) -> None:
    """A transfer of ``count`` elements must fit every buffer it touches."""
    for name, bufs in (("sbuf", sbufs), ("rbuf", rbufs)):
        for i, b in enumerate(bufs):
            if count > length_of(b):
                raise ClauseError(
                    f"count {count} exceeds {name}[{i}] "
                    f"({length_of(b)} elements)")
