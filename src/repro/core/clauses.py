"""The ten directive clauses and their validation rules.

Section III-B of the paper defines ten clauses. Four are required —
``sender``, ``receiver``, ``sbuf``, ``rbuf``; six are optional —
``sendwhen``, ``receivewhen``, ``target``, ``count``, ``place_sync``,
``max_comm_iter`` — and the last two may only be used with
``comm_parameters``. The validation rules implemented here are the
paper's:

* ``sendwhen`` and ``receivewhen`` must both be present or both absent;
* ``place_sync``/``max_comm_iter`` are rejected on ``comm_p2p``;
* ``target`` accepts the three ``TARGET_COMM_*`` keywords, defaulting
  to two-sided non-blocking MPI;
* ``count`` may be omitted only when at least one listed buffer is an
  array — the inferred message size is the *smallest* array length;
* a ``comm_parameters`` region's clauses apply to every ``comm_p2p``
  inside it, with instance clauses overriding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import ClauseError


class Target(enum.Enum):
    """Keywords accepted by the ``target`` clause."""

    MPI_1SIDE = "TARGET_COMM_MPI_1SIDE"
    MPI_2SIDE = "TARGET_COMM_MPI_2SIDE"
    SHMEM = "TARGET_COMM_SHMEM"

    @classmethod
    def parse(cls, value: "Target | str") -> "Target":
        """Accept the enum member or its keyword spelling."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ClauseError(
                f"target clause accepts "
                f"{[t.value for t in cls]}; got {value!r}") from None


#: The default translation when no ``target`` clause is present
#: (Section III-B: "the default library calls that are generated are
#: MPI non-blocking send and receive").
DEFAULT_TARGET = Target.MPI_2SIDE


class SyncPlacement(enum.Enum):
    """Keywords accepted by the ``place_sync`` clause."""

    END_PARAM_REGION = "END_PARAM_REGION"
    BEGIN_NEXT_PARAM_REGION = "BEGIN_NEXT_PARAM_REGION"
    END_ADJ_PARAM_REGIONS = "END_ADJ_PARAM_REGIONS"

    @classmethod
    def parse(cls, value: "SyncPlacement | str") -> "SyncPlacement":
        """Accept the enum member or its keyword spelling."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ClauseError(
                f"place_sync clause accepts "
                f"{[p.value for p in cls]}; got {value!r}") from None


#: Sentinel distinguishing "clause absent" from explicit ``None``.
_ABSENT = object()

#: Clause names legal only on ``comm_parameters``.
PARAMETERS_ONLY = ("place_sync", "max_comm_iter")

#: The four required clauses of a fully resolved ``comm_p2p`` instance.
REQUIRED = ("sender", "receiver", "sbuf", "rbuf")


@dataclass(frozen=True)
class ClauseSet:
    """One directive's clauses (values already evaluated on this rank).

    In the paper the clause arguments are C expressions evaluated per
    process (``sender(rank-1)``); in the runtime DSL the caller passes
    the evaluated values. ``sbuf``/``rbuf`` are buffer *lists* (a single
    buffer may be passed bare). ``sender``/``receiver`` are world ranks.
    """

    sender: Any = _ABSENT
    receiver: Any = _ABSENT
    sbuf: Any = _ABSENT
    rbuf: Any = _ABSENT
    sendwhen: Any = _ABSENT
    receivewhen: Any = _ABSENT
    target: Any = _ABSENT
    count: Any = _ABSENT
    place_sync: Any = _ABSENT
    max_comm_iter: Any = _ABSENT

    # -- presence ---------------------------------------------------------

    def has(self, name: str) -> bool:
        """True when the clause was given (explicit None counts)."""
        return getattr(self, name) is not _ABSENT

    def present(self) -> dict[str, Any]:
        """Clauses that were given, as a dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if getattr(self, f.name) is not _ABSENT}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, *, directive: str, **kwargs: Any) -> "ClauseSet":
        """Validate keyword clauses for a ``comm_parameters`` (``directive
        = "parameters"``) or ``comm_p2p`` (``"p2p"``) directive."""
        legal = {f.name for f in fields(cls)}
        unknown = set(kwargs) - legal
        if unknown:
            raise ClauseError(
                f"unknown clause(s) {sorted(unknown)}; the directives "
                f"accept {sorted(legal)}")
        if directive == "p2p":
            illegal = [n for n in PARAMETERS_ONLY if n in kwargs]
            if illegal:
                raise ClauseError(
                    f"clause(s) {illegal} may only be used with "
                    "comm_parameters (Section III-B)")
        elif directive != "parameters":
            raise ClauseError(f"unknown directive kind {directive!r}")
        cs = cls(**kwargs)
        cs._check_pairing()
        cs._normalize_keywords()
        return cs

    def _check_pairing(self) -> None:
        if self.has("sendwhen") != self.has("receivewhen"):
            raise ClauseError(
                "sendwhen and receivewhen must both be present or both "
                "be omitted (Section III-B)")

    def _normalize_keywords(self) -> None:
        # frozen dataclass: use object.__setattr__ for normalization.
        if self.has("target"):
            object.__setattr__(self, "target", Target.parse(self.target))
        if self.has("place_sync"):
            object.__setattr__(self, "place_sync",
                               SyncPlacement.parse(self.place_sync))
        if self.has("count"):
            count = self.count
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                raise ClauseError(
                    f"count must evaluate to a non-negative integer, "
                    f"got {count!r}")
        if self.has("max_comm_iter"):
            m = self.max_comm_iter
            if not isinstance(m, int) or isinstance(m, bool) or m < 1:
                raise ClauseError(
                    f"max_comm_iter must evaluate to a positive integer, "
                    f"got {m!r}")

    # -- region/instance merging ------------------------------------------

    def merged_into(self, instance: "ClauseSet") -> "ClauseSet":
        """Apply this region's clauses to a ``comm_p2p`` instance.

        Region assertions apply to all instances in scope; the instance
        "may provide additional assertions" which override
        (Section III-A).
        """
        updates = {}
        for f in fields(self):
            if f.name in PARAMETERS_ONLY:
                continue  # region-level only; never merged down
            if instance.has(f.name):
                updates[f.name] = getattr(instance, f.name)
            elif self.has(f.name):
                updates[f.name] = getattr(self, f.name)
        merged = ClauseSet(**updates)
        merged._check_pairing()
        return merged

    # -- final validation of a resolvable p2p instance --------------------

    def require_p2p_complete(self) -> None:
        """Check the four required clauses of a resolved instance."""
        missing = [n for n in REQUIRED if not self.has(n)]
        if missing:
            raise ClauseError(
                f"comm_p2p is missing required clause(s) {missing} "
                "(not provided by the directive or its enclosing "
                "comm_parameters region)")

    # -- convenience accessors with defaults -------------------------------

    @property
    def effective_target(self) -> Target:
        """The target clause, defaulted per Section III-B."""
        return self.target if self.has("target") else DEFAULT_TARGET

    @property
    def effective_sendwhen(self) -> bool:
        """Absent sendwhen: all processes reaching the directive send."""
        return bool(self.sendwhen) if self.has("sendwhen") else True

    @property
    def effective_receivewhen(self) -> bool:
        """Absent receivewhen: all processes reaching it receive."""
        return bool(self.receivewhen) if self.has("receivewhen") else True

    def with_clauses(self, **kwargs: Any) -> "ClauseSet":
        """A copy with additional/overridden clauses (for tooling)."""
        return replace(self, **kwargs)
