"""Future-work extension: collective communication intent.

Section V: "we are working to extend the directives to express groups
of processes, and their collective communication/synchronization in a
variety of many-to-one, one-to-many and all-to-all patterns". This
module implements that extension over the same clause machinery:

``comm_collective(env, pattern=..., root=..., buf=..., ...)`` expresses
the *intent* (which pattern, whose data) and is lowered per target:

* MPI two-sided: the library's tree collectives (``Bcast``/``Gather``/
  ``Alltoall``);
* SHMEM: the root puts to every member + barrier (one-to-many), or
  members put to root slots + notify (many-to-one).

``group`` selects a subset of world ranks (default: all); every member
must reach the directive, as with MPI collectives.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro import mpi, shmem
from repro.core.buffers import array_of
from repro.core.clauses import Target
from repro.errors import ClauseError, LoweringError
from repro.shmem.symheap import SymArray
from repro.sim.process import Env


class CollectivePattern(enum.Enum):
    """The three pattern keywords of the paper's future-work section."""

    ONE_TO_MANY = "PATTERN_ONE_TO_MANY"
    MANY_TO_ONE = "PATTERN_MANY_TO_ONE"
    ALL_TO_ALL = "PATTERN_ALL_TO_ALL"

    @classmethod
    def parse(cls, value: "CollectivePattern | str") -> "CollectivePattern":
        """Accept the enum member or its keyword spelling."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ClauseError(
                f"pattern accepts {[p.value for p in cls]}; "
                f"got {value!r}") from None


def comm_collective(env: Env, *, pattern: "CollectivePattern | str",
                    buf: Any, root: int = 0,
                    group: list[int] | None = None,
                    target: "Target | str | None" = None) -> None:
    """Execute one collective-intent directive (blocking).

    ``buf`` semantics per pattern (mirroring the MPI collectives):

    * ``ONE_TO_MANY``: in place everywhere; root's content wins.
    * ``MANY_TO_ONE``: each member contributes ``buf``; the root's
      ``buf`` must have a leading axis of the group size and receives
      member ``i``'s contribution in slot ``i``.
    * ``ALL_TO_ALL``: leading axis of group size on every member;
      slot ``j`` goes to member ``j``'s slot ``i``.
    """
    pattern = CollectivePattern.parse(pattern)
    tgt = Target.parse(target) if target is not None else Target.MPI_2SIDE
    members = list(range(env.size)) if group is None else list(group)
    if env.rank not in members:
        raise ClauseError(
            f"rank {env.rank} reached a comm_collective whose group "
            f"{members} does not contain it")
    if root not in members:
        raise ClauseError(f"root {root} is not in the group {members}")

    if tgt is Target.SHMEM:
        _lower_shmem(env, pattern, buf, root, members)
    elif tgt is Target.MPI_2SIDE:
        _lower_mpi(env, pattern, buf, root, members)
    else:
        raise LoweringError(
            f"comm_collective supports TARGET_COMM_MPI_2SIDE and "
            f"TARGET_COMM_SHMEM; got {tgt.value}")


def _subcomm(env: Env, members: list[int]) -> "mpi.Comm":
    # Deterministic, non-collective group resolution: only the group's
    # members reach the directive, so a world-collective Split would
    # deadlock against non-members.
    world = mpi.init(env)
    group = world.world.group_for(tuple(members))
    return mpi.Comm(world.world, group, env)


def _lower_mpi(env: Env, pattern: CollectivePattern, buf: Any,
               root: int, members: list[int]) -> None:
    comm = _subcomm(env, members)
    arr = array_of(buf) if isinstance(buf, SymArray) else buf
    local_root = members.index(root)
    if pattern is CollectivePattern.ONE_TO_MANY:
        comm.Bcast(arr, root=local_root)
    elif pattern is CollectivePattern.MANY_TO_ONE:
        # Each member contributes its own slot buf[i]; they assemble in
        # the root's buf.
        idx = members.index(env.rank)
        contribution = np.ascontiguousarray(arr[idx])
        comm.Gather(contribution,
                    arr if comm.rank == local_root else None,
                    root=local_root)
    else:  # ALL_TO_ALL
        out = np.empty_like(arr)
        comm.Alltoall(np.ascontiguousarray(arr), out)
        arr[...] = out


def _lower_shmem(env: Env, pattern: CollectivePattern, buf: Any,
                 root: int, members: list[int]) -> None:
    if not isinstance(buf, SymArray):
        raise ClauseError(
            "TARGET_COMM_SHMEM collectives require a symmetric buffer")
    sh = shmem.init(env)
    if pattern is CollectivePattern.ONE_TO_MANY:
        if env.rank == root:
            for pe in members:
                if pe != root:
                    sh.put(buf, buf.data, pe)
            sh.quiet()
        sh.barrier(members)
    elif pattern is CollectivePattern.MANY_TO_ONE:
        # Member i's slot-i block lands in the root's slot i.
        idx = members.index(env.rank)
        block = buf.data[idx]
        if env.rank != root:
            sh.put(buf, np.asarray(block).reshape(-1), root,
                   offset=idx * np.asarray(block).size)
            sh.quiet()
        sh.barrier(members)
    else:  # ALL_TO_ALL
        idx = members.index(env.rank)
        flat = buf.data.reshape(len(members), -1)
        # Snapshot the outgoing blocks and synchronize BEFORE anyone
        # puts: an in-place exchange races incoming puts against the
        # snapshot otherwise (true on real SHMEM hardware as well).
        outgoing = flat.copy()
        sh.barrier(members)
        for j, pe in enumerate(members):
            if pe == env.rank:
                flat[idx] = outgoing[idx]
            else:
                sh.put(buf, outgoing[j], pe,
                       offset=idx * outgoing.shape[1])
        sh.quiet()
        sh.barrier(members)
