"""CLI: translate pragma-annotated source (the compiler as a tool).

Usage::

    python -m repro.core.pragma INPUT.c [--target mpi2s|mpi1s|shmem]
                                        [--fortran] [--analyze]

Reads C-like source containing ``#pragma comm_parameters`` /
``#pragma comm_p2p`` directives and prints the translated source.
``--analyze`` prints the analyses instead (sync plan, per-directive
pattern classification and matching validation for an 8-rank world,
overlap legality).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.analysis import (
    classify_pattern,
    comm_graph,
    overlap_legal,
    plan_synchronization,
    validate_matching,
)
from repro.core.clauses import Target
from repro.core.codegen import generate_c, generate_fortran
from repro.core.pragma import parse_program
from repro.errors import ReproError

_TARGETS = {
    "mpi2s": Target.MPI_2SIDE,
    "mpi1s": Target.MPI_1SIDE,
    "shmem": Target.SHMEM,
}


def _analyze(program, nprocs: int) -> str:
    lines = []
    plan = plan_synchronization(program)
    lines.append(f"directives: {len(program.all_p2p())} comm_p2p in "
                 f"{len(program.regions())} region(s)")
    lines.append(f"sync plan: {plan.total_sync_calls} call(s), "
                 f"{plan.reduction_factor(program):.1f}x fewer than "
                 "per-instance synchronization")
    for i, node in enumerate(program.all_p2p()):
        lines.append(f"-- comm_p2p #{i} (line {node.line})")
        try:
            graph = comm_graph(node.clauses, nprocs)
            lines.append(f"   pattern ({nprocs} ranks): "
                         f"{classify_pattern(graph)}; "
                         f"{len(graph.edges)} edge(s)")
            issues = validate_matching(graph)
            if issues:
                for issue in issues:
                    lines.append(f"   MATCHING ISSUE: {issue}")
            else:
                lines.append("   matching: consistent")
        except ReproError as exc:
            lines.append(f"   pattern: not statically evaluable ({exc})")
        verdict = overlap_legal(node)
        lines.append(f"   overlap legal: {verdict.legal} "
                     f"({verdict.reason})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.pragma",
        description="Translate comm-directive pragmas to library calls.")
    parser.add_argument("input", help="annotated C-like source file")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default="mpi2s",
                        help="default translation target (a directive's "
                             "own target clause still wins)")
    parser.add_argument("--fortran", action="store_true",
                        help="emit the Fortran skeleton instead of C")
    parser.add_argument("--analyze", action="store_true",
                        help="print analyses instead of translated code")
    parser.add_argument("--nprocs", type=int, default=8,
                        help="world size for --analyze pattern "
                             "evaluation (default 8)")
    args = parser.parse_args(argv)

    try:
        with open(args.input, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source)
        if args.analyze:
            print(_analyze(program, args.nprocs))
        elif args.fortran:
            print(generate_fortran(program, _TARGETS[args.target]))
        else:
            print(generate_c(program, _TARGETS[args.target]))
    except ReproError as exc:
        print(f"translation error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
