"""CLI: translate pragma-annotated source (the compiler as a tool).

Usage::

    python -m repro.core.pragma INPUT.c [--target mpi2s|mpi1s|shmem]
                                        [--fortran] [--analyze]

Reads C-like source containing ``#pragma comm_parameters`` /
``#pragma comm_p2p`` directives and prints the translated source.
``--analyze`` prints the analyses instead (sync plan, per-directive
pattern classification and matching validation for an 8-rank world,
overlap legality).

A second console entry point, ``repro-lint`` (:func:`main_lint`), runs
the full static verification pass (deadlock, stale-read and
consolidation proofs — see ``docs/LINT.md``) over one or more files
and renders text, JSON or SARIF 2.1.0; it exits 1 when any
error-severity diagnostic is produced (``--fail-on warning`` widens
the gate to warnings). ``--advise`` additionally runs
the CI1xx performance advisor, and ``--fix`` / ``--fix-dry-run`` run
the proof-carrying auto-fix engine (every rewrite must re-verify
CI0xx-clean on all lowering targets and must not regress the modeled
time before it is accepted).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.analysis import (
    FixResult,
    classify_pattern,
    comm_graph,
    fix_source,
    lint_program,
    overlap_legal,
    plan_synchronization,
    render_json,
    render_sarif,
    validate_matching,
)
from repro.core.analysis.codes import make
from repro.core.analysis.independence import base_identifier
from repro.core.analysis.lint import LintReport
from repro.core.clauses import Target
from repro.core.codegen import generate_c, generate_fortran
from repro.core.ir import BufferDecl, P2PNode, Program
from repro.core.pragma import parse_program
from repro.dtypes.primitives import DOUBLE
from repro.errors import ReproError

_TARGETS = {
    "mpi2s": Target.MPI_2SIDE,
    "mpi1s": Target.MPI_1SIDE,
    "shmem": Target.SHMEM,
}


def _analyze(program, nprocs: int) -> str:
    lines = []
    plan = plan_synchronization(program)
    lines.append(f"directives: {len(program.all_p2p())} comm_p2p in "
                 f"{len(program.regions())} region(s)")
    lines.append(f"sync plan: {plan.total_sync_calls} call(s), "
                 f"{plan.reduction_factor(program):.1f}x fewer than "
                 "per-instance synchronization")
    for i, node in enumerate(program.all_p2p()):
        lines.append(f"-- comm_p2p #{i} (line {node.line})")
        try:
            graph = comm_graph(node.clauses, nprocs)
            lines.append(f"   pattern ({nprocs} ranks): "
                         f"{classify_pattern(graph)}; "
                         f"{len(graph.edges)} edge(s)")
            issues = validate_matching(graph)
            if issues:
                for issue in issues:
                    lines.append(f"   MATCHING ISSUE: {issue}")
            else:
                lines.append("   matching: consistent")
        except ReproError as exc:
            lines.append(f"   pattern: not statically evaluable ({exc})")
        verdict = overlap_legal(node)
        lines.append(f"   overlap legal: {verdict.legal} "
                     f"({verdict.reason})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.pragma",
        description="Translate comm-directive pragmas to library calls.")
    parser.add_argument("input", help="annotated C-like source file")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default="mpi2s",
                        help="default translation target (a directive's "
                             "own target clause still wins)")
    parser.add_argument("--fortran", action="store_true",
                        help="emit the Fortran skeleton instead of C")
    parser.add_argument("--analyze", action="store_true",
                        help="print analyses instead of translated code")
    parser.add_argument("--nprocs", type=int, default=8,
                        help="world size for --analyze pattern "
                             "evaluation (default 8)")
    args = parser.parse_args(argv)

    try:
        with open(args.input, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source)
        if args.analyze:
            print(_analyze(program, args.nprocs))
        elif args.fortran:
            print(generate_fortran(program, _TARGETS[args.target]))
        else:
            print(generate_c(program, _TARGETS[args.target]))
    except ReproError as exc:
        print(f"translation error: {exc}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# repro-lint


#: Default bindings for free names used by the pattern catalog's clause
#: sets (``--catalog``); ``--var`` overrides.
_CATALOG_VARS = {"root": 0, "peer": 1, "n": 4, "p": 0}


def _parse_vars(pairs: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(
                f"--var expects name=value, got {pair!r}")
        out[name] = int(value)
    return out


def _catalog_reports(nprocs: int, extra_vars: dict[str, int],
                     targets: list[Target] | None = None,
                     advise: bool = False,
                     fixes: dict[str, FixResult] | None = None
                     ) -> list[LintReport]:
    """Lint every pattern catalog entry that carries static clauses.

    When ``fixes`` is given, each entry is also run through the
    proof-carrying fix engine (dry-run: catalog programs have no file
    to write back to) and the resulting ledger is stored under the
    entry's ``catalog:<name>`` path.
    """
    from repro.patterns.catalog import PATTERNS

    reports: list[LintReport] = []
    variables = dict(_CATALOG_VARS)
    variables.update(extra_vars)
    for name, spec in sorted(PATTERNS.items()):
        clauses = spec.clauses()
        if clauses is None:
            continue  # runtime-only pattern (e.g. butterfly)
        program = Program(nodes=[P2PNode(clauses=clauses, line=1)])
        for expr in (*clauses.sbuf, *clauses.rbuf):
            base = base_identifier(expr)
            program.decls.setdefault(
                base, BufferDecl(base, DOUBLE, length=1024))
        report = lint_program(program, nprocs=nprocs,
                              extra_vars=variables,
                              path=f"catalog:{name}",
                              targets=targets, advise=advise)
        reports.append(report)
        if fixes is not None:
            decls = "\n".join(f"double {base}[1024];"
                              for base in sorted(program.decls))
            source = f"{decls}\n\n{program.to_source()}"
            try:
                # Some catalog clause sets use parameters-only clauses
                # on a bare directive and have no pragma source form;
                # the fix engine only works on printable programs.
                parse_program(source)
            except ReproError:
                continue
            fixes[f"catalog:{name}"] = fix_source(
                source, nprocs=nprocs, extra_vars=variables)
    return reports


def render_reports(reports: list[LintReport], fmt: str,
                   fixes: dict[str, FixResult] | None = None) -> str:
    """Render lint reports exactly as the CLI prints them.

    The single formatting authority for the sequential path, the
    sharded ``--jobs`` path and the daemon: all three emit this
    string (trailing newline included), which is what "byte-identical
    output" means mechanically.
    """
    if fmt == "json":
        return render_json(reports, fixes=fixes or None) + "\n"
    if fmt == "sarif":
        return render_sarif(reports) + "\n"
    chunks = []
    for report in reports:
        header = f"== {report.path}" if report.path else "== <input>"
        body = report.render()
        if fixes and report.path in fixes:
            body = f"{body}\n{_render_fix(fixes[report.path])}"
        chunks.append(f"{header}\n{body}")
    return "\n\n".join(chunks) + "\n"


def main_lint(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically verify comm-directive pragma sources: "
                    "deadlock freedom, stale-read freedom, and "
                    "consolidation safety across all lowering targets.")
    parser.add_argument("inputs", nargs="*",
                        help="annotated C-like source files")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--nprocs", type=int, default=8,
                        help="world size the programs are unrolled for "
                             "(default 8)")
    parser.add_argument("--var", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="bind a free clause-expression name "
                             "(repeatable)")
    parser.add_argument("--catalog", action="store_true",
                        help="also lint the built-in pattern catalog's "
                             "static clause sets")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default=None,
                        help="restrict the verifier sweep to one "
                             "lowering target (default: all three)")
    parser.add_argument("--advise", action="store_true",
                        help="also run the CI1xx performance advisor "
                             "(net-model estimated savings)")
    parser.add_argument("--fix", action="store_true",
                        help="apply advisor rewrites that pass both "
                             "proof gates, writing files in place "
                             "(implies --advise)")
    parser.add_argument("--fix-dry-run", action="store_true",
                        help="run the proof-carrying fix engine but "
                             "only report the ledger (implies --advise)")
    parser.add_argument("--fail-on", choices=("error", "warning"),
                        default="error",
                        help="severity threshold for a non-zero exit: "
                             "'error' (default) exits 1 on errors "
                             "only; 'warning' also fails "
                             "warning-severity findings (CI gating)")
    service = parser.add_argument_group(
        "sharded lint service (repro.lintserve; docs/LINTSERVE.md)")
    service.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="fan (file x target) analysis units over "
                              "N worker processes; output stays "
                              "byte-identical to the sequential path")
    service.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="memoize unit results on disk (keyed by "
                              "content hash + analysis-version salt); "
                              "re-lints of unchanged files cost one "
                              "hash lookup")
    service.add_argument("--stats-out", metavar="FILE", default=None,
                         help="write scheduler/cache statistics JSON "
                              "(units, hit rate, wall times)")
    service.add_argument("--serve", action="store_true",
                         help="run as a warm daemon answering lint "
                              "requests over --socket until a "
                              "shutdown request arrives")
    service.add_argument("--socket", metavar="PATH", default=None,
                         help="unix socket path: with --serve, where "
                              "to listen; otherwise, send this "
                              "invocation to the daemon listening "
                              "there instead of linting locally")
    service.add_argument("--shutdown", action="store_true",
                         help="ask the daemon at --socket to exit")
    args = parser.parse_args(argv)
    if args.serve or args.shutdown:
        return _daemon_main(args, parser)
    if args.socket is not None:
        return _client_main(args, parser)
    if not args.inputs and not args.catalog:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no inputs (give files or --catalog)",
              file=sys.stderr)
        return 2
    try:
        extra_vars = _parse_vars(args.var)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    do_fix = args.fix or args.fix_dry_run
    advise = args.advise or do_fix
    targets = [_TARGETS[args.target]] if args.target else None
    if args.jobs is not None or args.cache_dir is not None:
        return _service_main(args, extra_vars, targets, advise, do_fix)

    reports: list[LintReport] = []
    fixes: dict[str, FixResult] = {}
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        try:
            program = parse_program(source)
        except ReproError as exc:
            # The file never reached analysis: report the parse error
            # as a CI000 diagnostic so JSON/SARIF stay well-formed.
            line = getattr(exc, "line", None) or 0
            report = LintReport(path=path)
            report.diagnostics.append(make("CI000", line, str(exc)))
            reports.append(report)
            continue
        reports.append(lint_program(program, nprocs=args.nprocs,
                                    extra_vars=extra_vars or None,
                                    path=path, targets=targets,
                                    advise=advise))
        if do_fix:
            result = fix_source(source, nprocs=args.nprocs,
                                extra_vars=extra_vars or None)
            fixes[path] = result
            if args.fix and result.changed:
                try:
                    with open(path, "w", encoding="utf-8") as fh:
                        fh.write(result.source)
                except OSError as exc:
                    print(f"repro-lint: error: {exc}", file=sys.stderr)
                    return 2
                print(f"repro-lint: fixed {path} "
                      f"({len(result.accepted)} rewrite(s) proven)",
                      file=sys.stderr)
    if args.catalog:
        reports.extend(_catalog_reports(
            args.nprocs, extra_vars, targets=targets, advise=advise,
            fixes=fixes if do_fix else None))

    sys.stdout.write(render_reports(reports, args.format,
                                    fixes=fixes or None))
    return _aggregate_exit(reports, args.fail_on)


def _aggregate_exit(reports: list[LintReport], fail_on: str) -> int:
    """The merged run's exit status under ``--fail-on``.

    One aggregation point for every path — sequential, sharded,
    daemon: a single error-severity finding in *any* report (any
    shard) fails the whole run.
    """
    failing = any(r.errors for r in reports)
    if fail_on == "warning":
        failing = failing or any(r.warnings for r in reports)
    return 1 if failing else 0


def _service_main(args: "argparse.Namespace",
                  extra_vars: dict[str, int],
                  targets: "list[Target] | None",
                  advise: bool, do_fix: bool) -> int:
    """The ``--jobs`` / ``--cache-dir`` path: sharded + memoized lint.

    Semantics match the sequential loop exactly (missing file: exit 2
    before any output; parse error: CI000 report; same render, same
    exit aggregation) — only the execution strategy differs.
    """
    from repro.lintserve import ResultCache, lint_sources

    sources: list[tuple[str, str]] = []
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as fh:
                sources.append((path, fh.read()))
        except OSError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
    cache = (ResultCache(args.cache_dir)
             if args.cache_dir is not None else None)
    jobs = args.jobs if args.jobs is not None else 1
    reports, stats = lint_sources(
        sources, nprocs=args.nprocs, extra_vars=extra_vars or None,
        targets=targets, advise=advise, jobs=jobs, cache=cache)

    fixes: dict[str, FixResult] = {}
    if do_fix:
        for path, source in sources:
            try:
                parse_program(source)
            except ReproError:
                continue  # the report already carries CI000
            result = fix_source(source, nprocs=args.nprocs,
                                extra_vars=extra_vars or None)
            fixes[path] = result
            if args.fix and result.changed:
                try:
                    with open(path, "w", encoding="utf-8") as fh:
                        fh.write(result.source)
                except OSError as exc:
                    print(f"repro-lint: error: {exc}", file=sys.stderr)
                    return 2
                print(f"repro-lint: fixed {path} "
                      f"({len(result.accepted)} rewrite(s) proven)",
                      file=sys.stderr)
    if args.catalog:
        reports.extend(_catalog_reports(
            args.nprocs, extra_vars, targets=targets, advise=advise,
            fixes=fixes if do_fix else None))

    print(f"repro-lint: {stats.units_total} unit(s): "
          f"{stats.units_from_cache} cached, "
          f"{stats.units_executed} executed with --jobs {jobs} "
          f"in {stats.wall_s:.2f}s "
          f"(hit rate {stats.hit_rate:.0%})", file=sys.stderr)
    if args.stats_out is not None:
        import json as _json
        payload = stats.as_dict()
        if cache is not None:
            payload["salt"] = cache.salt
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
    sys.stdout.write(render_reports(reports, args.format,
                                    fixes=fixes or None))
    return _aggregate_exit(reports, args.fail_on)


def _daemon_main(args: "argparse.Namespace",
                 parser: argparse.ArgumentParser) -> int:
    """``--serve`` / ``--shutdown``: run or stop the lint daemon."""
    from repro.lintserve import LintDaemon, request_over_socket

    if args.socket is None:
        parser.error("--serve/--shutdown require --socket PATH")
    if args.shutdown:
        try:
            response = request_over_socket(args.socket,
                                           {"op": "shutdown"})
        except OSError as exc:
            print(f"repro-lint: error: cannot reach daemon at "
                  f"{args.socket}: {exc}", file=sys.stderr)
            return 2
        return 0 if response.get("ok") else 2
    daemon = LintDaemon(args.socket,
                        jobs=args.jobs if args.jobs else 1,
                        cache_dir=args.cache_dir)
    print(f"repro-lint: serving on {args.socket} "
          f"(jobs={daemon.jobs}, cache={daemon.cache.root})",
          file=sys.stderr)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def _client_main(args: "argparse.Namespace",
                 parser: argparse.ArgumentParser) -> int:
    """``--socket`` without ``--serve``: lint via the warm daemon."""
    import os

    from repro.lintserve import LintRequest, request_over_socket

    if args.fix or args.fix_dry_run:
        print("repro-lint: error: --fix/--fix-dry-run are not "
              "supported over the daemon (run them locally)",
              file=sys.stderr)
        return 2
    if not args.inputs and not args.catalog:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no inputs (give files or --catalog)",
              file=sys.stderr)
        return 2
    try:
        extra_vars = _parse_vars(args.var)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    request = LintRequest(
        inputs=list(args.inputs), cwd=os.getcwd(),
        nprocs=args.nprocs, vars=extra_vars,
        target=(_TARGETS[args.target].value
                if args.target else None),
        advise=args.advise, catalog=args.catalog, format=args.format,
        fail_on=args.fail_on)
    try:
        response = request_over_socket(args.socket, request.as_dict())
    except OSError as exc:
        print(f"repro-lint: error: cannot reach daemon at "
              f"{args.socket}: {exc}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(f"repro-lint: daemon error: {response.get('error')}",
              file=sys.stderr)
        return 2
    if response.get("error"):
        print(response["error"], file=sys.stderr)
    sys.stdout.write(response.get("output", ""))
    return int(response.get("exit_code", 2))


def _render_fix(result: FixResult) -> str:
    """Human-readable proof ledger for one file's fix run."""
    lines = [f"fix: {len(result.accepted)} accepted, "
             f"{len(result.rejected)} rejected "
             f"({result.rounds} round(s))"]
    for step in result.steps:
        head = (f"  {'accepted' if step.accepted else 'rejected'} "
                f"[{step.code}] {step.kind} @ line {step.line}")
        if step.accepted:
            times = "; ".join(
                f"{t}: {step.times_before_s[t] * 1e6:.2f} -> "
                f"{step.times_after_s[t] * 1e6:.2f} us"
                for t in sorted(step.times_after_s)
                if t in step.times_before_s)
            lines.append(f"{head}: {times}" if times else head)
        else:
            lines.append(f"{head}: {step.reason}")
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
