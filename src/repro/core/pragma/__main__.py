"""CLI: translate pragma-annotated source (the compiler as a tool).

Usage::

    python -m repro.core.pragma INPUT.c [--target mpi2s|mpi1s|shmem]
                                        [--fortran] [--analyze]

Reads C-like source containing ``#pragma comm_parameters`` /
``#pragma comm_p2p`` directives and prints the translated source.
``--analyze`` prints the analyses instead (sync plan, per-directive
pattern classification and matching validation for an 8-rank world,
overlap legality).

A second console entry point, ``repro-lint`` (:func:`main_lint`), runs
the full static verification pass (deadlock, stale-read and
consolidation proofs — see ``docs/LINT.md``) over one or more files
and renders text, JSON or SARIF 2.1.0; it exits 1 when any
error-severity diagnostic is produced (``--fail-on warning`` widens
the gate to warnings). ``--advise`` additionally runs
the CI1xx performance advisor, and ``--fix`` / ``--fix-dry-run`` run
the proof-carrying auto-fix engine (every rewrite must re-verify
CI0xx-clean on all lowering targets and must not regress the modeled
time before it is accepted).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.analysis import (
    FixResult,
    classify_pattern,
    comm_graph,
    fix_source,
    lint_program,
    overlap_legal,
    plan_synchronization,
    render_json,
    render_sarif,
    validate_matching,
)
from repro.core.analysis.codes import make
from repro.core.analysis.independence import base_identifier
from repro.core.analysis.lint import LintReport
from repro.core.clauses import Target
from repro.core.codegen import generate_c, generate_fortran
from repro.core.ir import BufferDecl, P2PNode, Program
from repro.core.pragma import parse_program
from repro.dtypes.primitives import DOUBLE
from repro.errors import ReproError

_TARGETS = {
    "mpi2s": Target.MPI_2SIDE,
    "mpi1s": Target.MPI_1SIDE,
    "shmem": Target.SHMEM,
}


def _analyze(program, nprocs: int) -> str:
    lines = []
    plan = plan_synchronization(program)
    lines.append(f"directives: {len(program.all_p2p())} comm_p2p in "
                 f"{len(program.regions())} region(s)")
    lines.append(f"sync plan: {plan.total_sync_calls} call(s), "
                 f"{plan.reduction_factor(program):.1f}x fewer than "
                 "per-instance synchronization")
    for i, node in enumerate(program.all_p2p()):
        lines.append(f"-- comm_p2p #{i} (line {node.line})")
        try:
            graph = comm_graph(node.clauses, nprocs)
            lines.append(f"   pattern ({nprocs} ranks): "
                         f"{classify_pattern(graph)}; "
                         f"{len(graph.edges)} edge(s)")
            issues = validate_matching(graph)
            if issues:
                for issue in issues:
                    lines.append(f"   MATCHING ISSUE: {issue}")
            else:
                lines.append("   matching: consistent")
        except ReproError as exc:
            lines.append(f"   pattern: not statically evaluable ({exc})")
        verdict = overlap_legal(node)
        lines.append(f"   overlap legal: {verdict.legal} "
                     f"({verdict.reason})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.pragma",
        description="Translate comm-directive pragmas to library calls.")
    parser.add_argument("input", help="annotated C-like source file")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default="mpi2s",
                        help="default translation target (a directive's "
                             "own target clause still wins)")
    parser.add_argument("--fortran", action="store_true",
                        help="emit the Fortran skeleton instead of C")
    parser.add_argument("--analyze", action="store_true",
                        help="print analyses instead of translated code")
    parser.add_argument("--nprocs", type=int, default=8,
                        help="world size for --analyze pattern "
                             "evaluation (default 8)")
    args = parser.parse_args(argv)

    try:
        with open(args.input, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        program = parse_program(source)
        if args.analyze:
            print(_analyze(program, args.nprocs))
        elif args.fortran:
            print(generate_fortran(program, _TARGETS[args.target]))
        else:
            print(generate_c(program, _TARGETS[args.target]))
    except ReproError as exc:
        print(f"translation error: {exc}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# repro-lint


#: Default bindings for free names used by the pattern catalog's clause
#: sets (``--catalog``); ``--var`` overrides.
_CATALOG_VARS = {"root": 0, "peer": 1, "n": 4, "p": 0}


def _parse_vars(pairs: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(
                f"--var expects name=value, got {pair!r}")
        out[name] = int(value)
    return out


def _catalog_reports(nprocs: int, extra_vars: dict[str, int],
                     targets: list[Target] | None = None,
                     advise: bool = False,
                     fixes: dict[str, FixResult] | None = None
                     ) -> list[LintReport]:
    """Lint every pattern catalog entry that carries static clauses.

    When ``fixes`` is given, each entry is also run through the
    proof-carrying fix engine (dry-run: catalog programs have no file
    to write back to) and the resulting ledger is stored under the
    entry's ``catalog:<name>`` path.
    """
    from repro.patterns.catalog import PATTERNS

    reports: list[LintReport] = []
    variables = dict(_CATALOG_VARS)
    variables.update(extra_vars)
    for name, spec in sorted(PATTERNS.items()):
        clauses = spec.clauses()
        if clauses is None:
            continue  # runtime-only pattern (e.g. butterfly)
        program = Program(nodes=[P2PNode(clauses=clauses, line=1)])
        for expr in (*clauses.sbuf, *clauses.rbuf):
            base = base_identifier(expr)
            program.decls.setdefault(
                base, BufferDecl(base, DOUBLE, length=1024))
        report = lint_program(program, nprocs=nprocs,
                              extra_vars=variables,
                              path=f"catalog:{name}",
                              targets=targets, advise=advise)
        reports.append(report)
        if fixes is not None:
            decls = "\n".join(f"double {base}[1024];"
                              for base in sorted(program.decls))
            source = f"{decls}\n\n{program.to_source()}"
            try:
                # Some catalog clause sets use parameters-only clauses
                # on a bare directive and have no pragma source form;
                # the fix engine only works on printable programs.
                parse_program(source)
            except ReproError:
                continue
            fixes[f"catalog:{name}"] = fix_source(
                source, nprocs=nprocs, extra_vars=variables)
    return reports


def main_lint(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically verify comm-directive pragma sources: "
                    "deadlock freedom, stale-read freedom, and "
                    "consolidation safety across all lowering targets.")
    parser.add_argument("inputs", nargs="*",
                        help="annotated C-like source files")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--nprocs", type=int, default=8,
                        help="world size the programs are unrolled for "
                             "(default 8)")
    parser.add_argument("--var", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="bind a free clause-expression name "
                             "(repeatable)")
    parser.add_argument("--catalog", action="store_true",
                        help="also lint the built-in pattern catalog's "
                             "static clause sets")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default=None,
                        help="restrict the verifier sweep to one "
                             "lowering target (default: all three)")
    parser.add_argument("--advise", action="store_true",
                        help="also run the CI1xx performance advisor "
                             "(net-model estimated savings)")
    parser.add_argument("--fix", action="store_true",
                        help="apply advisor rewrites that pass both "
                             "proof gates, writing files in place "
                             "(implies --advise)")
    parser.add_argument("--fix-dry-run", action="store_true",
                        help="run the proof-carrying fix engine but "
                             "only report the ledger (implies --advise)")
    parser.add_argument("--fail-on", choices=("error", "warning"),
                        default="error",
                        help="severity threshold for a non-zero exit: "
                             "'error' (default) exits 1 on errors "
                             "only; 'warning' also fails "
                             "warning-severity findings (CI gating)")
    args = parser.parse_args(argv)
    if not args.inputs and not args.catalog:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no inputs (give files or --catalog)",
              file=sys.stderr)
        return 2
    try:
        extra_vars = _parse_vars(args.var)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    do_fix = args.fix or args.fix_dry_run
    advise = args.advise or do_fix
    targets = [_TARGETS[args.target]] if args.target else None

    reports: list[LintReport] = []
    fixes: dict[str, FixResult] = {}
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        try:
            program = parse_program(source)
        except ReproError as exc:
            # The file never reached analysis: report the parse error
            # as a CI000 diagnostic so JSON/SARIF stay well-formed.
            line = getattr(exc, "line", None) or 0
            report = LintReport(path=path)
            report.diagnostics.append(make("CI000", line, str(exc)))
            reports.append(report)
            continue
        reports.append(lint_program(program, nprocs=args.nprocs,
                                    extra_vars=extra_vars or None,
                                    path=path, targets=targets,
                                    advise=advise))
        if do_fix:
            result = fix_source(source, nprocs=args.nprocs,
                                extra_vars=extra_vars or None)
            fixes[path] = result
            if args.fix and result.changed:
                try:
                    with open(path, "w", encoding="utf-8") as fh:
                        fh.write(result.source)
                except OSError as exc:
                    print(f"repro-lint: error: {exc}", file=sys.stderr)
                    return 2
                print(f"repro-lint: fixed {path} "
                      f"({len(result.accepted)} rewrite(s) proven)",
                      file=sys.stderr)
    if args.catalog:
        reports.extend(_catalog_reports(
            args.nprocs, extra_vars, targets=targets, advise=advise,
            fixes=fixes if do_fix else None))

    if args.format == "json":
        print(render_json(reports, fixes=fixes or None))
    elif args.format == "sarif":
        print(render_sarif(reports))
    else:
        chunks = []
        for report in reports:
            header = f"== {report.path}" if report.path else "== <input>"
            body = report.render()
            if report.path in fixes:
                body = f"{body}\n{_render_fix(fixes[report.path])}"
            chunks.append(f"{header}\n{body}")
        print("\n\n".join(chunks))
    failing = any(r.errors for r in reports)
    if args.fail_on == "warning":
        failing = failing or any(r.warnings for r in reports)
    return 1 if failing else 0


def _render_fix(result: FixResult) -> str:
    """Human-readable proof ledger for one file's fix run."""
    lines = [f"fix: {len(result.accepted)} accepted, "
             f"{len(result.rejected)} rejected "
             f"({result.rounds} round(s))"]
    for step in result.steps:
        head = (f"  {'accepted' if step.accepted else 'rejected'} "
                f"[{step.code}] {step.kind} @ line {step.line}")
        if step.accepted:
            times = "; ".join(
                f"{t}: {step.times_before_s[t] * 1e6:.2f} -> "
                f"{step.times_after_s[t] * 1e6:.2f} us"
                for t in sorted(step.times_after_s)
                if t in step.times_before_s)
            lines.append(f"{head}: {times}" if times else head)
        else:
            lines.append(f"{head}: {step.reason}")
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
