"""Declaration scanning: recover buffer types and lengths from source.

Count inference and datatype generation need to know, for each buffer
named in an ``sbuf``/``rbuf`` clause, its element type and (for arrays)
its length — information a real compiler reads from its symbol table.
This scanner recovers it from the C-like source with regexes: struct
definitions first (including ``typedef struct {...} Name;``), then
variable declarations of primitive or struct type, as scalars, fixed
arrays or pointers. Pointers are legal buffers ("buffers must be
pointers or arrays", Section III-B) but contribute no length.
"""

from __future__ import annotations

import re

from repro.core.ir import BufferDecl
from repro.dtypes.composite import CompositeType
from repro.dtypes.extract import extract_composite
from repro.dtypes.primitives import PRIMITIVES
from repro.errors import PragmaSyntaxError

_STRUCT_DEF = re.compile(
    r"(?:typedef\s+)?struct\s+(?P<name1>\w+)?\s*\{(?P<body>[^{}]*)\}"
    r"\s*(?P<name2>\w+)?\s*;",
    re.DOTALL,
)

_FIELD = re.compile(
    r"^\s*(?P<type>unsigned\s+char|signed\s+char|unsigned\s+short|"
    r"unsigned\s+long|long\s+long|unsigned|char|short|int|long|float|"
    r"double|[A-Za-z_]\w*)\s+"
    r"(?P<ptr>\*\s*)?(?P<name>\w+)\s*(?:\[(?P<len>\d+)\])?\s*$",
)

_DECL = re.compile(
    r"^\s*(?:struct\s+)?(?P<type>(?:unsigned\s+|signed\s+)?[A-Za-z_]\w*"
    r"(?:\s+long)?)\s+(?P<rest>[^;()=]*);",
)

_VAR = re.compile(
    r"\s*(?P<ptr>\*\s*)?(?P<name>\w+)\s*(?:\[(?P<len>\d+)\])?\s*$",
)

#: C keywords that start statements, never declarations we care about.
_KEYWORDS = {"return", "if", "else", "for", "while", "do", "switch",
             "case", "break", "continue", "goto", "typedef", "struct"}


def _normalize_type(text: str) -> str:
    return " ".join(text.split())


def scan_declarations(source: str) -> tuple[dict[str, CompositeType],
                                            dict[str, BufferDecl]]:
    """Extract struct types and buffer declarations from source text.

    Returns ``(structs, decls)``; ``decls`` maps variable name to
    :class:`~repro.core.ir.BufferDecl`.
    """
    structs = _scan_structs(source)
    decls: dict[str, BufferDecl] = {}
    statements = []
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if line.startswith("#") or line.startswith("//"):
            continue
        statements.extend(seg.strip() + ";" for seg in line.split(";")
                          if seg.strip())
    for line in statements:
        m = _DECL.match(line)
        if not m:
            continue
        type_name = _normalize_type(m.group("type"))
        if type_name in _KEYWORDS:
            continue
        ctype: CompositeType | None
        if type_name in PRIMITIVES:
            ctype = PRIMITIVES[type_name]
        elif type_name in structs:
            ctype = structs[type_name]
        else:
            continue  # unknown type: not a buffer declaration we track
        for var in m.group("rest").split(","):
            vm = _VAR.match(var)
            if not vm:
                continue
            name = vm.group("name")
            if name in _KEYWORDS:
                continue
            length = int(vm.group("len")) if vm.group("len") else None
            decls[name] = BufferDecl(
                name=name,
                ctype=ctype,
                length=length,
                is_pointer=vm.group("ptr") is not None,
            )
    return structs, decls


def _scan_structs(source: str) -> dict[str, CompositeType]:
    structs: dict[str, CompositeType] = {}
    for m in _STRUCT_DEF.finditer(source):
        name = m.group("name2") or m.group("name1")
        if name is None:
            raise PragmaSyntaxError("anonymous struct definition")
        definition: dict[str, object] = {}
        for field_src in m.group("body").split(";"):
            field_src = field_src.strip()
            if not field_src or field_src.startswith("//"):
                continue
            fm = _FIELD.match(field_src)
            if not fm:
                raise PragmaSyntaxError(
                    f"cannot parse struct field {field_src!r} in "
                    f"struct {name}")
            ftype = _normalize_type(fm.group("type"))
            if fm.group("ptr"):
                # Preserved as a pointer spec so extract_composite
                # raises the paper's prohibition.
                spec: object = ftype + "*"
            elif ftype in structs:
                spec = structs[ftype]
            else:
                spec = ftype
            if fm.group("len"):
                spec = (spec, int(fm.group("len")))
            definition[fm.group("name")] = spec
        structs[name] = extract_composite(name, definition)
    return structs
