"""Recursive-descent parser for pragma-annotated C-like source.

Produces a :class:`repro.core.ir.Program`. The parser understands just
enough C structure to carve the source into raw code and directive
nodes:

* ``#pragma comm_parameters`` / ``#pragma comm_p2p`` followed by
  clauses ``name(args)`` that may span lines (parentheses balanced);
* a directive's body: the ``{...}`` block that follows, or — for
  ``comm_parameters`` — a single following statement (a ``for``/
  ``while`` loop or another pragma), matching the paper's Listing 3;
* everything else passes through as :class:`~repro.core.ir.RawCode`.
"""

from __future__ import annotations

from repro.core.clauses import SyncPlacement, Target
from repro.core.ir import (
    ClauseExprs,
    Node,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.core.pragma.decls import scan_declarations
from repro.errors import PragmaSyntaxError

_CLAUSE_NAMES = {
    "sender", "receiver", "sbuf", "rbuf", "sendwhen", "receivewhen",
    "target", "count", "place_sync", "max_comm_iter",
}

_PARAMETERS_ONLY = {"place_sync", "max_comm_iter"}

#: Clauses whose argument, when written as an integer literal, must be
#: strictly positive: a ``count(0)`` transfer moves nothing and a
#: ``max_comm_iter(0)`` region iterates never — both are degenerate
#: programs the random generator exposed, and both are authoring
#: mistakes better rejected at parse time (with a source location)
#: than crashed on downstream.
_POSITIVE_LITERAL = {"count", "max_comm_iter"}


class _Scanner:
    """Character scanner with line tracking."""

    def __init__(self, text: str, line_offset: int = 0):
        self.text = text
        self.pos = 0
        self.line_offset = line_offset

    def line_at(self, pos: int) -> int:
        return self.line_offset + self.text.count("\n", 0, pos) + 1

    @property
    def line(self) -> int:
        return self.line_at(self.pos)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def match_ident(self) -> str | None:
        i = self.pos
        t = self.text
        if i < len(t) and (t[i].isalpha() or t[i] == "_"):
            j = i + 1
            while j < len(t) and (t[j].isalnum() or t[j] == "_"):
                j += 1
            return t[i:j]
        return None

    def read_balanced(self, open_ch: str, close_ch: str) -> str:
        """Read a balanced group starting at the current position
        (which must be ``open_ch``); returns the *inner* text."""
        if self.peek() != open_ch:
            raise PragmaSyntaxError(
                f"expected {open_ch!r}", line=self.line)
        depth = 0
        start = self.pos + 1
        while not self.eof():
            c = self.text[self.pos]
            if c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    inner = self.text[start:self.pos]
                    self.pos += 1
                    return inner
            self.pos += 1
        raise PragmaSyntaxError(
            f"unbalanced {open_ch!r} group", line=self.line_at(start))


def parse_program(source: str) -> Program:
    """Parse annotated source into a :class:`Program`."""
    structs, decls = scan_declarations(source)
    sc = _Scanner(source)
    nodes = _parse_nodes(sc)
    return Program(decls=decls, structs=structs, nodes=nodes)


def _parse_nodes(sc: _Scanner) -> list[Node]:
    """Parse nodes until end of the scanner's text."""
    nodes: list[Node] = []
    raw_start = sc.pos
    while not sc.eof():
        idx = sc.text.find("#pragma", sc.pos)
        if idx == -1:
            break
        probe = _Scanner(sc.text, sc.line_offset)
        probe.pos = idx + len("#pragma")
        probe.skip_ws()
        kind = probe.match_ident()
        if kind not in ("comm_parameters", "comm_p2p"):
            sc.pos = idx + len("#pragma")
            continue
        _flush_raw(nodes, sc.text[raw_start:idx], sc.line_at(raw_start))
        probe.pos += len(kind)
        node = _parse_directive(probe, kind)
        nodes.append(node)
        sc.pos = probe.pos
        raw_start = sc.pos
    _flush_raw(nodes, sc.text[raw_start:], sc.line_at(raw_start))
    return nodes


def _flush_raw(nodes: list[Node], text: str, line: int) -> None:
    if not text.strip():
        return
    lines = text.splitlines()
    while lines and not lines[0].strip():
        lines.pop(0)
        line += 1
    while lines and not lines[-1].strip():
        lines.pop()
    nodes.append(RawCode(lines=lines, line=line))


def _parse_directive(sc: _Scanner, kind: str) -> Node:
    line = sc.line
    clauses = _parse_clauses(sc, kind)
    body = _parse_body(sc, kind)
    if kind == "comm_parameters":
        return ParamRegionNode(clauses=clauses, body=body, line=line)
    return P2PNode(clauses=clauses, body=body, line=line)


def _parse_clauses(sc: _Scanner, kind: str) -> ClauseExprs:
    out = ClauseExprs()
    while True:
        save = sc.pos
        sc.skip_ws()
        ident = sc.match_ident()
        if ident is None or ident not in _CLAUSE_NAMES:
            sc.pos = save
            break
        sc.pos += len(ident)
        sc.skip_ws()
        if sc.peek() != "(":
            raise PragmaSyntaxError(
                f"clause {ident!r} needs a parenthesized argument",
                line=sc.line)
        args = sc.read_balanced("(", ")").strip()
        _store_clause(out, ident, args, kind, sc.line)
    _validate(out, kind, sc.line)
    return out


def _store_clause(out: ClauseExprs, name: str, args: str, kind: str,
                  line: int) -> None:
    if name in _PARAMETERS_ONLY and kind != "comm_parameters":
        raise PragmaSyntaxError(
            f"clause {name!r} may only be used with comm_parameters",
            line=line)
    if out.has(name):
        raise PragmaSyntaxError(f"duplicate clause {name!r}", line=line)
    if name in ("sbuf", "rbuf"):
        bufs = [b.strip() for b in _split_top_commas(args)]
        if not all(bufs):
            raise PragmaSyntaxError(
                f"empty buffer name in {name}({args})", line=line)
        setattr(out, name, bufs)
    elif name == "target":
        try:
            out.target = Target(args)
        except ValueError:
            raise PragmaSyntaxError(
                f"unknown target keyword {args!r}", line=line) from None
    elif name == "place_sync":
        try:
            out.place_sync = SyncPlacement(args)
        except ValueError:
            raise PragmaSyntaxError(
                f"unknown place_sync keyword {args!r}", line=line) from None
    else:
        if not args:
            raise PragmaSyntaxError(
                f"clause {name!r} needs an expression", line=line)
        if name in _POSITIVE_LITERAL:
            try:
                literal = int(args)
            except ValueError:
                literal = None
            if literal is not None and literal <= 0:
                raise PragmaSyntaxError(
                    f"clause {name}({args}) must be a positive count",
                    line=line)
        out.exprs[name] = args


def _validate(out: ClauseExprs, kind: str, line: int) -> None:
    if ("sendwhen" in out.exprs) != ("receivewhen" in out.exprs):
        raise PragmaSyntaxError(
            "sendwhen and receivewhen must both be present or both be "
            "omitted", line=line)


def _split_top_commas(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in text:
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _parse_body(sc: _Scanner, kind: str) -> list[Node]:
    save = sc.pos
    sc.skip_ws()
    if sc.peek() == "{":
        line0 = sc.line
        inner = sc.read_balanced("{", "}")
        inner_sc = _Scanner(inner, line_offset=line0 - 1)
        return _parse_nodes(inner_sc)
    # No block. comm_p2p stands alone; comm_parameters captures the
    # next statement (the Listing 3 for-loop shape).
    if kind == "comm_p2p":
        sc.pos = save
        return []
    return _parse_statement(sc)


def _parse_statement(sc: _Scanner) -> list[Node]:
    """One C statement: loop, nested pragma, block, or simple ';'."""
    sc.skip_ws()
    if sc.eof():
        return []
    if sc.peek(7) == "#pragma":
        probe = _Scanner(sc.text, sc.line_offset)
        probe.pos = sc.pos + len("#pragma")
        probe.skip_ws()
        kind = probe.match_ident()
        if kind in ("comm_parameters", "comm_p2p"):
            probe.pos += len(kind)
            node = _parse_directive(probe, kind)
            sc.pos = probe.pos
            return [node]
    ident = sc.match_ident()
    if ident in ("for", "while"):
        start = sc.pos
        line = sc.line
        sc.pos += len(ident)
        sc.skip_ws()
        header_inner = sc.read_balanced("(", ")")
        header = f"{ident} ({header_inner})"
        body = _parse_statement(sc)
        return [RawCode(lines=[header], line=line), *body]
    if sc.peek() == "{":
        line0 = sc.line
        inner = sc.read_balanced("{", "}")
        inner_sc = _Scanner(inner, line_offset=line0 - 1)
        return _parse_nodes(inner_sc)
    # Simple statement: up to the next ';'.
    end = sc.text.find(";", sc.pos)
    if end == -1:
        end = len(sc.text) - 1
    stmt = sc.text[sc.pos:end + 1]
    line = sc.line
    sc.pos = end + 1
    return [RawCode(lines=[stmt], line=line)]
