"""Static front end: parse ``#pragma comm_*``-annotated C-like source.

This is the reproduction's stand-in for the paper's Open64
implementation: it turns annotated source text into the directive IR
(:mod:`repro.core.ir`), which the analyses examine and the code
generators (:mod:`repro.core.codegen`) translate into MPI or SHMEM
source — the Listing 4 -> Listing 5 workflow run in reverse
(directives in, library calls out).

Scope: a pragmatic C subset sufficient for the paper's listings —
struct definitions, scalar/array/pointer declarations of primitive and
struct types, ``for``/``while`` headers, and the two pragmas with their
ten clauses (possibly spanning lines).
"""

from repro.core.ir import Program
from repro.core.pragma.decls import scan_declarations
from repro.core.pragma.parser import parse_program


def print_program(program: Program) -> str:
    """Print a parsed :class:`~repro.core.ir.Program` back to source.

    Convenience wrapper over :meth:`Program.to_source`; the printed
    text re-parses to the same IR (parse -> print -> parse fixpoint),
    which is what ``repro-lint --fix`` rewrites rely on.
    """
    return program.to_source()


__all__ = ["parse_program", "print_program", "scan_declarations"]
