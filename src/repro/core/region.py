"""Per-rank directive region state: pending handles and sync carrying.

A ``comm_parameters`` region accumulates the handles its ``comm_p2p``
instances post, so synchronization can be *consolidated* — one backend
sync call covering all adjacent communication with independent buffers
(Section III-A). The ``place_sync`` keywords move that consolidated
sync:

* ``END_PARAM_REGION`` (default) — at region exit;
* ``BEGIN_NEXT_PARAM_REGION`` — carried, executed when the *next*
  region on this rank is entered;
* ``END_ADJ_PARAM_REGIONS`` — carried across a chain of adjacent
  regions that all specify it; the chain's sync executes when a region
  without it is reached (entry) or :func:`repro.core.directives.
  comm_flush` is called.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.clauses import SyncPlacement
from repro.core.lower.base import Backend, RecvHandle, SendHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Env

_SERVICE_KEY = "directive_regions"


@dataclass
class PendingComm:
    """Unsynchronized communication, grouped for one consolidated sync."""

    sends: list[SendHandle] = field(default_factory=list)
    recvs: list[RecvHandle] = field(default_factory=list)
    #: Local arrays involved, for the buffer-independence check.
    buffers: list[np.ndarray] = field(default_factory=list)
    #: Open ``window`` span ids (posted-but-unsynced intervals) when
    #: profiling; every covering window closes at this set's sync.
    window_sids: list[int] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.sends or self.recvs)

    def absorb(self, other: "PendingComm") -> None:
        """Merge another pending set into this one."""
        self.sends.extend(other.sends)
        self.recvs.extend(other.recvs)
        self.buffers.extend(other.buffers)
        self.window_sids.extend(other.window_sids)
        other.window_sids.clear()

    def note_window(self, env: "Env") -> None:
        """Open a posted-but-unsynced window span (profiling only).

        Called after a directive instance posts into this set; compute
        spans falling inside the window are *realized* overlap.
        """
        profile = env.engine.profile
        if profile is not None and self and not self.window_sids:
            self.window_sids.append(
                profile.begin(env.rank, "window", env.now))

    def overlaps(self, arrays: list[np.ndarray]) -> bool:
        """True if any new array shares memory with a pending one."""
        for a in arrays:
            for b in self.buffers:
                if np.shares_memory(a, b):
                    return True
        return False

    def sync(self, env: "Env") -> None:
        """Issue one consolidated sync per backend and clear."""
        profile = env.engine.profile
        if profile is not None and self.window_sids:
            # The overlap window ends where the synchronization starts:
            # compute after this point is exposed, not overlapped.
            for sid in self.window_sids:
                profile.end(sid, env.now)
            self.window_sids.clear()
        if not self:
            self.buffers.clear()
            return
        by_backend: dict[int, tuple[Backend, list, list]] = {}
        for h in self.sends:
            entry = by_backend.setdefault(id(h.backend),
                                          (h.backend, [], []))
            entry[1].append(h)
        for h in self.recvs:
            entry = by_backend.setdefault(id(h.backend),
                                          (h.backend, [], []))
            entry[2].append(h)
        n_ops = len(self.sends) + len(self.recvs)
        env.trace("dir.sync", ops=n_ops, backends=len(by_backend))
        sync_t0 = env.now
        # Two-phase across backends: publish every backend's outgoing
        # completions and notifies first, then block. Interleaving the
        # phases per backend can deadlock a consolidated sync that
        # spans targets — one rank waits for a notify its peer would
        # only publish after the peer's own receive-wait.
        for backend, sends, _recvs in by_backend.values():
            backend.sync_publish(sends)
        for backend, sends, recvs in by_backend.values():
            backend.sync_wait(sends, recvs)
        if profile is not None:
            # The handle identity gives the critical-path extraction
            # its cross-rank happens-before edges (sync -> delivery).
            profile.add(
                env.rank, "sync", sync_t0, env.now, ops=n_ops,
                backends=sorted(b.target.value
                                for b, _, _ in by_backend.values()),
                bytes=sum(h.nbytes for h in (*self.sends, *self.recvs)),
                send_keys=[(env.rank, h.dest, h.seq) for h in self.sends],
                recv_keys=[(h.source, env.rank, h.seq)
                           for h in self.recvs])
        self.sends.clear()
        self.recvs.clear()
        self.buffers.clear()
        # Consolidated-sync boundaries are the coordinated-checkpoint
        # points: everything this sync covered is quiescent here, so the
        # recovery runtime can snapshot registered state into a
        # consistent cut (see docs/RECOVERY.md).
        ctx = env.engine.recovery
        if ctx is not None:
            ctx.on_sync_boundary(env)


class RegionState:
    """One rank's directive runtime state."""

    def __init__(self) -> None:
        #: Innermost-last stack of active comm_parameters regions.
        self.stack: list = []
        #: Communication carried out of previous regions, not yet synced.
        self.carried = PendingComm()
        #: The placement policy that created the carry.
        self.carry_mode: SyncPlacement | None = None

    @classmethod
    def of(cls, env: "Env") -> "RegionState":
        """This rank's state record (created on first use)."""
        states = env.engine.services.setdefault(_SERVICE_KEY, {})
        st = states.get(env.rank)
        if st is None:
            st = cls()
            states[env.rank] = st
        return st

    def flush_carry(self, env: "Env") -> None:
        """Synchronize any carried communication now."""
        if self.carried:
            self.carried.sync(env)
        self.carry_mode = None

    def on_region_enter(self, env: "Env", place_sync: SyncPlacement) -> None:
        """Drain carried sync whose deferral ends at this region's entry."""
        if self.carry_mode is SyncPlacement.BEGIN_NEXT_PARAM_REGION:
            self.flush_carry(env)
        elif (self.carry_mode is SyncPlacement.END_ADJ_PARAM_REGIONS
              and place_sync is not SyncPlacement.END_ADJ_PARAM_REGIONS):
            # The adjacent chain ended at the previous region; its sync
            # point is here, before this region's communication.
            self.flush_carry(env)

    def on_region_exit(self, env: "Env", pending: PendingComm,
                       place_sync: SyncPlacement) -> None:
        """Apply the place_sync policy to the region's pending."""
        if place_sync is SyncPlacement.END_PARAM_REGION:
            # Consolidated sync now, covering any END_ADJ carry as well.
            self.carried.absorb(pending)
            self.flush_carry(env)
        elif place_sync is SyncPlacement.BEGIN_NEXT_PARAM_REGION:
            self.carried.absorb(pending)
            self.carry_mode = SyncPlacement.BEGIN_NEXT_PARAM_REGION
        elif place_sync is SyncPlacement.END_ADJ_PARAM_REGIONS:
            self.carried.absorb(pending)
            self.carry_mode = SyncPlacement.END_ADJ_PARAM_REGIONS
        else:  # pragma: no cover - enum is closed
            raise AssertionError(place_sync)
