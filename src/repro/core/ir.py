"""Directive IR: what the static front end builds and analyses consume.

The runtime DSL evaluates clauses eagerly; the static path keeps them
as *expression text* (exactly what a pragma in C source carries) so the
analyses can reason over all ranks and the code generators can splice
the expressions into generated library calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clauses import SyncPlacement, Target
from repro.dtypes.composite import CompositeType
from repro.dtypes.primitives import PrimitiveType
from repro.errors import ClauseError


@dataclass(frozen=True)
class BufferDecl:
    """A buffer's declaration, recovered from the source."""

    name: str
    #: Element type: a primitive or a composite (struct) type.
    ctype: "PrimitiveType | CompositeType"
    #: Declared array length; None for pointers (length unknown).
    length: int | None = None
    #: True if declared as a pointer (``double *p``).
    is_pointer: bool = False

    @property
    def is_array(self) -> bool:
        """True when the declaration carries a fixed length."""
        return self.length is not None


#: Canonical clause printing order for :meth:`ClauseExprs.to_source`.
#: Deterministic output is what makes parse -> print -> parse a
#: fixpoint (the substrate ``repro-lint --fix`` rewrites stand on).
_CLAUSE_ORDER = ("sender", "receiver", "sendwhen", "receivewhen",
                 "sbuf", "rbuf", "count", "max_comm_iter", "target",
                 "place_sync")


@dataclass
class ClauseExprs:
    """A directive's clauses as raw expression text / name lists."""

    #: Expression-valued clauses: sender, receiver, sendwhen,
    #: receivewhen, count, max_comm_iter (text as written).
    exprs: dict[str, str] = field(default_factory=dict)
    #: sbuf/rbuf: ordered buffer expression lists.
    sbuf: list[str] = field(default_factory=list)
    rbuf: list[str] = field(default_factory=list)
    #: Keyword clauses, already parsed.
    target: Target | None = None
    place_sync: SyncPlacement | None = None

    def has(self, name: str) -> bool:
        """True when the named clause was written in the pragma."""
        if name == "sbuf":
            return bool(self.sbuf)
        if name == "rbuf":
            return bool(self.rbuf)
        if name == "target":
            return self.target is not None
        if name == "place_sync":
            return self.place_sync is not None
        return name in self.exprs

    def merged_into(self, inner: "ClauseExprs") -> "ClauseExprs":
        """Region clauses apply to instances; instance overrides."""
        out = ClauseExprs()
        out.exprs = {k: v for k, v in self.exprs.items()
                     if k not in ("place_sync", "max_comm_iter")}
        out.exprs.update(inner.exprs)
        out.sbuf = list(inner.sbuf or self.sbuf)
        out.rbuf = list(inner.rbuf or self.rbuf)
        out.target = inner.target or self.target
        out.place_sync = None  # region-level only
        return out

    def require_complete(self) -> None:
        """Raise unless the four required clauses are present."""
        missing = [n for n in ("sender", "receiver", "sbuf", "rbuf")
                   if not self.has(n)]
        if missing:
            raise ClauseError(
                f"comm_p2p is missing required clause(s) {missing}")

    def to_source(self) -> str:
        """Pragma clause text in canonical order.

        Printing is deterministic (clause order is fixed, buffer lists
        keep their order, keyword clauses print their source spelling)
        so parse -> print -> parse is a fixpoint.
        """
        parts: list[str] = []
        for name in _CLAUSE_ORDER:
            if name in ("sbuf", "rbuf"):
                bufs: list[str] = getattr(self, name)
                if bufs:
                    parts.append(f"{name}({', '.join(bufs)})")
            elif name == "target":
                if self.target is not None:
                    parts.append(f"target({self.target.value})")
            elif name == "place_sync":
                if self.place_sync is not None:
                    parts.append(f"place_sync({self.place_sync.value})")
            elif name in self.exprs:
                parts.append(f"{name}({self.exprs[name]})")
        return " ".join(parts)


def _body_source(nodes: list["Node"], indent: int) -> str:
    return "\n".join(n.to_source(indent) for n in nodes)


@dataclass
class RawCode:
    """Unanalyzed source lines passed through verbatim."""

    lines: list[str]
    line: int = 0

    def to_source(self, indent: int = 0) -> str:
        """Verbatim lines (original indentation is preserved)."""
        return "\n".join(self.lines)


@dataclass
class P2PNode:
    """One ``#pragma comm_p2p`` with its (possibly empty) body block."""

    clauses: ClauseExprs
    body: list["Node"] = field(default_factory=list)
    line: int = 0

    def to_source(self, indent: int = 0) -> str:
        """The pragma line plus its braced body (omitted when empty)."""
        pad = " " * indent
        head = f"{pad}#pragma comm_p2p"
        clause_text = self.clauses.to_source()
        if clause_text:
            head = f"{head} {clause_text}"
        if not self.body:
            return head
        inner = _body_source(self.body, indent + 4)
        return f"{head}\n{pad}{{\n{inner}\n{pad}}}"


@dataclass
class ParamRegionNode:
    """One ``#pragma comm_parameters`` region."""

    clauses: ClauseExprs
    body: list["Node"] = field(default_factory=list)
    line: int = 0

    def to_source(self, indent: int = 0) -> str:
        """The pragma line plus an always-braced body.

        A brace-less region would capture the *next* statement on
        re-parse, so the printer always emits the block form.
        """
        pad = " " * indent
        head = f"{pad}#pragma comm_parameters"
        clause_text = self.clauses.to_source()
        if clause_text:
            head = f"{head} {clause_text}"
        inner = _body_source(self.body, indent + 4)
        if inner:
            return f"{head}\n{pad}{{\n{inner}\n{pad}}}"
        return f"{head}\n{pad}{{\n{pad}}}"

    @property
    def place_sync(self) -> SyncPlacement:
        """The region's sync placement (defaulted)."""
        return self.clauses.place_sync or SyncPlacement.END_PARAM_REGION

    def p2p_instances(self) -> list[P2PNode]:
        """All comm_p2p nodes in this region, in textual order."""
        out: list[P2PNode] = []

        def walk(nodes: list[Node]) -> None:
            for n in nodes:
                if isinstance(n, P2PNode):
                    out.append(n)
                    walk(n.body)
                elif isinstance(n, ParamRegionNode):
                    walk(n.body)

        walk(self.body)
        return out


Node = RawCode | P2PNode | ParamRegionNode


@dataclass
class Program:
    """A parsed translation unit: declarations + the node sequence."""

    decls: dict[str, BufferDecl] = field(default_factory=dict)
    structs: dict[str, CompositeType] = field(default_factory=dict)
    nodes: list[Node] = field(default_factory=list)

    def to_source(self) -> str:
        """Print the program back to annotated source.

        Declarations live inside :class:`RawCode` nodes, so re-parsing
        the printed text recovers the same declarations; the printed
        form is a parse -> print fixpoint (printing the re-parse yields
        the identical string).
        """
        return "\n".join(n.to_source() for n in self.nodes) + "\n"

    def regions(self) -> list[ParamRegionNode]:
        """Top-level comm_parameters regions, in textual order."""
        return [n for n in self.nodes if isinstance(n, ParamRegionNode)]

    def all_p2p(self) -> list[P2PNode]:
        """Every comm_p2p node in the program, in textual order."""
        out: list[P2PNode] = []

        def walk(nodes: list[Node]) -> None:
            for n in nodes:
                if isinstance(n, P2PNode):
                    out.append(n)
                    walk(n.body)
                elif isinstance(n, ParamRegionNode):
                    walk(n.body)

        walk(self.nodes)
        return out

    def adjacent_region_chains(self) -> list[list[ParamRegionNode]]:
        """Maximal runs of comm_parameters regions adjacent in the node
        sequence (only trivial raw code between them breaks nothing;
        any non-empty raw code separates chains)."""
        chains: list[list[ParamRegionNode]] = []
        current: list[ParamRegionNode] = []
        for n in self.nodes:
            if isinstance(n, ParamRegionNode):
                current.append(n)
            else:
                nonblank = isinstance(n, RawCode) and any(
                    ln.strip() for ln in n.lines)
                if nonblank or not isinstance(n, RawCode):
                    if current:
                        chains.append(current)
                    current = []
        if current:
            chains.append(current)
        return chains
