"""Static back end: emit translated source from directive IR.

Reproduces the paper's translation step as text-to-text: a parsed
annotated program (:mod:`repro.core.pragma`) comes out as C with the
pragmas replaced by generated MPI two-sided, MPI one-sided or SHMEM
calls — including derived-datatype creation for composite buffers and
consolidated synchronization per the
:mod:`repro.core.analysis.syncopt` plan. A Fortran generator emits the
communication skeleton for the same IR (the paper targets C, C++ and
Fortran).
"""

from repro.core.codegen.c_mpi import generate_c
from repro.core.codegen.fortran import generate_fortran

__all__ = ["generate_c", "generate_fortran"]
