"""Fortran code generation (communication skeleton).

The paper's directives work in C, C++ and Fortran sources. Our static
front end parses the C-like form only, so the Fortran generator emits a
*subroutine skeleton* from the same IR: the translated communication
statements in Fortran with raw C statements carried along as comments.
This demonstrates the multi-language back end without a Fortran parser.
"""

from __future__ import annotations

import copy

from repro.core.analysis.infer import infer_count_static, infer_element_type
from repro.core.analysis.syncopt import plan_synchronization
from repro.core.clauses import Target
from repro.core.ir import (
    Node,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.dtypes.composite import CompositeType

_F_TYPES = {
    "MPI_CHAR": "MPI_CHARACTER",
    "MPI_INT": "MPI_INTEGER",
    "MPI_LONG": "MPI_INTEGER8",
    "MPI_FLOAT": "MPI_REAL",
    "MPI_DOUBLE": "MPI_DOUBLE_PRECISION",
}


def generate_fortran(program: Program,
                     default_target: Target = Target.MPI_2SIDE,
                     name: str = "cd_translated") -> str:
    """Emit a Fortran subroutine with the translated communication."""
    # The clause-merging pass below rewrites instance clauses; work on a
    # copy so the caller's IR (possibly shared with generate_c) is safe.
    program = copy.deepcopy(program)
    lines: list[str] = [
        f"subroutine {name}(rank, nprocs)",
        "  use mpi",
        "  implicit none",
        "  integer :: rank, nprocs, ierr, cd_nreq",
        "  integer :: cd_reqs(16384)",
        "  integer :: cd_statuses(MPI_STATUS_SIZE, 16384)",
        "  cd_nreq = 0",
    ]
    plan = plan_synchronization(program)
    end_syncs = {id(p.node) for p in plan.points if p.position == "end"}
    begin_syncs = {id(p.node) for p in plan.points
                   if p.position == "begin"}
    tag = [0]

    def emit_nodes(nodes: list[Node], depth: int) -> None:
        pad = "  " * (depth + 1)
        for node in nodes:
            if isinstance(node, RawCode):
                for ln in node.lines:
                    if ln.strip():
                        lines.append(f"{pad}! C: {ln.strip()}")
            elif isinstance(node, ParamRegionNode):
                lines.append(f"{pad}! comm_parameters region")
                if id(node) in begin_syncs:
                    emit_sync(node, pad)
                emit_nodes(node.body, depth + 1)
                if id(node) in end_syncs:
                    emit_sync(node, pad)
            elif isinstance(node, P2PNode):
                emit_p2p(node, depth)

    def emit_sync(region: ParamRegionNode, pad: str) -> None:
        target = region.clauses.target or default_target
        if target is Target.SHMEM:
            lines.append(f"{pad}call shmem_quiet()")
            lines.append(f"{pad}call shmem_barrier_all()")
        else:
            lines.append(f"{pad}call MPI_WAITALL(cd_nreq, cd_reqs, "
                         "cd_statuses, ierr)")
            lines.append(f"{pad}cd_nreq = 0")

    def emit_p2p(node: P2PNode, depth: int) -> None:
        pad = "  " * (depth + 1)
        cl = node.clauses
        # Top-level standalone use: clauses must already be complete;
        # region merging happened structurally (regions carry their own
        # emit path above), so resolve against the innermost region via
        # the parser-provided nesting.
        count = infer_count_static(cl, program.decls) \
            if cl.has("sbuf") else "1"
        ctype = infer_element_type(cl, program.decls) \
            if cl.has("sbuf") else None
        if isinstance(ctype, CompositeType) or ctype is None:
            ftype = "MPI_BYTE"
        else:
            ftype = _F_TYPES.get(ctype.mpi_name, "MPI_BYTE")
        t = tag[0]
        tag[0] += 1
        send = cl.exprs.get("sendwhen")
        recv = cl.exprs.get("receivewhen")
        if send:
            lines.append(f"{pad}if ({_f_expr(send)}) then")
        for b in cl.sbuf:
            lines.append(
                f"{pad}  call MPI_ISEND({_f_name(b)}, {count}, {ftype}, "
                f"{_f_expr(cl.exprs['receiver'])}, {t}, MPI_COMM_WORLD, "
                "cd_reqs(cd_nreq+1), ierr)")
            lines.append(f"{pad}  cd_nreq = cd_nreq + 1")
        if send:
            lines.append(f"{pad}end if")
        if recv:
            lines.append(f"{pad}if ({_f_expr(recv)}) then")
        for b in cl.rbuf:
            lines.append(
                f"{pad}  call MPI_IRECV({_f_name(b)}, {count}, {ftype}, "
                f"{_f_expr(cl.exprs['sender'])}, {t}, MPI_COMM_WORLD, "
                "cd_reqs(cd_nreq+1), ierr)")
            lines.append(f"{pad}  cd_nreq = cd_nreq + 1")
        if recv:
            lines.append(f"{pad}end if")
        emit_nodes(node.body, depth + 1)

    # Merge region clauses into instances up front so emit_p2p sees
    # complete clause sets.
    def merge(nodes: list[Node], region: ParamRegionNode | None) -> None:
        for node in nodes:
            if isinstance(node, ParamRegionNode):
                merge(node.body, node)
            elif isinstance(node, P2PNode):
                if region is not None:
                    node.clauses = region.clauses.merged_into(node.clauses)
                node.clauses.require_complete()
                merge(node.body, region)

    merge(program.nodes, None)
    emit_nodes(program.nodes, 0)
    lines.append(f"end subroutine {name}")
    return "\n".join(lines) + "\n"


def _f_expr(expr: str) -> str:
    """C boolean/arithmetic expression -> Fortran spelling."""
    out = expr
    for c, f in (("&&", " .and. "), ("||", " .or. "), ("==", " == "),
                 ("!=", " /= "), ("%", " mod_op "), ("!", " .not. ")):
        out = out.replace(c, f)
    # 'a mod_op b' -> 'mod(a, b)' is non-trivial textually; keep the
    # readable infix note for generated review code.
    return out.replace(" mod_op ", " MOD ")


def _f_name(buffer_expr: str) -> str:
    return buffer_expr.strip().lstrip("&")
