"""The paper's contribution: communication-intent directives.

Two directives — ``comm_parameters`` and ``comm_p2p`` — express
point-to-point communication at the level of *intent*: who sends, who
receives, which buffers, under what condition, with translation to MPI
two-sided, MPI one-sided or SHMEM chosen by a clause (or defaulted).

Two front ends produce the same directive semantics:

* the **runtime DSL** (:mod:`repro.core.directives`): Python context
  managers used inside SPMD programs running on :mod:`repro.sim` — the
  directives post communication on entry, run their body overlapped
  with the transfers, and consolidate synchronization per the
  ``place_sync`` policy;
* the **static translator** (:mod:`repro.core.pragma` +
  :mod:`repro.core.codegen`): parses C-like source annotated with
  ``#pragma comm_parameters`` / ``#pragma comm_p2p`` into IR and emits
  translated C (MPI or SHMEM) — the paper's Open64 workflow.

The shared middle: clause validation (:mod:`repro.core.clauses`),
inference and analyses (:mod:`repro.core.analysis`), and lowering to
executable communication plans (:mod:`repro.core.lower`).
"""

from repro.core.clauses import ClauseSet, SyncPlacement, Target
from repro.core.directives import (
    CommP2P,
    CommParameters,
    comm_flush,
    comm_p2p,
    comm_parameters,
)
from repro.core.collectives_ext import CollectivePattern, comm_collective

__all__ = [
    "ClauseSet",
    "SyncPlacement",
    "Target",
    "CommP2P",
    "CommParameters",
    "comm_flush",
    "comm_p2p",
    "comm_parameters",
    "CollectivePattern",
    "comm_collective",
]
