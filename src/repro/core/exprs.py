"""Safe evaluation of clause expressions.

The paper's clauses carry C expressions evaluated per process
(``sender(rank-1)``, ``sendwhen(rank%2==0)``). The static analyses
(:mod:`repro.core.analysis.dataflow`) evaluate those expressions for
every rank to recover the concrete communication pattern — the
"source and destination information ... incorporated into an analysis
framework" of Section I. Evaluation is sandboxed: the expression is
parsed to an AST and only arithmetic/comparison/boolean nodes and
whitelisted names are allowed.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.errors import PragmaSyntaxError

#: AST node types clause expressions may contain.
_ALLOWED_NODES = (
    ast.Expression, ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare,
    ast.Name, ast.Load, ast.Constant, ast.IfExp,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor,
    ast.USub, ast.UAdd, ast.Not, ast.Invert,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.And, ast.Or,
)


def c_to_python(expr: str) -> str:
    """Translate the C operators clause expressions use to Python.

    Handles ``&&``, ``||`` and prefix ``!`` (but not ``!=``). Ternaries
    (``a ? b : c``) are not supported — the paper's examples never use
    them.
    """
    out: list[str] = []
    i = 0
    n = len(expr)
    while i < n:
        two = expr[i:i + 2]
        if two == "&&":
            out.append(" and ")
            i += 2
        elif two == "||":
            out.append(" or ")
            i += 2
        elif two == "!=":
            out.append("!=")
            i += 2
        elif expr[i] == "!":
            out.append(" not ")
            i += 1
        elif expr[i] == "?" or (expr[i] == ":" and ")" not in expr[i:]):
            raise PragmaSyntaxError(
                f"C ternary operator is not supported in clause "
                f"expressions: {expr!r}")
        else:
            out.append(expr[i])
            i += 1
    return "".join(out)


def evaluate(expr: str, variables: dict[str, Any]) -> Any:
    """Evaluate a clause expression under the given variable bindings.

    >>> evaluate("(rank+1)%nprocs", {"rank": 3, "nprocs": 4})
    0
    >>> evaluate("rank%2==0 && rank>0", {"rank": 2})
    True
    """
    py = c_to_python(expr).strip()
    try:
        tree = ast.parse(py, mode="eval")
    except SyntaxError as exc:
        raise PragmaSyntaxError(
            f"cannot parse clause expression {expr!r}: {exc.msg}") from exc
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise PragmaSyntaxError(
                f"clause expression {expr!r} uses unsupported syntax "
                f"({type(node).__name__})")
        if isinstance(node, ast.Name) and node.id not in variables:
            raise PragmaSyntaxError(
                f"clause expression {expr!r} references unknown name "
                f"{node.id!r}; known: {sorted(variables)}")
    return eval(compile(tree, "<clause>", "eval"),  # noqa: S307 - sandboxed
                {"__builtins__": {}}, dict(variables))


def free_names(expr: str) -> set[str]:
    """The variable names an expression references."""
    py = c_to_python(expr).strip()
    try:
        tree = ast.parse(py, mode="eval")
    except SyntaxError as exc:
        raise PragmaSyntaxError(
            f"cannot parse clause expression {expr!r}: {exc.msg}") from exc
    return {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
