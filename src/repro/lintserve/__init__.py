"""Sharded, memoized lint service — verification as infrastructure.

The paper's directive toolchain is only useful at scale if whole-tree
verification is cheap enough to run on every commit. Verification
cost is per (program, nprocs, target) and embarrassingly parallel, so
this package turns the one-shot ``repro-lint`` CLI into a service:

* :mod:`~repro.lintserve.scheduler` fans (files × targets) work units
  over a ``ProcessPoolExecutor`` and merges results deterministically
  — ``--jobs N`` output is byte-identical to the sequential path;
* :mod:`~repro.lintserve.cache` memoizes unit results on disk, keyed
  by content hash + an analysis-version salt, so re-lints of an
  unchanged tree cost one hash lookup per unit (``--cache-dir``);
* :mod:`~repro.lintserve.merge` owns unit (de)serialization and the
  byte-identical report assembly both of the above rely on;
* :mod:`~repro.lintserve.daemon` keeps a warm pool + cache behind a
  unix socket for editor/CI reuse (``--serve``).

The differential-oracle sweep (``repro-gen --jobs/--cache-dir``)
reuses the same pool helper and cache store. See ``docs/LINTSERVE.md``
for the architecture and the CI topology built on top.
"""

from repro.lintserve.cache import (
    MemoryCache,
    ResultCache,
    analysis_salt,
    unit_key,
)
from repro.lintserve.daemon import (
    LintDaemon,
    LintRequest,
    execute_request,
    request_over_socket,
)
from repro.lintserve.merge import assemble_file_report
from repro.lintserve.scheduler import (
    LintServiceStats,
    UnitSpec,
    lint_sources,
    pool_map,
    run_unit,
)

__all__ = [
    "LintDaemon",
    "LintRequest",
    "LintServiceStats",
    "MemoryCache",
    "ResultCache",
    "UnitSpec",
    "analysis_salt",
    "assemble_file_report",
    "execute_request",
    "lint_sources",
    "pool_map",
    "request_over_socket",
    "run_unit",
    "unit_key",
]
