"""Warm lint daemon over a unix socket (``repro-lint --serve``).

Process startup — interpreter boot, importing the analysis stack,
hashing the analysis salt — dominates an editor-triggered or
CI-step-triggered lint of a few files. The daemon pays those costs
once: it binds a unix domain socket, keeps a warm worker pool and a
result cache (on-disk when ``--cache-dir`` is given, in-memory
otherwise), and answers lint requests until told to shut down.

Protocol (newline-delimited JSON, one request per connection)::

    -> {"op": "ping"}
    <- {"ok": true, "pid": 1234}

    -> {"op": "lint", "inputs": ["/abs/a.c"], "nprocs": 8,
        "vars": {"px": 3}, "target": null, "advise": false,
        "catalog": false, "format": "json", "fail_on": "error"}
    <- {"ok": true, "exit_code": 0, "output": "...", "error": "",
        "stats": {...}}

    -> {"op": "stats"}
    <- {"ok": true, "stats": {...cumulative cache counters...}}

    -> {"op": "shutdown"}
    <- {"ok": true}

``output`` is byte-identical to what ``repro-lint`` would print for
the same request (the daemon runs the same scheduler/merge path), and
``exit_code`` follows the same ``--fail-on`` aggregation, so a client
can transparently substitute the daemon for a local run. The CLI
client lives in :func:`repro.core.pragma.__main__.main_lint`
(``repro-lint --socket PATH ...``).
"""

from __future__ import annotations

import json
import os
import socket
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.clauses import Target
from repro.lintserve.cache import MemoryCache, ResultCache
from repro.lintserve.scheduler import lint_sources

__all__ = ["LintDaemon", "LintRequest", "execute_request",
           "request_over_socket"]

#: recv buffer size for the line reader.
_BUFSIZE = 65536


@dataclass
class LintRequest:
    """One lint invocation, as carried over the wire.

    ``inputs`` are kept exactly as the client typed them — they name
    the reports in the output, and byte-identity with a local run
    demands the original spelling. Relative paths are resolved
    against ``cwd`` (the client's working directory) at read time.
    """

    inputs: list[str] = field(default_factory=list)
    cwd: str = ""
    nprocs: int = 8
    vars: dict[str, int] = field(default_factory=dict)
    target: str | None = None
    advise: bool = False
    catalog: bool = False
    format: str = "text"
    fail_on: str = "error"

    @classmethod
    def from_dict(cls, data: dict) -> "LintRequest":
        """Decode one wire request (tolerant of missing fields)."""
        return cls(
            inputs=[str(p) for p in data.get("inputs", [])],
            cwd=str(data.get("cwd", "")),
            nprocs=int(data.get("nprocs", 8)),
            vars={str(k): int(v)
                  for k, v in data.get("vars", {}).items()},
            target=data.get("target"),
            advise=bool(data.get("advise", False)),
            catalog=bool(data.get("catalog", False)),
            format=str(data.get("format", "text")),
            fail_on=str(data.get("fail_on", "error")),
        )

    def as_dict(self) -> dict:
        """The wire form (an ``op: lint`` request)."""
        return {"op": "lint", "inputs": list(self.inputs),
                "cwd": self.cwd,
                "nprocs": self.nprocs, "vars": dict(self.vars),
                "target": self.target, "advise": self.advise,
                "catalog": self.catalog, "format": self.format,
                "fail_on": self.fail_on}


def execute_request(request: LintRequest, *, jobs: int = 1,
                    cache: ResultCache | None = None,
                    executor: Executor | None = None) -> dict:
    """Run one lint request end to end → response dict.

    Shared by the daemon and the in-process ``--jobs/--cache-dir``
    CLI path; mirrors the sequential CLI's semantics exactly: missing
    files exit 2 before any report output, ``--fail-on`` aggregates
    over *all* merged reports (one error in any shard fails the run).
    """
    # Imported here: the CLI module imports this module back (lazily)
    # for --serve, and entry-point import order must stay acyclic.
    from repro.core.pragma.__main__ import (
        _catalog_reports,
        render_reports,
    )

    targets = [Target.parse(request.target)] if request.target else None
    sources: list[tuple[str, str]] = []
    for path in request.inputs:
        resolved = path
        if request.cwd and not os.path.isabs(path):
            resolved = os.path.join(request.cwd, path)
        try:
            with open(resolved, encoding="utf-8") as fh:
                sources.append((path, fh.read()))
        except OSError as exc:
            return {"ok": True, "exit_code": 2, "output": "",
                    "error": f"repro-lint: error: {exc}", "stats": {}}

    reports, stats = lint_sources(
        sources, nprocs=request.nprocs,
        extra_vars=request.vars or None, targets=targets,
        advise=request.advise, jobs=jobs, cache=cache,
        executor=executor)
    if request.catalog:
        reports.extend(_catalog_reports(
            request.nprocs, request.vars, targets=targets,
            advise=request.advise))

    output = render_reports(reports, request.format)
    failing = any(r.errors for r in reports)
    if request.fail_on == "warning":
        failing = failing or any(r.warnings for r in reports)
    return {"ok": True, "exit_code": 1 if failing else 0,
            "output": output, "error": "", "stats": stats.as_dict()}


class LintDaemon:
    """The ``--serve`` loop: warm pool + cache behind a unix socket."""

    def __init__(self, socket_path: str | Path, *, jobs: int = 1,
                 cache_dir: str | Path | None = None) -> None:
        self.socket_path = Path(socket_path)
        self.jobs = max(1, jobs)
        self.cache: ResultCache = (ResultCache(cache_dir)
                                   if cache_dir is not None
                                   else MemoryCache())
        self.requests_served = 0
        self._executor: Executor | None = None

    def _pool(self) -> Executor | None:
        """The warm worker pool (spun up on first use)."""
        if self.jobs <= 1:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def handle(self, request: dict) -> tuple[dict, bool]:
        """Dispatch one decoded request → (response, keep_serving)."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "requests_served": self.requests_served}, True
        if op == "stats":
            return {"ok": True, "stats": {
                "requests_served": self.requests_served,
                "jobs": self.jobs,
                "cache": self.cache.stats(),
            }}, True
        if op == "shutdown":
            return {"ok": True}, False
        if op == "lint":
            try:
                response = execute_request(
                    LintRequest.from_dict(request), jobs=self.jobs,
                    cache=self.cache, executor=self._pool())
            except Exception as exc:  # surface, don't kill the daemon
                return {"ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}, True
            self.requests_served += 1
            return response, True
        return {"ok": False, "error": f"unknown op {op!r}"}, True

    def serve_forever(self,
                      on_ready: Callable[[], None] | None = None
                      ) -> None:
        """Bind the socket and answer requests until shutdown."""
        if self.socket_path.exists():
            # A stale socket from a dead daemon blocks bind(); a live
            # one must not be hijacked.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(str(self.socket_path))
            except OSError:
                self.socket_path.unlink()
            else:
                probe.close()
                raise RuntimeError(
                    f"a daemon is already serving {self.socket_path}")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(str(self.socket_path))
            server.listen(8)
            if on_ready is not None:
                on_ready()
            serving = True
            while serving:
                conn, _ = server.accept()
                with conn:
                    line = _read_line(conn)
                    if not line:
                        continue
                    try:
                        request = json.loads(line)
                    except json.JSONDecodeError as exc:
                        _send(conn, {"ok": False,
                                     "error": f"bad request: {exc}"})
                        continue
                    response, serving = self.handle(request)
                    _send(conn, response)
        finally:
            server.close()
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None


def _read_line(conn: socket.socket) -> bytes:
    """Read up to the first newline (requests are one JSON line)."""
    chunks = []
    while True:
        data = conn.recv(_BUFSIZE)
        if not data:
            break
        chunks.append(data)
        if b"\n" in data:
            break
    return b"".join(chunks).split(b"\n", 1)[0]


def _send(conn: socket.socket, response: dict) -> None:
    conn.sendall(json.dumps(response).encode() + b"\n")


def request_over_socket(socket_path: str | Path,
                        request: dict,
                        timeout: float = 300.0) -> dict:
    """Send one request to a running daemon and decode the response."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    with client:
        client.connect(str(socket_path))
        client.sendall(json.dumps(request).encode() + b"\n")
        chunks = []
        while True:
            data = client.recv(_BUFSIZE)
            if not data:
                break
            chunks.append(data)
            if b"\n" in data:
                break
    payload = b"".join(chunks).split(b"\n", 1)[0]
    if not payload:
        raise ConnectionError(
            f"empty response from daemon at {socket_path}")
    response = json.loads(payload)
    if not isinstance(response, dict):
        raise ConnectionError(
            f"malformed response from daemon at {socket_path}")
    return response
