"""On-disk memoization of analysis-unit results.

Verification cost is a pure function of its inputs: every lint unit
(:mod:`repro.lintserve.scheduler`) and every differential-oracle check
(:mod:`repro.gen.oracle`) is deterministic in (source text, world
size, variable bindings, target sweep) — *and* in the analysis code
itself. The cache therefore keys each result by a content hash over

* an **analysis-version salt** — a digest of every ``repro`` source
  file, so editing any analyzer (or the simulator the oracle runs)
  invalidates the whole cache rather than serving stale verdicts;
* the **unit kind** (``structure`` / ``verify`` / ``advise`` /
  ``diffgen``);
* the unit's **payload** — the raw source text plus the parameters the
  unit is a function of (nprocs, extra vars, target, oracle config).

This is the same content-hash idiom the fix ledger uses for rewrite
signatures and :func:`repro.core.analysis.hb.unroll_key` uses for the
in-process graph cache, extended with the version salt and persisted
to disk: a re-lint of an unchanged tree costs one hash lookup per
unit, and editing one file invalidates exactly that file's units.

Entries are one JSON file each under ``<root>/objects/<k[:2]>/<k>.json``
written atomically (temp file + ``os.replace``), so concurrent
writers — pool workers, a daemon, parallel CI shards sharing a
restored cache — can never publish a torn entry. A corrupt or
truncated entry is treated as a miss and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["MemoryCache", "ResultCache", "analysis_salt", "unit_key"]

#: Computed lazily, once per process (hashing ~200 source files).
_SALT: str | None = None


def analysis_salt() -> str:
    """Digest of every ``repro`` python source file.

    Any change to the package — an analyzer, the simulator, the
    generator — changes the salt and with it every cache key, so a
    stale cache can never survive a toolchain edit. (The CI workflow
    keys its ``actions/cache`` entry on the same file set.)
    """
    global _SALT
    if _SALT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _SALT = h.hexdigest()
    return _SALT


def unit_key(kind: str, payload: object, salt: str | None = None) -> str:
    """Content hash identifying one memoizable unit of analysis.

    ``payload`` must be a value whose ``repr`` is deterministic and
    total over the unit's inputs (tuples of primitives; include the
    source *text*, not a path — renaming a file must hit).
    """
    h = hashlib.sha256()
    h.update((salt if salt is not None else analysis_salt()).encode())
    h.update(b"\0")
    h.update(kind.encode())
    h.update(b"\0")
    h.update(repr(payload).encode())
    return h.hexdigest()


class ResultCache:
    """Content-addressed store of JSON unit results with hit counters."""

    def __init__(self, root: str | Path,
                 salt: str | None = None) -> None:
        self.root = Path(root)
        self.salt = salt if salt is not None else analysis_salt()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, kind: str, payload: object) -> str:
        """The cache key for one unit (see :func:`unit_key`)."""
        return unit_key(kind, payload, self.salt)

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                value = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # Missing is the common case; a torn/corrupt entry (killed
            # writer on a non-atomic filesystem) is dropped and redone.
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
            self.misses += 1
            return None
        if not isinstance(value, dict):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(value, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            # Cache writes are best-effort: a full disk or unwritable
            # dir degrades to uncached operation, never to failure.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1

    @property
    def lookups(self) -> int:
        """Total get() calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        """Counters for the ``--stats-out`` artifact and CI asserts."""
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


class MemoryCache(ResultCache):
    """Same interface, process-local dict store — the daemon's warm
    layer when no ``--cache-dir`` is configured (results survive
    across requests but not across daemon restarts)."""

    def __init__(self, salt: str | None = None) -> None:
        super().__init__(root="<memory>", salt=salt)
        self._store: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: dict) -> None:
        self._store[key] = value
        self.stores += 1
