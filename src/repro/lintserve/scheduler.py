"""Work-sharded lint driver: files × targets fanned over a pool.

The unit of work is deliberately smaller than a file: one file's lint
decomposes into a target-independent **structure** unit, one
**verify** unit per swept lowering target, and (under ``--advise``)
one **advisor** unit — the decomposition
:func:`repro.core.analysis.lint.lint_program` itself is built from.
Each unit is a pure function of (source text, nprocs, extra vars,
target), so units parallelize and memoize independently: a 1000-file
tree at three targets is ~4000 units for the pool, and an incremental
re-lint re-executes only the units of files that changed.

Scheduling is deterministic-by-construction: units are *generated* in
file order, *executed* in any order (``ProcessPoolExecutor.map`` over
the cache misses), and *merged* strictly in generation order by
:mod:`repro.lintserve.merge` — completion order never influences the
report, which is what keeps ``--jobs N`` output byte-identical to the
sequential path.

Every executed unit's wall time rides along in its result dict (and
in the cache), so the lint benchmark can reconstruct modeled pool
makespans from measured unit costs.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.analysis.lint import (
    LintReport,
    advise_diagnostics,
    structure_report,
    verify_target_diagnostics,
)
from repro.core.clauses import Target
from repro.core.pragma import parse_program
from repro.errors import ReproError
from repro.lintserve.cache import ResultCache
from repro.lintserve.merge import (
    assemble_file_report,
    serialize_diagnostics,
    serialize_structure,
)

__all__ = ["LintServiceStats", "UnitSpec", "lint_sources", "pool_map",
           "run_unit"]


@dataclass(frozen=True)
class UnitSpec:
    """One shardable quantum of lint work (picklable, hashable)."""

    path: str            # display path (not part of the cache key)
    kind: str            # "structure" | "verify" | "advise"
    target: str          # target value for verify units, else ""
    source: str          # the file's text (workers never touch disk)
    nprocs: int
    extra_vars: tuple[tuple[str, int], ...]
    swept: tuple[str, ...]

    @property
    def name(self) -> str:
        """The unit's slot in its file's result map."""
        return f"verify:{self.target}" if self.kind == "verify" \
            else self.kind

    def payload(self) -> tuple:
        """The cache-key payload: every input the unit depends on.

        The path is deliberately excluded — a renamed-but-unchanged
        file must hit. ``swept`` participates only where it matters
        (the advisor picks its target from the sweep).
        """
        if self.kind == "verify":
            return (self.source, self.nprocs, self.extra_vars,
                    self.target)
        if self.kind == "advise":
            return (self.source, self.nprocs, self.extra_vars,
                    self.swept)
        return (self.source, self.nprocs, self.extra_vars)


def run_unit(spec: UnitSpec) -> dict:
    """Execute one unit (in a pool worker or inline) → result dict.

    A parse failure is a *result*, not an exception — every unit of a
    broken file reports the same ``parse_error`` and the merge turns
    it into the CI000 report, exactly like the sequential CLI.
    """
    t0 = time.perf_counter()
    extra_vars = dict(spec.extra_vars) or None
    try:
        program = parse_program(spec.source)
    except ReproError as exc:
        line = getattr(exc, "line", None) or 0
        return {"parse_error": {"line": line, "message": str(exc)},
                "wall_s": time.perf_counter() - t0}
    swept = [Target.parse(t) for t in spec.swept]
    out: dict
    if spec.kind == "structure":
        report = structure_report(program, spec.nprocs, extra_vars,
                                  spec.path, targets=swept)
        out = serialize_structure(report)
    elif spec.kind == "verify":
        diags = verify_target_diagnostics(
            program, spec.nprocs, extra_vars, Target.parse(spec.target))
        out = {"diagnostics": serialize_diagnostics(diags)}
    elif spec.kind == "advise":
        diags = advise_diagnostics(program, spec.nprocs, extra_vars,
                                   swept)
        out = {"diagnostics": serialize_diagnostics(diags)}
    else:
        raise ValueError(f"unknown unit kind {spec.kind!r}")
    out["wall_s"] = time.perf_counter() - t0
    return out


def file_units(path: str, source: str, nprocs: int,
               extra_vars: dict[str, int] | None,
               swept: Sequence[Target],
               advise: bool) -> list[UnitSpec]:
    """The unit decomposition of one file, in merge order."""
    vars_t = tuple(sorted((extra_vars or {}).items()))
    swept_t = tuple(t.value for t in swept)
    units = [UnitSpec(path, "structure", "", source, nprocs, vars_t,
                      swept_t)]
    units.extend(UnitSpec(path, "verify", value, source, nprocs,
                          vars_t, swept_t) for value in swept_t)
    if advise:
        units.append(UnitSpec(path, "advise", "", source, nprocs,
                              vars_t, swept_t))
    return units


@dataclass
class LintServiceStats:
    """One run's scheduling/memoization counters (``--stats-out``)."""

    files: int = 0
    units_total: int = 0
    units_from_cache: int = 0
    units_executed: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    #: Sum of executed units' own wall times (the work the pool did).
    executed_wall_s: float = 0.0
    #: Per executed unit: (kind, wall seconds) — bench fodder.
    unit_walls: list = field(default_factory=list)
    cache: dict | None = None

    @property
    def hit_rate(self) -> float:
        """Fraction of units served from the cache."""
        return (self.units_from_cache / self.units_total
                if self.units_total else 0.0)

    def as_dict(self) -> dict:
        """JSON form for ``--stats-out`` and daemon responses."""
        out = {
            "files": self.files,
            "units_total": self.units_total,
            "units_from_cache": self.units_from_cache,
            "units_executed": self.units_executed,
            "hit_rate": round(self.hit_rate, 4),
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "executed_wall_s": round(self.executed_wall_s, 6),
        }
        if self.cache is not None:
            out["cache"] = self.cache
        return out


def pool_map(fn: Callable, items: Sequence, jobs: int,
             executor: Executor | None = None) -> list:
    """Order-preserving parallel map with sequential fallback.

    ``jobs <= 1`` (and the empty/singleton case) runs inline — no pool
    spin-up for work that cannot amortize it. A caller-owned
    ``executor`` (the daemon's warm pool) is reused, not shut down.
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // (jobs * 4))
    if executor is not None:
        return list(executor.map(fn, items, chunksize=chunksize))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def lint_sources(sources: Sequence[tuple[str, str]], *,
                 nprocs: int = 8,
                 extra_vars: dict[str, int] | None = None,
                 targets: Iterable[Target] | None = None,
                 advise: bool = False,
                 jobs: int = 1,
                 cache: ResultCache | None = None,
                 executor: Executor | None = None
                 ) -> tuple[list[LintReport], LintServiceStats]:
    """Lint ``(path, source)`` pairs through the sharded/memoized path.

    Returns the reports in input order plus the run's scheduling
    stats. With ``cache`` set, units hit the on-disk store before the
    pool; with ``jobs > 1`` the remaining units fan over a
    ``ProcessPoolExecutor`` (or the caller's warm ``executor``).
    """
    t_start = time.perf_counter()
    swept = list(targets) if targets else list(Target)
    stats = LintServiceStats(files=len(sources), jobs=max(1, jobs))

    units: list[UnitSpec] = []
    for path, source in sources:
        units.extend(file_units(path, source, nprocs, extra_vars,
                                swept, advise))
    stats.units_total = len(units)

    results: dict[UnitSpec, dict] = {}
    pending: list[UnitSpec] = []
    keys: dict[UnitSpec, str] = {}
    for spec in units:
        if cache is not None:
            key = cache.key(spec.kind, spec.payload())
            keys[spec] = key
            hit = cache.get(key)
            if hit is not None:
                results[spec] = hit
                continue
        pending.append(spec)

    stats.units_from_cache = len(results)
    stats.units_executed = len(pending)
    for spec, result in zip(pending,
                            pool_map(run_unit, pending, jobs, executor)):
        results[spec] = result
        stats.executed_wall_s += result.get("wall_s", 0.0)
        stats.unit_walls.append((spec.kind, result.get("wall_s", 0.0)))
        if cache is not None:
            cache.put(keys[spec], result)

    reports: list[LintReport] = []
    for path, source in sources:
        file_specs = file_units(path, source, nprocs, extra_vars,
                                swept, advise)
        named = {spec.name: results[spec] for spec in file_specs}
        reports.append(
            assemble_file_report(path, named, swept, advise))
    stats.wall_s = time.perf_counter() - t_start
    if cache is not None:
        stats.cache = cache.stats()
    return reports, stats
