"""Deterministic merge of sharded unit results into lint reports.

The scheduler fans a file's analysis into independent units
(structure, one verifier sweep per lowering target, optionally the
advisor); workers return each unit as a JSON-serializable dict so
results can cross process boundaries and live in the on-disk cache
(:mod:`repro.lintserve.cache`). This module owns both directions:

* :func:`serialize_*` — unit output → plain dict (what workers return
  and the cache stores);
* :func:`assemble_file_report` — the dicts of one file's units →
  :class:`~repro.core.analysis.lint.LintReport`, using the *same*
  collapse/suppress/sort functions the sequential
  :func:`~repro.core.analysis.lint.lint_program` path runs.

Because diagnostics round-trip exactly
(:func:`~repro.core.analysis.codes.diagnostic_from_dict`) and the
merge functions are shared, a report assembled from sharded (or
cached) units renders byte-identically to the sequential path —
``tests/lintserve/test_determinism.py`` pins this over the whole
examples tree in JSON and SARIF.
"""

from __future__ import annotations

from typing import Any

from repro.core.analysis.codes import (
    Diagnostic,
    diagnostic_from_dict,
    make,
)
from repro.core.analysis.lint import (
    LintReport,
    collapse_across_targets,
    finalize_report,
)
from repro.core.clauses import Target

__all__ = [
    "assemble_file_report",
    "serialize_diagnostics",
    "serialize_structure",
]


def serialize_diagnostics(diags: list[Diagnostic]) -> list[dict]:
    """Diagnostics → JSON-ready dict list (exact round trip)."""
    return [d.as_dict() for d in diags]


def serialize_structure(report: LintReport) -> dict:
    """The structure unit's report fields → JSON-ready dict."""
    return {
        "n_directives": report.n_directives,
        "n_regions": report.n_regions,
        "sync_calls": report.sync_calls,
        "sync_reduction": report.sync_reduction,
        "patterns": {str(line): name
                     for line, name in report.patterns.items()},
        "diagnostics": serialize_diagnostics(report.diagnostics),
    }


def _deserialize_diags(entries: Any) -> list[Diagnostic]:
    return [diagnostic_from_dict(e) for e in entries]


def parse_error_report(path: str, error: dict) -> LintReport:
    """The report for a file the parser rejected (CI000).

    Mirrors the sequential CLI path exactly: a bare report (default
    target list) carrying one CI000 diagnostic at the parser's line.
    """
    report = LintReport(path=path)
    report.diagnostics.append(make(
        "CI000", int(error.get("line", 0)), str(error["message"])))
    return report


def assemble_file_report(path: str, units: dict[str, dict],
                         swept: list[Target],
                         advise: bool) -> LintReport:
    """Merge one file's unit results into its final report.

    ``units`` maps unit names — ``"structure"``,
    ``"verify:<target>"``, ``"advise"`` — to worker/cache dicts. Any
    unit reporting a parse error collapses the file to the CI000
    report (every unit parses the same source, so all agree).
    """
    structure = units["structure"]
    if "parse_error" in structure:
        return parse_error_report(path, structure["parse_error"])

    swept_values = [t.value for t in swept]
    report = LintReport(path=path, targets=list(swept_values))
    report.n_directives = int(structure["n_directives"])
    report.n_regions = int(structure["n_regions"])
    report.sync_calls = int(structure["sync_calls"])
    report.sync_reduction = float(structure["sync_reduction"])
    report.patterns = {int(line): str(name)
                       for line, name in structure["patterns"].items()}
    report.diagnostics = _deserialize_diags(structure["diagnostics"])

    per_target: dict[str, list[Diagnostic]] = {}
    for value in swept_values:
        unit = units[f"verify:{value}"]
        per_target[value] = _deserialize_diags(unit["diagnostics"])
    collapsed = collapse_across_targets(per_target, swept_values)

    advisories: list[Diagnostic] = []
    if advise:
        advisories = _deserialize_diags(units["advise"]["diagnostics"])
    return finalize_report(report, collapsed, advisories)
