"""Hub patterns: fan-out (root scatters rows) and fan-in (root collects).

These are the WL-LSMS privileged-process patterns (Fig. 2): the
privileged rank distributes per-member payloads and later collects
results, expressed as one directive per peer inside a region so the
root's synchronization consolidates.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.core.ir import ClauseExprs
from repro.sim.process import Env

NAME_OUT = "fanout"
NAME_IN = "fanin"


def fanout_clauses() -> ClauseExprs:
    """Static clause set of one (root, peer) instance."""
    return ClauseExprs(
        exprs={"sender": "root", "receiver": "peer",
               "sendwhen": "rank==root", "receivewhen": "rank==peer"},
        sbuf=["&data[peer]"], rbuf=["mine"],
    )


def run_fanout_directive(env: Env, root: int, data: np.ndarray | None,
                         mine: np.ndarray) -> None:
    """Root sends row ``p`` of ``data`` to rank ``p``; others receive."""
    with comm_parameters(env, sender=root,
                         place_sync="END_PARAM_REGION"):
        for peer in range(env.size):
            if peer == root:
                continue
            row = data[peer] if env.rank == root else mine
            with comm_p2p(env, receiver=peer,
                          sendwhen=env.rank == root,
                          receivewhen=env.rank == peer,
                          sbuf=np.ascontiguousarray(row), rbuf=mine):
                pass
    if env.rank == root:
        mine[...] = data[root]


def run_fanout_mpi(comm: mpi.Comm, root: int, data: np.ndarray | None,
                   mine: np.ndarray) -> None:
    """Hand-written fan-out with per-request waits."""
    if comm.rank == root:
        reqs = [comm.Isend(np.ascontiguousarray(data[p]), dest=p, tag=105)
                for p in range(comm.size) if p != root]
        for r in reqs:
            comm.Wait(r)
        mine[...] = data[root]
    else:
        comm.Recv(mine, source=root, tag=105)


def run_fanin_directive(env: Env, root: int, mine: np.ndarray,
                        collected: np.ndarray | None) -> None:
    """Every rank sends its buffer to the root's row ``rank``."""
    with comm_parameters(env, receiver=root,
                         place_sync="END_PARAM_REGION"):
        for peer in range(env.size):
            if peer == root:
                continue
            row = collected[peer] if env.rank == root else mine
            with comm_p2p(env, sender=peer,
                          sendwhen=env.rank == peer,
                          receivewhen=env.rank == root,
                          sbuf=mine, rbuf=np.ascontiguousarray(row)):
                pass
    if env.rank == root:
        collected[root][...] = mine


def run_fanin_mpi(comm: mpi.Comm, root: int, mine: np.ndarray,
                  collected: np.ndarray | None) -> None:
    """Hand-written fan-in with per-request waits."""
    if comm.rank == root:
        reqs = [comm.Irecv(collected[p], source=p, tag=106)
                for p in range(comm.size) if p != root]
        for r in reqs:
            comm.Wait(r)
        collected[root][...] = mine
    else:
        comm.Send(mine, dest=root, tag=106)
