"""Pattern registry: name -> spec with both implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.patterns import (
    butterfly,
    evenodd,
    fan,
    halo,
    halo2d,
    pipeline,
    ring,
)


def power_of_two(n: int) -> bool:
    """True when ``n`` is a power of two (butterfly's world constraint)."""
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class PatternSpec:
    """One recurring pattern with its three faces."""

    name: str
    #: Static clause sets for the dataflow analysis (list: some
    #: patterns are multi-directive).
    clauses: Callable[[], Any]
    #: Directive-based runtime implementation.
    run_directive: Callable[..., None]
    #: Hand-written MPI implementation.
    run_mpi: Callable[..., None]
    #: The classification the dataflow analysis should produce.
    expected_class: str
    #: World sizes the pattern is defined for (``None`` = any). The
    #: recovery runtime's *shrink* policy consults this when re-mapping
    #: a pattern over the survivor set: partner functions re-evaluate
    #: at the new ``env.size``, but only at sizes the pattern admits
    #: (e.g. butterfly needs a power of two).
    valid_world: Callable[[int], bool] | None = None


PATTERNS: dict[str, PatternSpec] = {
    ring.NAME: PatternSpec(
        ring.NAME, ring.clauses, ring.run_directive, ring.run_mpi,
        expected_class="ring"),
    evenodd.NAME: PatternSpec(
        evenodd.NAME, evenodd.clauses, evenodd.run_directive,
        evenodd.run_mpi, expected_class="pairwise"),
    halo.NAME: PatternSpec(
        halo.NAME, lambda: halo.clauses()[0], halo.run_directive,
        halo.run_mpi, expected_class="shift"),
    pipeline.NAME: PatternSpec(
        pipeline.NAME, pipeline.clauses, pipeline.run_directive,
        pipeline.run_mpi, expected_class="shift"),
    fan.NAME_OUT: PatternSpec(
        fan.NAME_OUT, fan.fanout_clauses, fan.run_fanout_directive,
        fan.run_fanout_mpi, expected_class="fan-out"),
    fan.NAME_IN: PatternSpec(
        fan.NAME_IN, fan.fanout_clauses, fan.run_fanin_directive,
        fan.run_fanin_mpi, expected_class="fan-in"),
    halo2d.NAME: PatternSpec(
        halo2d.NAME, lambda: halo.clauses()[0], halo2d.run_directive,
        halo2d.run_mpi, expected_class="shift"),
    butterfly.NAME: PatternSpec(
        butterfly.NAME, lambda: None, butterfly.run_directive,
        butterfly.run_mpi, expected_class="pairwise",
        valid_world=power_of_two),
}


def valid_world_of(name: str) -> Callable[[int], bool] | None:
    """The world-size predicate one pattern imposes on shrink, if any.

    Suitable directly as :attr:`repro.recovery.RecoveryConfig.
    valid_world`; unknown names (patterns outside the registry, e.g.
    the fuzzer's target-parameterized variants) fall back to ``None``
    unless they share a registered pattern's name.
    """
    spec = PATTERNS.get(name)
    return spec.valid_world if spec is not None else None


def get_pattern(name: str) -> PatternSpec:
    """Look up a pattern spec by name."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; available: "
            f"{sorted(PATTERNS)}") from None
