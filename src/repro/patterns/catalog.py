"""Pattern registry: name -> spec with both implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.patterns import (
    butterfly,
    evenodd,
    fan,
    halo,
    halo2d,
    pipeline,
    ring,
)


@dataclass(frozen=True)
class PatternSpec:
    """One recurring pattern with its three faces."""

    name: str
    #: Static clause sets for the dataflow analysis (list: some
    #: patterns are multi-directive).
    clauses: Callable[[], Any]
    #: Directive-based runtime implementation.
    run_directive: Callable[..., None]
    #: Hand-written MPI implementation.
    run_mpi: Callable[..., None]
    #: The classification the dataflow analysis should produce.
    expected_class: str


PATTERNS: dict[str, PatternSpec] = {
    ring.NAME: PatternSpec(
        ring.NAME, ring.clauses, ring.run_directive, ring.run_mpi,
        expected_class="ring"),
    evenodd.NAME: PatternSpec(
        evenodd.NAME, evenodd.clauses, evenodd.run_directive,
        evenodd.run_mpi, expected_class="pairwise"),
    halo.NAME: PatternSpec(
        halo.NAME, lambda: halo.clauses()[0], halo.run_directive,
        halo.run_mpi, expected_class="shift"),
    pipeline.NAME: PatternSpec(
        pipeline.NAME, pipeline.clauses, pipeline.run_directive,
        pipeline.run_mpi, expected_class="shift"),
    fan.NAME_OUT: PatternSpec(
        fan.NAME_OUT, fan.fanout_clauses, fan.run_fanout_directive,
        fan.run_fanout_mpi, expected_class="fan-out"),
    fan.NAME_IN: PatternSpec(
        fan.NAME_IN, fan.fanout_clauses, fan.run_fanin_directive,
        fan.run_fanin_mpi, expected_class="fan-in"),
    halo2d.NAME: PatternSpec(
        halo2d.NAME, lambda: halo.clauses()[0], halo2d.run_directive,
        halo2d.run_mpi, expected_class="shift"),
    butterfly.NAME: PatternSpec(
        butterfly.NAME, lambda: None, butterfly.run_directive,
        butterfly.run_mpi, expected_class="pairwise"),
}


def get_pattern(name: str) -> PatternSpec:
    """Look up a pattern spec by name."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; available: "
            f"{sorted(PATTERNS)}") from None
