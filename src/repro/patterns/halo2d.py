"""2-D nearest-neighbour halo exchange on a process grid.

The four-direction generalization of :mod:`repro.patterns.halo`: ranks
form a ``py x px`` Cartesian grid and exchange edge strips with up to
four neighbours — the dominant pattern of the structured-grid codes
the paper's pattern studies characterize. All eight directives (four
directions, send+receive roles) sit in a single ``comm_parameters``
region: one consolidated synchronization per rank per exchange.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.sim.process import Env

NAME = "halo2d"


def grid_shape(nprocs: int) -> tuple[int, int]:
    """The most-square ``(py, px)`` factorization of ``nprocs``."""
    py = int(np.sqrt(nprocs))
    while nprocs % py != 0:
        py -= 1
    return py, nprocs // py


def neighbours(rank: int, py: int, px: int) -> dict[str, int | None]:
    """North/south/west/east neighbour ranks (None at the boundary)."""
    y, x = divmod(rank, px)
    return {
        "north": rank - px if y > 0 else None,
        "south": rank + px if y < py - 1 else None,
        "west": rank - 1 if x > 0 else None,
        "east": rank + 1 if x < px - 1 else None,
    }


class HaloBuffers:
    """Per-rank edge and halo strips for an ``ny x nx`` local block."""

    def __init__(self, ny: int, nx: int):
        self.ny, self.nx = ny, nx
        self.halo = {
            "north": np.zeros(nx), "south": np.zeros(nx),
            "west": np.zeros(ny), "east": np.zeros(ny),
        }

    def edges(self, block: np.ndarray) -> dict[str, np.ndarray]:
        """Contiguous copies/views of the block's four edge strips."""
        return {
            "north": np.ascontiguousarray(block[0, :]),
            "south": np.ascontiguousarray(block[-1, :]),
            "west": np.ascontiguousarray(block[:, 0]),
            "east": np.ascontiguousarray(block[:, -1]),
        }


_OPPOSITE = {"north": "south", "south": "north",
             "west": "east", "east": "west"}


def run_directive(env: Env, block: np.ndarray, bufs: HaloBuffers,
                  py: int, px: int) -> None:
    """Exchange all four halos with one consolidated sync."""
    nbr = neighbours(env.rank, py, px)
    edges = bufs.edges(block)
    with comm_parameters(env):
        for direction in ("north", "south", "west", "east"):
            peer = nbr[direction]
            back = _OPPOSITE[direction]
            # I send my `direction` edge to that neighbour; I receive
            # into my `direction` halo what that neighbour sends back
            # from its `back` edge.
            with comm_p2p(env,
                          sender=peer if peer is not None else env.rank,
                          receiver=peer if peer is not None
                          else env.rank,
                          sendwhen=peer is not None,
                          receivewhen=peer is not None,
                          sbuf=edges[direction],
                          rbuf=bufs.halo[direction]):
                pass


def run_mpi(comm: mpi.Comm, block: np.ndarray, bufs: HaloBuffers,
            py: int, px: int) -> None:
    """Hand-written equivalent with explicit request management."""
    nbr = neighbours(comm.rank, py, px)
    edges = bufs.edges(block)
    tags = {"north": 210, "south": 211, "west": 212, "east": 213}
    reqs = []
    for direction in ("north", "south", "west", "east"):
        peer = nbr[direction]
        if peer is None:
            continue
        reqs.append(comm.Irecv(bufs.halo[direction], source=peer,
                               tag=tags[_OPPOSITE[direction]]))
        reqs.append(comm.Isend(edges[direction], dest=peer,
                               tag=tags[direction]))
    for r in reqs:
        comm.Wait(r)
