"""Butterfly (recursive doubling): log-round pairwise exchange.

Each of ``log2(P)`` rounds pairs rank ``r`` with ``r XOR 2^k`` and
exchanges the blocks accumulated so far — the structure under
allgather/allreduce and FFT transposes. Demonstrates directives
composing into a collective *algorithm* (the bridge to the paper's
future-work collective intent): each round is one ``comm_parameters``
region whose two-sided exchange synchronizes once.

Requires a power-of-two process count.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.sim.process import Env

NAME = "butterfly"


def _check_power_of_two(size: int) -> int:
    rounds = size.bit_length() - 1
    if 1 << rounds != size:
        raise ValueError(
            f"butterfly needs a power-of-two process count, got {size}")
    return rounds


def run_directive(env: Env, contribution: float) -> np.ndarray:
    """Allgather by recursive doubling; returns the assembled vector."""
    size, rank = env.size, env.rank
    rounds = _check_power_of_two(size)
    data = np.zeros(size)
    data[rank] = contribution
    owned_lo, owned_n = rank, 1
    for k in range(rounds):
        partner = rank ^ (1 << k)
        # The owned block is [lo, lo+n); after the exchange both sides
        # own the union, aligned to the lower index.
        send_block = np.ascontiguousarray(data[owned_lo:owned_lo
                                               + owned_n])
        their_lo = owned_lo ^ (1 << k)
        recv_block = np.zeros(owned_n)
        with comm_parameters(env, sender=partner, receiver=partner):
            with comm_p2p(env, sbuf=send_block, rbuf=recv_block):
                pass
        data[their_lo:their_lo + owned_n] = recv_block
        owned_lo = min(owned_lo, their_lo)
        owned_n *= 2
    return data


def run_mpi(comm: mpi.Comm, contribution: float) -> np.ndarray:
    """Hand-written equivalent using ``Sendrecv`` per round."""
    size, rank = comm.size, comm.rank
    rounds = _check_power_of_two(size)
    data = np.zeros(size)
    data[rank] = contribution
    owned_lo, owned_n = rank, 1
    for k in range(rounds):
        partner = rank ^ (1 << k)
        send_block = np.ascontiguousarray(data[owned_lo:owned_lo
                                               + owned_n])
        their_lo = owned_lo ^ (1 << k)
        recv_block = np.zeros(owned_n)
        comm.Sendrecv(send_block, dest=partner, recvbuf=recv_block,
                      source=partner, sendtag=220 + k, recvtag=220 + k)
        data[their_lo:their_lo + owned_n] = recv_block
        owned_lo = min(owned_lo, their_lo)
        owned_n *= 2
    return data
