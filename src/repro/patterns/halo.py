"""Nearest-neighbour halo exchanges (1-D decomposition).

The workhorse of stencil codes: each rank exchanges boundary slabs
with both neighbours. Expressed as two directives inside one
``comm_parameters`` region, whose synchronization consolidates into a
single call — the structured-region payoff of Section III-A.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.core.ir import ClauseExprs
from repro.sim.process import Env

NAME = "halo1d"


def clauses() -> list[ClauseExprs]:
    """The two directives' static clause sets (left-going, right-going)."""
    right = ClauseExprs(
        exprs={"sender": "rank-1", "receiver": "rank+1",
               "sendwhen": "rank<nprocs-1", "receivewhen": "rank>0"},
        sbuf=["right_edge"], rbuf=["left_halo"],
    )
    left = ClauseExprs(
        exprs={"sender": "rank+1", "receiver": "rank-1",
               "sendwhen": "rank>0", "receivewhen": "rank<nprocs-1"},
        sbuf=["left_edge"], rbuf=["right_halo"],
    )
    return [right, left]


def run_directive(env: Env, interior: np.ndarray,
                  left_halo: np.ndarray, right_halo: np.ndarray) -> None:
    """Exchange edges with both neighbours, one consolidated sync."""
    rank, size = env.rank, env.size
    right_edge = np.ascontiguousarray(interior[-left_halo.size:])
    left_edge = np.ascontiguousarray(interior[:right_halo.size])
    with comm_parameters(env):
        with comm_p2p(env,
                      sender=max(rank - 1, 0),
                      receiver=min(rank + 1, size - 1),
                      sendwhen=rank < size - 1, receivewhen=rank > 0,
                      sbuf=right_edge, rbuf=left_halo):
            pass
        with comm_p2p(env,
                      sender=min(rank + 1, size - 1),
                      receiver=max(rank - 1, 0),
                      sendwhen=rank > 0, receivewhen=rank < size - 1,
                      sbuf=left_edge, rbuf=right_halo):
            pass


def run_mpi(comm: mpi.Comm, interior: np.ndarray,
            left_halo: np.ndarray, right_halo: np.ndarray) -> None:
    """Hand-written halo exchange with per-request waits."""
    rank, size = comm.rank, comm.size
    right_edge = np.ascontiguousarray(interior[-left_halo.size:])
    left_edge = np.ascontiguousarray(interior[:right_halo.size])
    reqs = []
    if rank > 0:
        reqs.append(comm.Irecv(left_halo, source=rank - 1, tag=103))
        reqs.append(comm.Isend(left_edge, dest=rank - 1, tag=104))
    if rank < size - 1:
        reqs.append(comm.Irecv(right_halo, source=rank + 1, tag=104))
        reqs.append(comm.Isend(right_edge, dest=rank + 1, tag=103))
    for r in reqs:
        comm.Wait(r)
