"""Ring exchange: every rank sends to ``(rank+1) % nprocs``.

The paper's Listing 1 pattern. Each rank contributes its buffer and
receives its predecessor's.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p
from repro.core.ir import ClauseExprs
from repro.sim.process import Env

NAME = "ring"


def clauses() -> ClauseExprs:
    """Static clause set for the dataflow analysis."""
    return ClauseExprs(
        exprs={"sender": "(rank-1+nprocs)%nprocs",
               "receiver": "(rank+1)%nprocs"},
        sbuf=["buf1"], rbuf=["buf2"],
    )


def run_directive(env: Env, out: np.ndarray, inb: np.ndarray) -> None:
    """Listing 1: ring with only the required clauses."""
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    with comm_p2p(env, sender=prev, receiver=nxt, sbuf=out, rbuf=inb):
        pass


def run_mpi(comm: mpi.Comm, out: np.ndarray, inb: np.ndarray) -> None:
    """Hand-written equivalent: Irecv + Isend + per-request waits."""
    prev = (comm.rank - 1 + comm.size) % comm.size
    nxt = (comm.rank + 1) % comm.size
    rreq = comm.Irecv(inb, source=prev, tag=101)
    sreq = comm.Isend(out, dest=nxt, tag=101)
    comm.Wait(sreq)
    comm.Wait(rreq)
