"""Pipeline: element-wise forwarding through a rank chain.

The paper's Listing 3 shape: a ``comm_parameters`` region with
``max_comm_iter`` wrapping a loop of per-element ``comm_p2p``
directives, all synchronized once at region end.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.core.ir import ClauseExprs
from repro.sim.process import Env

NAME = "pipeline"


def clauses() -> ClauseExprs:
    """Static clause set for the dataflow analysis."""
    return ClauseExprs(
        exprs={"sender": "rank-1", "receiver": "rank+1",
               "sendwhen": "rank<nprocs-1", "receivewhen": "rank>0",
               "count": "1", "max_comm_iter": "n"},
        sbuf=["&buf1[p]"], rbuf=["&buf2[p]"],
    )


def run_directive(env: Env, out: np.ndarray, inb: np.ndarray) -> None:
    """Listing 3: per-element directives, one region sync."""
    rank, size = env.rank, env.size
    n = out.size
    with comm_parameters(env,
                         sender=max(rank - 1, 0),
                         receiver=min(rank + 1, size - 1),
                         sendwhen=rank < size - 1,
                         receivewhen=rank > 0,
                         count=1, max_comm_iter=n,
                         place_sync="END_PARAM_REGION"):
        for p in range(n):
            with comm_p2p(env, sbuf=out[p:p + 1], rbuf=inb[p:p + 1]):
                pass


def run_mpi(comm: mpi.Comm, out: np.ndarray, inb: np.ndarray) -> None:
    """Hand-written equivalent with per-request waits."""
    rank, size = comm.rank, comm.size
    n = out.size
    reqs = []
    if rank > 0:
        for p in range(n):
            reqs.append(comm.Irecv(inb[p:p + 1], source=rank - 1, tag=p))
    if rank < size - 1:
        for p in range(n):
            reqs.append(comm.Isend(out[p:p + 1], dest=rank + 1, tag=p))
    for r in reqs:
        comm.Wait(r)
