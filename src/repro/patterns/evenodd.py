"""Even-to-odd pairing: even ranks send to the next odd rank.

The paper's Listing 2 pattern, exercising ``sendwhen``/``receivewhen``.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core import comm_p2p
from repro.core.ir import ClauseExprs
from repro.sim.process import Env

NAME = "evenodd"


def clauses() -> ClauseExprs:
    """Static clause set for the dataflow analysis."""
    return ClauseExprs(
        exprs={"sender": "rank-1", "receiver": "rank+1",
               "sendwhen": "rank%2==0", "receivewhen": "rank%2==1"},
        sbuf=["buf1"], rbuf=["buf2"],
    )


def run_directive(env: Env, out: np.ndarray, inb: np.ndarray) -> None:
    """Listing 2: evens send to the next odd rank."""
    # The boundary guard keeps the last even rank of an odd-sized world
    # from addressing a non-existent receiver (the paper's example
    # implicitly assumes an even process count).
    with comm_p2p(env, sbuf=out, rbuf=inb,
                  sender=env.rank - 1,
                  receiver=min(env.rank + 1, env.size - 1),
                  sendwhen=env.rank % 2 == 0 and env.rank + 1 < env.size,
                  receivewhen=env.rank % 2 == 1):
        pass


def run_mpi(comm: mpi.Comm, out: np.ndarray, inb: np.ndarray) -> None:
    """Hand-written equivalent of the even->odd pairing."""
    if comm.rank % 2 == 0:
        if comm.rank + 1 < comm.size:
            comm.Send(out, dest=comm.rank + 1, tag=102)
    else:
        comm.Recv(inb, source=comm.rank - 1, tag=102)
