"""Recurring point-to-point communication patterns.

The directive interface was designed from the patterns that recur in
scientific applications (paper references [1] Vetter & Mueller,
[2] Kim & Lilja, [3] Riesen): ring/shift exchanges, paired
neighbours, halo exchanges, pipelines and hub (fan-in/fan-out)
transfers. Each pattern here exists in two executable forms —
hand-written MPI and the directive expression — plus the static clause
set the dataflow analysis consumes. Tests assert the two forms compute
identical data, and the benchmark harness compares their modelled
cost.
"""

from repro.patterns.catalog import PATTERNS, PatternSpec, get_pattern

__all__ = ["PATTERNS", "PatternSpec", "get_pattern"]
