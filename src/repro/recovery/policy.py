"""Recovery policies: bounded retry, failure detection, shrink/respawn.

The paper's thesis is that once communication *intent* is abstracted,
the runtime — not the application — owns delivery semantics. This
module declares what the recovery runtime is allowed to do on the
application's behalf:

* :class:`RetryPolicy` — reliable-transport semantics for one target:
  bounded retransmission with exponential backoff and deterministic
  jitter, all in virtual time via the netmodel's
  :meth:`~repro.netmodel.base.TransportParams.retransmit_cost`.
* :class:`RecoveryConfig` — the whole fault-tolerance contract of one
  run: per-target retry policies, the failure detector's deadline, the
  ULFM-style communicator-recovery policy (``shrink`` or ``respawn``),
  and coordinated checkpointing at sync boundaries.
* :class:`RecoveryStats` / :class:`RecoveryEpisode` — the structured
  account of what recovery actually did, surfaced on
  :attr:`repro.sim.engine.RunResult.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.base import TransportParams

#: The two ULFM-style communicator-recovery policies.
SHRINK = "shrink"
RESPAWN = "respawn"
POLICIES = (SHRINK, RESPAWN)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry delivery semantics for one transport target.

    A dropped message waits out a retransmission timeout and is resent;
    attempt ``k`` (0-based) waits ``rto * backoff**k``, optionally
    stretched by up to ``jitter_frac`` of itself (a deterministic draw
    from the message's channel stream — jitter decorrelates retry
    storms without breaking replay). Retries are *bounded*: the chaos
    soak asserts no message ever needs more than ``max_retries``.
    """

    #: Hard cap on retransmissions per message.
    max_retries: int = 4
    #: Base retransmission timeout in seconds; ``None`` uses the
    #: transport's own ``retransmit_rto``.
    rto: float | None = None
    #: Exponential backoff multiplier between attempts.
    backoff: float = 2.0
    #: Each attempt's timeout is stretched by up to this fraction.
    jitter_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.rto is not None and self.rto < 0:
            raise ValueError("rto must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def rto_for(self, tp: "TransportParams") -> float:
        """The base retransmission timeout against one transport."""
        return self.rto if self.rto is not None else tp.retransmit_rto

    def attempt_cost(self, tp: "TransportParams", nbytes: int,
                     attempt: int, rng) -> float:
        """Virtual seconds one retry attempt adds to delivery.

        Timeout (backed off, jittered) plus a second wire crossing —
        the shape of :meth:`TransportParams.retransmit_cost`, with the
        timeout portion owned by this policy.
        """
        timeout = self.rto_for(tp) * (self.backoff ** attempt)
        timeout *= 1.0 + self.jitter_frac * float(rng.random())
        return timeout + tp.wire_time(nbytes)

    def worst_case_delay(self, tp: "TransportParams", nbytes: int) -> float:
        """Upper bound on total retry delay for one message."""
        total = 0.0
        for attempt in range(self.max_retries):
            timeout = self.rto_for(tp) * (self.backoff ** attempt)
            total += timeout * (1.0 + self.jitter_frac) + tp.wire_time(nbytes)
        return total


@dataclass(frozen=True)
class RecoveryConfig:
    """The fault-tolerance contract of one recovered run."""

    #: Communicator-recovery policy: ``"shrink"`` re-maps the program
    #: over the survivor set (partner functions re-evaluate at the new
    #: world size); ``"respawn"`` replaces dead ranks with fresh spares
    #: that rejoin with state transferred from the checkpoint store.
    policy: str = RESPAWN
    #: Default bounded-retry policy for every transport.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-transport-kind overrides (``"mpi2s"``, ``"mpi1s"``,
    #: ``"shmem"``); targets not listed use ``retry``.
    retry_by_target: dict[str, RetryPolicy] = field(default_factory=dict)
    #: Failure detector's deadline: virtual seconds a survivor waits
    #: before declaring a silent peer dead.
    detect_deadline: float = 1e-3
    #: Take coordinated checkpoints of registered state at sync
    #: boundaries (the verifier's happens-before graphs prove the cut
    #: is consistent there: the consolidated sync is a quiescent point
    #: for everything it covers).
    checkpoint: bool = True
    #: Modelled virtual cost of one engine restart (tearing down and
    #: re-establishing the world).
    restart_cost: float = 1e-3
    #: Give up after this many recovery episodes in one run.
    max_recoveries: int = 4
    #: Smallest world size ``shrink`` may fall to.
    min_world: int = 1
    #: Optional validity predicate for shrink world sizes (e.g.
    #: butterfly needs a power of two); shrink picks the largest valid
    #: size not exceeding the survivor count.
    valid_world: Callable[[int], bool] | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.detect_deadline < 0:
            raise ValueError("detect_deadline must be >= 0")
        if self.restart_cost < 0:
            raise ValueError("restart_cost must be >= 0")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.min_world < 1:
            raise ValueError("min_world must be >= 1")

    def retry_for(self, kind: str) -> RetryPolicy:
        """The retry policy governing one transport kind."""
        return self.retry_by_target.get(kind, self.retry)

    def shrink_world(self, survivors: int) -> int:
        """Largest valid world size not exceeding ``survivors``."""
        n = survivors
        while n >= self.min_world:
            if self.valid_world is None or self.valid_world(n):
                return n
            n -= 1
        return 0


@dataclass
class RecoveryEpisode:
    """One detect → recover cycle, for reports and the Chrome trace."""

    #: 1-based episode number within the run.
    index: int
    #: Policy applied (``"shrink"`` / ``"respawn"`` / ``"degraded"``).
    policy: str
    #: Ranks lost in this episode (attempt-local ids).
    failed_ranks: tuple[int, ...]
    #: Virtual makespan of the aborted attempt.
    abort_time: float
    #: Consistent-cut id the restart resumed from (-1 = from scratch).
    restore_cut: int
    #: Virtual time of that cut (0.0 when restarting from scratch).
    restore_time: float
    #: World size after recovery.
    world_after: int
    #: Virtual seconds this episode cost (lost work + restart).
    recovery_s: float = 0.0


@dataclass
class RecoveryStats:
    """What the recovery runtime did across one whole recovered run.

    Mirrors the :class:`repro.sim.stats.SimStats` recovery counters but
    aggregated across every attempt, plus the per-episode log.
    """

    failures_detected: int = 0
    retries: int = 0
    checkpoints_taken: int = 0
    restarts: int = 0
    recovery_wall_s: float = 0.0
    #: Final world size (differs from the initial one after shrink).
    final_world: int = 0
    episodes: list[RecoveryEpisode] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable account."""
        return (f"failures_detected={self.failures_detected}, "
                f"retries={self.retries}, "
                f"checkpoints={self.checkpoints_taken}, "
                f"restarts={self.restarts}, "
                f"recovery_wall={self.recovery_wall_s:.3g}s, "
                f"final_world={self.final_world}")
