"""Fault-tolerance runtime: reliable transport, ULFM-style recovery,
coordinated checkpoint/restart.

The paper's portability argument extends to resilience: once programs
state communication *intent*, delivery and recovery semantics belong to
the runtime. This package supplies them for the simulated targets:

* :class:`RetryPolicy` — bounded retransmission with exponential
  backoff and deterministic jitter, per lowering target.
* :class:`RecoveryConfig` + :func:`run_with_recovery` — deadline-based
  failure detection and ULFM-style communicator recovery (``shrink``
  re-maps the pattern over the survivors; ``respawn`` brings spares
  back from the last consistent checkpoint cut).
* :func:`register_state` / :func:`checkpoint` / :func:`restore` — the
  program-facing coordinated-checkpoint API (snapshots are taken at
  consolidated-sync boundaries, which the static verifier proves are
  consistent cuts).

See ``docs/RECOVERY.md`` for the full model and
:mod:`repro.faults.chaos` for the chaos-soak harness exercising it.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointStore,
    checkpoint,
    register_state,
    restore,
)
from repro.recovery.manager import (
    RecoveryContext,
    RecoveryError,
    run_with_recovery,
)
from repro.recovery.policy import (
    POLICIES,
    RESPAWN,
    SHRINK,
    RecoveryConfig,
    RecoveryEpisode,
    RecoveryStats,
    RetryPolicy,
)

__all__ = [
    "POLICIES",
    "RESPAWN",
    "SHRINK",
    "Checkpoint",
    "CheckpointStore",
    "RecoveryConfig",
    "RecoveryContext",
    "RecoveryEpisode",
    "RecoveryError",
    "RecoveryStats",
    "RetryPolicy",
    "checkpoint",
    "register_state",
    "restore",
    "run_with_recovery",
]
