"""The recovery runtime: detect → revoke → recover → restart.

:func:`run_with_recovery` is the managed-run entry point the paper's
thesis points at: the application states its communication intent, and
the *runtime* owns delivery and recovery. One logical run may span
several engine attempts:

1. The engine runs with a bound :class:`RecoveryContext`: dropped
   messages are retransmitted under per-target bounded-retry policies,
   registered state is checkpointed at consolidated-sync boundaries,
   and a survivor touching a dead peer waits out the failure detector's
   deadline before the failure surfaces (ULFM semantics: the error is
   *raised*, not hung on).
2. A surfaced :class:`~repro.errors.RankFailedError` — or a degraded
   completion — revokes the world: the attempt is abandoned (in-flight
   windows die with it, which is what keeps the checkpoint cut clean).
3. The configured policy rebuilds the world: **shrink** re-runs the
   program over the survivor set (partner functions re-evaluate at the
   new ``env.size`` — the pattern catalog re-maps itself); **respawn**
   replaces dead ranks with fresh spares and restarts the full world
   from the last consistent checkpoint cut, transferring the dead
   rank's snapshots to its spare.
4. The crash events that already fired are stripped from the fault
   plan (a fault kills a rank once; its replacement is a new process),
   and the run restarts. Bounded by ``max_recoveries``.

Every episode is recorded in :class:`~repro.recovery.policy.
RecoveryStats` (surfaced on ``RunResult.recovery`` and folded into
``SimStats``), and — under ``profile=True`` — the attempts are stitched
into one continuous profile with ``recovery`` spans bridging them, so
`repro-trace` shows the failure, the lost work and the restart on one
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import RankFailedError, ReproError
from repro.recovery.checkpoint import Checkpoint, CheckpointStore
from repro.recovery.policy import (
    SHRINK,
    RecoveryConfig,
    RecoveryEpisode,
    RecoveryStats,
)
from repro.sim.engine import Engine, RunResult


class RecoveryError(ReproError):
    """The recovery runtime could not bring the run to completion."""


@dataclass
class RecoveryContext:
    """Per-attempt binding between one engine run and the recovery
    runtime. The engine, fault injector and region machinery consult it
    (``engine.recovery``); the manager creates a fresh one per attempt
    around the shared :class:`CheckpointStore`."""

    config: RecoveryConfig
    store: CheckpointStore
    #: Consistent cut this attempt restarts from (-1 = fresh start).
    restore_cut: int = -1
    #: 0-based attempt number within the logical run.
    attempt: int = 0
    _engine: Any = field(default=None, repr=False)
    #: rank -> name -> live object (auto-checkpointed at sync points).
    _registered: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: rank -> next cut id.
    _cuts: dict[int, int] = field(default_factory=dict)

    # -- engine-facing surface ------------------------------------------

    def bind(self, engine: Any) -> None:
        """Reset per-run state (called by ``Engine.run``)."""
        self._engine = engine
        self._registered.clear()
        self._cuts.clear()

    @property
    def detect_deadline(self) -> float:
        """Failure detector's deadline (virtual seconds)."""
        return self.config.detect_deadline

    def retry_for(self, tp: Any):
        """Bounded-retry policy for one transport (by kind name)."""
        return self.config.retry_for(tp.name)

    # -- checkpointing ---------------------------------------------------

    def register_state(self, rank: int, state: dict[str, Any]) -> None:
        """Add named live objects to a rank's auto-checkpointed set."""
        self._registered.setdefault(rank, {}).update(state)

    def on_sync_boundary(self, env: Any) -> None:
        """Coordinated checkpoint hook: called as a consolidated sync
        returns (the happens-before-proven quiescent point)."""
        if not self.config.checkpoint:
            return
        state = self._registered.get(env.rank)
        if not state:
            return
        self._save(env, state)

    def take_checkpoint(self, env: Any, state: dict[str, Any]) -> int:
        """Program-placed checkpoint of explicit state; returns cut id."""
        return self._save(env, state)

    def _save(self, env: Any, state: dict[str, Any]) -> int:
        rank = env.rank
        cut = self._cuts.get(rank, 0)
        self.store.save(rank, cut, env.now, state)
        self._cuts[rank] = cut + 1
        engine = env.engine
        engine.stats.checkpoints_taken += 1
        if engine.profile is not None:
            engine.profile.instant(rank, "checkpoint", env.now, cut=cut)
        env.trace("recovery.checkpoint", cut=cut)
        return cut

    def restore_for(self, env: Any) -> Checkpoint | None:
        """The rank's snapshot at this attempt's restore cut, if any.

        A rank that restores resumes cut numbering *after* the restored
        cut, so its next checkpoint extends the same timeline instead
        of colliding with history. Ranks that re-execute from scratch
        instead re-number from 0 and overwrite their (deterministic,
        identical) old snapshots.
        """
        if self.restore_cut < 0:
            return None
        cp = self.store.get(env.rank, self.restore_cut)
        if cp is not None:
            self._cuts[env.rank] = cp.cut + 1
            engine = env.engine
            if engine.profile is not None:
                engine.profile.instant(env.rank, "restore", env.now,
                                       cut=cp.cut)
            env.trace("recovery.restore", cut=cp.cut)
        return cp


# ---------------------------------------------------------------------------
# Fault-plan surgery between attempts


def _strip_fired(plan: Any, fired: set[int]) -> Any:
    """Remove crash events that already killed their rank (respawn)."""
    if plan is None:
        return None
    crashes = tuple(c for c in plan.crashes if c.rank not in fired)
    return replace(plan, crashes=crashes)


def _remap_plan(plan: Any, survivors: list[int], new_world: int) -> Any:
    """Re-target pending rank events onto the shrunk world.

    Survivor ``survivors[i]`` becomes rank ``i``; events naming dead or
    dropped ranks vanish with them.
    """
    if plan is None:
        return None
    new_rank = {old: new for new, old in enumerate(survivors[:new_world])}
    crashes = tuple(replace(c, rank=new_rank[c.rank])
                    for c in plan.crashes if c.rank in new_rank)
    stalls = tuple(replace(s, rank=new_rank[s.rank])
                   for s in plan.stalls if s.rank in new_rank)
    return replace(plan, crashes=crashes, stalls=stalls)


# ---------------------------------------------------------------------------
# Profile stitching


def _merge_profiles(segments: list[tuple[Any, float, int]],
                    bridges: list[dict[str, Any]],
                    finish_times: list[float]) -> Any:
    """Stitch per-attempt profiles into one recovered-run timeline.

    Each attempt's spans shift by its base offset and gain an
    ``attempt`` attribute; one ``recovery`` span bridges each abort to
    the following restart so the episode is visible in the Chrome
    export.
    """
    from repro.profiling.spans import Profile

    merged = Profile()
    for prof, base, attempt in segments:
        for span in prof:
            t1 = span.t1 if span.t1 is not None else span.t0
            merged.add(span.rank, span.kind, span.t0 + base, t1 + base,
                       **dict(span.attrs, attempt=attempt))
    for bridge in bridges:
        merged.add(0, "recovery", bridge["t0"], bridge["t1"],
                   **{k: v for k, v in bridge.items()
                      if k not in ("t0", "t1")})
    merged.finish(finish_times)
    return merged


# ---------------------------------------------------------------------------
# The managed run


def run_with_recovery(prog: Callable[..., Any], nprocs: int, *,
                      faults: Any = None,
                      config: RecoveryConfig | None = None,
                      watchdog: Any = None,
                      trace: bool = False,
                      profile: bool = False,
                      max_time: float | None = None) -> RunResult:
    """Run ``prog`` over ``nprocs`` ranks, surviving injected faults.

    Returns the final (successful) attempt's :class:`RunResult` with
    cumulative recovery counters folded into ``result.stats``, the
    episode log on ``result.recovery``, and — under ``profile=True`` —
    the stitched multi-attempt profile on ``result.profile``.

    Raises :class:`RecoveryError` when ``max_recoveries`` is exhausted
    or shrink cannot reach a valid world size.
    """
    if config is None:
        config = RecoveryConfig()
    if faults is not None and not hasattr(faults, "crashes"):
        raise RecoveryError(
            "run_with_recovery needs the declarative FaultPlan (not a "
            "compiled injector): recovery rewrites the plan between "
            "attempts")
    store = CheckpointStore()
    rstats = RecoveryStats()
    plan = faults
    world = nprocs
    restore_cut = -1
    base = 0.0
    attempt = 0
    segments: list[tuple[Any, float, int]] = []
    bridges: list[dict[str, Any]] = []
    prior_stats: list[Any] = []

    while True:
        ctx = RecoveryContext(config=config, store=store,
                              restore_cut=restore_cut, attempt=attempt)
        eng = Engine(world, faults=plan, watchdog=watchdog, trace=trace,
                     profile=profile, max_time=max_time, recovery=ctx)
        failure: RankFailedError | None = None
        result: RunResult | None = None
        try:
            result = eng.run(prog)
        except RankFailedError as exc:
            failure = exc
        fired = set(eng.failed_ranks)
        if failure is None and not fired:
            break  # clean completion
        # The world is revoked: close this attempt's books.
        if failure is not None:
            abort_time = max((p.now for p in eng.procs), default=0.0)
            if profile and eng.profile is not None:
                eng.profile.finish([p.now for p in eng.procs])
        else:
            # Degraded completion: survivors finished without touching
            # the dead ranks, but the logical run still lost them —
            # recover so the application gets its full answer.
            abort_time = result.makespan if result is not None else 0.0
            eng.stats.failures_detected += len(fired)
        if profile and eng.profile is not None:
            segments.append((eng.profile, base, attempt))
        prior_stats.append(eng.stats)
        if attempt >= config.max_recoveries:
            raise RecoveryError(
                f"gave up after {attempt} recovery episode(s): rank(s) "
                f"{sorted(fired)} still failing under policy "
                f"{config.policy!r}") from failure

        survivors = [r for r in range(world) if r not in fired]
        if config.policy == SHRINK:
            new_world = config.shrink_world(len(survivors))
            if new_world < config.min_world or new_world < 1:
                raise RecoveryError(
                    f"shrink cannot reach a valid world size from "
                    f"{len(survivors)} survivor(s)") from failure
            # Old-world cuts are meaningless after re-mapping.
            store.clear()
            restore_cut = -1
            restore_time = 0.0
            plan = _remap_plan(plan, survivors, new_world)
        else:  # respawn: spares rejoin with state transfer
            new_world = world
            restore_cut = store.latest_consistent_cut(range(world))
            restore_time = (store.cut_time(restore_cut, range(world))
                            if restore_cut >= 0 else 0.0)
            plan = _strip_fired(plan, fired)

        lost = max(0.0, abort_time - restore_time)
        episode_s = lost + config.restart_cost
        episode = RecoveryEpisode(
            index=attempt + 1, policy=config.policy,
            failed_ranks=tuple(sorted(fired)), abort_time=abort_time,
            restore_cut=restore_cut, restore_time=restore_time,
            world_after=new_world, recovery_s=episode_s)
        rstats.episodes.append(episode)
        rstats.restarts += 1
        bridges.append({
            "t0": base + abort_time,
            "t1": base + abort_time + config.restart_cost,
            "policy": config.policy, "episode": episode.index,
            "failed_ranks": tuple(sorted(fired)),
            "restore_cut": restore_cut, "world_after": new_world,
        })
        # Episode cost rides on the *next* attempt's stats so the final
        # fold sees it exactly once.
        base += abort_time + config.restart_cost
        world = new_world
        attempt += 1

    # Fold every failed attempt's counters into the surviving run's.
    stats = result.stats
    for s in prior_stats:
        stats.add_recovery(s)
    stats.restarts += rstats.restarts
    stats.recovery_wall_s += sum(e.recovery_s for e in rstats.episodes)
    rstats.failures_detected = stats.failures_detected
    rstats.retries = stats.retries
    rstats.checkpoints_taken = stats.checkpoints_taken
    rstats.restarts = stats.restarts
    rstats.recovery_wall_s = stats.recovery_wall_s
    rstats.final_world = world
    result.recovery = rstats
    if profile and result.profile is not None and segments:
        finish = [base + t for t in result.finish_times]
        result.profile = _merge_profiles(
            segments + [(result.profile, base, attempt)], bridges, finish)
    return result
