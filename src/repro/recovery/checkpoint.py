"""Coordinated checkpoint/restart state for directive programs.

A checkpoint *cut* is taken at a consolidated-sync boundary: the static
verifier's happens-before graphs prove that everything a sync covers is
quiescent there, so snapshotting each rank as its sync returns yields a
consistent cut for free — no Chandy-Lamport marker protocol needed.
Each rank's successive sync boundaries are numbered; a cut ``c`` is
*consistent* once every live rank has recorded cut ``c``.

Programs opt state in two ways:

* :func:`register_state` — name the arrays that constitute the rank's
  restartable state once; every subsequent sync boundary snapshots them
  automatically (coordinated checkpointing).
* :func:`checkpoint` — snapshot explicit state right now, advancing the
  rank's cut counter (for programs that want checkpoint placement under
  their own control, e.g. once per outer iteration).

After a crash, :func:`restore` hands a respawned or restarted rank the
state of the last consistent cut so it can skip completed work; the
in-flight windows of the aborted attempt were never committed (the
engine died with them), so the restart observes a clean cut.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Env


def _snapshot(state: dict[str, Any]) -> dict[str, Any]:
    """Deep value copy: numpy arrays are copied, the rest deep-copied."""
    out: dict[str, Any] = {}
    for name, value in state.items():
        if isinstance(value, np.ndarray):
            out[name] = value.copy()
        else:
            out[name] = copy.deepcopy(value)
    return out


@dataclass
class Checkpoint:
    """One rank's snapshot at one cut."""

    rank: int
    cut: int
    time: float
    state: dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """All checkpoints of one recovered run, across restarts.

    The store outlives individual engine attempts: the recovery manager
    owns it, each attempt's :class:`~repro.recovery.manager.
    RecoveryContext` writes into it, and restarts read from it.
    """

    def __init__(self) -> None:
        #: (rank, cut) -> Checkpoint
        self._by_rank_cut: dict[tuple[int, int], Checkpoint] = {}

    def __len__(self) -> int:
        return len(self._by_rank_cut)

    def save(self, rank: int, cut: int, time: float,
             state: dict[str, Any]) -> Checkpoint:
        """Record one rank's snapshot at one cut (value-copied)."""
        cp = Checkpoint(rank=rank, cut=cut, time=time,
                        state=_snapshot(state))
        self._by_rank_cut[(rank, cut)] = cp
        return cp

    def get(self, rank: int, cut: int) -> Checkpoint | None:
        """The snapshot one rank took at one cut, if any."""
        return self._by_rank_cut.get((rank, cut))

    def cuts_of(self, rank: int) -> list[int]:
        """All cut ids one rank has recorded, ascending."""
        return sorted(c for (r, c) in self._by_rank_cut if r == rank)

    def latest_consistent_cut(self, ranks: list[int] | tuple[int, ...] | set[int],
                              ) -> int:
        """Largest cut id every given rank has recorded, or -1.

        This is the cut a coordinated restart resumes from: later cuts
        exist only on a subset of ranks and would tear the state.
        """
        best = -1
        common: set[int] | None = None
        for rank in ranks:
            cuts = set(self.cuts_of(rank))
            common = cuts if common is None else (common & cuts)
            if not common:
                return -1
        if common:
            best = max(common)
        return best

    def cut_time(self, cut: int, ranks) -> float:
        """Virtual time of a cut: the latest member snapshot's clock."""
        times = [cp.time for (r, c), cp in self._by_rank_cut.items()
                 if c == cut and r in set(ranks)]
        return max(times) if times else 0.0

    def clear(self) -> None:
        """Drop every checkpoint (shrink invalidates old-world cuts:
        rank ids and partner maps change, so old snapshots are
        meaningless in the new world)."""
        self._by_rank_cut.clear()


# ---------------------------------------------------------------------------
# Env-level API (what recovery-aware programs call)


def _context(env: "Env"):
    """The run's RecoveryContext, or None outside a recovered run."""
    return env.engine.recovery


def register_state(env: "Env", **state: Any) -> None:
    """Name this rank's restartable state for automatic checkpointing.

    Every subsequent consolidated-sync boundary snapshots the registered
    values (coordinated checkpointing at the points the verifier proves
    quiescent). No-op outside a recovered run, so programs need no mode
    checks.
    """
    ctx = _context(env)
    if ctx is not None:
        ctx.register_state(env.rank, state)


def checkpoint(env: "Env", **state: Any) -> int | None:
    """Snapshot explicit state now; returns the cut id (None = no-op).

    Advances this rank's cut counter. Use for program-placed
    checkpoints (e.g. once per outer iteration); mixed use with
    :func:`register_state` is fine — both advance the same counter, so
    cut numbering stays comparable across ranks that do the same calls
    in the same order (SPMD).
    """
    ctx = _context(env)
    if ctx is None:
        return None
    return ctx.take_checkpoint(env, state)


def restore(env: "Env") -> Checkpoint | None:
    """This rank's snapshot at the run's restore cut, if recovering.

    Returns ``None`` on a fresh (non-restarted) run or when no
    consistent cut exists — the program starts from scratch. The
    returned :class:`Checkpoint` carries ``cut`` so the program knows
    how much completed work to skip.
    """
    ctx = _context(env)
    if ctx is None:
        return None
    return ctx.restore_for(env)
