"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking genuine Python bugs.
The hierarchy mirrors the package layout: simulator faults, communication
library misuse, directive/clause validation failures, and static
translation errors each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulator


class SimError(ReproError):
    """Base class for simulation-engine errors."""


class SimDeadlockError(SimError):
    """All live simulated processes are blocked and none can make progress.

    The message includes a per-rank diagnostic of what each blocked rank
    was waiting on, mirroring the output of a parallel debugger.
    """

    def __init__(self, message: str, blocked: dict[int, str] | None = None):
        super().__init__(message)
        #: Mapping of rank -> human-readable block reason.
        self.blocked = dict(blocked or {})


class SimProcessError(SimError):
    """A simulated process raised an exception; wraps the original."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class SimStateError(SimError):
    """An engine primitive was used outside a running simulation."""


# ---------------------------------------------------------------------------
# Communication libraries (simulated MPI / SHMEM)


class CommError(ReproError):
    """Base class for communication-library errors."""


class MPIError(CommError):
    """Misuse of the simulated MPI library (bad rank, type mismatch...)."""


class TruncationError(MPIError):
    """A received message is larger than the posted receive buffer."""


class ShmemError(CommError):
    """Misuse of the simulated SHMEM library."""


class SymmetryError(ShmemError):
    """A SHMEM call was given a buffer that is not a symmetric data object."""


# ---------------------------------------------------------------------------
# Datatype engine


class DatatypeError(ReproError):
    """Invalid datatype construction or usage."""


class CompositeTypeError(DatatypeError):
    """A composite type violates the paper's restrictions.

    Section III-A: pointers within a composite type are prohibited, as are
    recursively nested composite types.
    """


# ---------------------------------------------------------------------------
# Directives (the paper's core contribution)


class DirectiveError(ReproError):
    """Base class for directive misuse."""


class ClauseError(DirectiveError):
    """A directive clause violates the rules of Section III-B."""


class LoweringError(DirectiveError):
    """The directive could not be translated to the requested target."""


class OverlapError(DirectiveError):
    """The overlap body is not legal to run concurrently with the comm."""


# ---------------------------------------------------------------------------
# Static front end / code generation


class PragmaSyntaxError(ReproError):
    """The pragma parser rejected the annotated source."""

    def __init__(self, message: str, line: int | None = None):
        loc = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line


class CodegenError(ReproError):
    """Code generation failed for an otherwise valid IR."""
