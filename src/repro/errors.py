"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking genuine Python bugs.
The hierarchy mirrors the package layout: simulator faults, communication
library misuse, directive/clause validation failures, and static
translation errors each get their own branch.
"""

from __future__ import annotations

import traceback as _traceback


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulator


class SimError(ReproError):
    """Base class for simulation-engine errors."""


class SimAbortError(SimError):
    """Engine-level abort of a whole run (deadlock, hang, rank failure).

    These are raised about the *run*, not about one rank's user code, so
    the engine surfaces them unwrapped instead of inside a
    :class:`SimProcessError`.
    """


class SimDeadlockError(SimAbortError):
    """All live simulated processes are blocked and none can make progress.

    The message includes a per-rank diagnostic of what each blocked rank
    was waiting on, mirroring the output of a parallel debugger.
    """

    def __init__(self, message: str, blocked: dict[int, str] | None = None):
        super().__init__(message)
        #: Mapping of rank -> human-readable block reason.
        self.blocked = dict(blocked or {})


class SimHangError(SimAbortError):
    """The progress watchdog tripped: the run stopped making progress.

    Raised for both *virtual-time stalls* (scheduling keeps happening but
    no rank's clock advances — a polling livelock) and *wall-clock hangs*
    (no scheduling point was reached for longer than the configured
    timeout — e.g. an infinite loop in user code). The message carries a
    per-rank progress report (state, clock, blocked reason, last trace
    event) so the hang is debuggable instead of silent.
    """

    def __init__(self, message: str, report: str | None = None):
        super().__init__(message if report is None
                         else f"{message}\n{report}")
        #: The per-rank progress report, also embedded in the message.
        self.report = report or ""


class RankFailedError(SimAbortError):
    """A simulated rank was killed (injected crash) and the run cannot
    complete without it.

    Raised either eagerly — a surviving rank initiated communication
    with a failed peer — or at quiescence, when every surviving rank is
    blocked on communication that a failed rank will never perform. The
    message names the failed rank(s) and what each surviving blocked
    rank was waiting on; the structured fields below carry the same
    facts machine-readably for the recovery runtime
    (:mod:`repro.recovery`) and failure reports.
    """

    def __init__(self, message: str, failed: tuple[int, ...] = (),
                 blocked: dict[int, str] | None = None,
                 failed_rank: int | None = None,
                 failure_time: float | None = None,
                 detected_by: int | None = None):
        super().__init__(message)
        #: Ranks that were crashed (fault injection) before the abort.
        self.failed = tuple(failed)
        #: Mapping of surviving rank -> human-readable block reason.
        self.blocked = dict(blocked or {})
        #: The failure this abort is *about* (first detected). Falls
        #: back to the first crashed rank when a specific one was not
        #: singled out.
        self.failed_rank = (failed_rank if failed_rank is not None
                            else (self.failed[0] if self.failed else None))
        #: Virtual time the failed rank was killed, when known.
        self.failure_time = failure_time
        #: Rank that detected the failure (it initiated communication
        #: naming the dead peer), or ``None`` when the engine detected
        #: it at quiescence.
        self.detected_by = detected_by


class RaceError(SimAbortError):
    """The access sanitizer observed two conflicting, unordered accesses.

    Raised by :class:`repro.sim.sanitizer.AccessSanitizer` (armed with
    ``Engine(..., sanitize=True)``) when a byte range is touched by two
    accesses, at least one a write, with no happens-before edge between
    them — the dynamic counterpart of the static CI04x race findings.
    The message carries both access descriptions and the overlapping
    byte evidence; the structured fields repeat the same facts for the
    differential tests.
    """

    def __init__(self, message: str, *, kind: str = "",
                 ranks: tuple[int, ...] = (),
                 labels: tuple[str, ...] = (),
                 overlap_nbytes: int = 0):
        super().__init__(message)
        #: ``"write-write"`` or ``"read-write"``.
        self.kind = kind
        #: Ranks that performed the two accesses, first-recorded first.
        self.ranks = tuple(ranks)
        #: Human-readable descriptions of the two accesses.
        self.labels = tuple(labels)
        #: Size of the overlapping byte range.
        self.overlap_nbytes = overlap_nbytes


class SimProcessError(SimError):
    """A simulated process raised an exception; wraps the original.

    The original exception is raised on the rank's own host thread; its
    traceback is captured and re-attached here (both as ``__cause__``
    and formatted into the message) so the failing user source line
    survives the thread boundary.
    """

    def __init__(self, rank: int, original: BaseException):
        message = (f"rank {rank} raised "
                   f"{type(original).__name__}: {original}")
        remote = ""
        if original.__traceback__ is not None:
            remote = "".join(_traceback.format_exception(
                type(original), original, original.__traceback__))
            message += (f"\n--- traceback on rank {rank} ---\n"
                        f"{remote.rstrip()}")
        super().__init__(message)
        self.rank = rank
        self.original = original
        #: The original exception's formatted traceback ("" if absent).
        self.remote_traceback = remote


class SimStateError(SimError):
    """An engine primitive was used outside a running simulation."""


# ---------------------------------------------------------------------------
# Network cost models


class NetModelError(ReproError, KeyError):
    """A cost-model lookup failed (e.g. unknown transport kind).

    ``KeyError`` stays a secondary base for compatibility with callers
    that predate the :class:`ReproError` contract, but the message must
    render like a normal exception, not ``KeyError``'s repr-quoting.
    """

    __str__ = Exception.__str__


# ---------------------------------------------------------------------------
# Communication libraries (simulated MPI / SHMEM)


class CommError(ReproError):
    """Base class for communication-library errors."""


class MPIError(CommError):
    """Misuse of the simulated MPI library (bad rank, type mismatch...)."""


class TruncationError(MPIError):
    """A received message is larger than the posted receive buffer."""


class ShmemError(CommError):
    """Misuse of the simulated SHMEM library."""


class SymmetryError(ShmemError):
    """A SHMEM call was given a buffer that is not a symmetric data object."""


# ---------------------------------------------------------------------------
# Datatype engine


class DatatypeError(ReproError):
    """Invalid datatype construction or usage."""


class CompositeTypeError(DatatypeError):
    """A composite type violates the paper's restrictions.

    Section III-A: pointers within a composite type are prohibited, as are
    recursively nested composite types.
    """


# ---------------------------------------------------------------------------
# Directives (the paper's core contribution)


class DirectiveError(ReproError):
    """Base class for directive misuse."""


class ClauseError(DirectiveError):
    """A directive clause violates the rules of Section III-B."""


class LoweringError(DirectiveError):
    """The directive could not be translated to the requested target."""


class OverlapError(DirectiveError):
    """The overlap body is not legal to run concurrently with the comm."""


# ---------------------------------------------------------------------------
# Static front end / code generation


class PragmaSyntaxError(ReproError):
    """The pragma parser rejected the annotated source."""

    def __init__(self, message: str, line: int | None = None):
        loc = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line


class CodegenError(ReproError):
    """Code generation failed for an otherwise valid IR."""


# ---------------------------------------------------------------------------
# Static analysis / verification


class AnalysisError(ReproError):
    """Base class for static-analysis failures."""


class VerificationError(AnalysisError):
    """The static verifier refuted the program.

    Raised by :meth:`repro.core.analysis.lint.LintReport.require_clean`
    when a lint/verify pass produced error-severity diagnostics; the
    message lists them.
    """
