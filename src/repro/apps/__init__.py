"""Mini-applications used by the paper's evaluation."""
