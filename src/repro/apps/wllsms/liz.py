"""Process topology: Fig. 1's modular structure, Fig. 2's LIZ.

World layout: global rank 0 runs Wang-Landau; the remaining ranks form
M LSMS instances of N ranks each. The first rank of each instance is
the *privileged* process of its local interaction zone; it talks to
the WL rank and to the N-1 non-privileged ranks of its zone. With the
paper's sixteen-atom runs, N = 16 gives exactly the x-axis of Fig. 3
(P = 1 + 16M: 33, 49, ..., 337).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """The WL-LSMS rank layout."""

    n_lsms: int          # M — number of LSMS instances
    group_size: int      # N — ranks per instance

    def __post_init__(self) -> None:
        if self.n_lsms < 1:
            raise ValueError(f"need at least one LSMS, got {self.n_lsms}")
        if self.group_size < 2:
            raise ValueError(
                f"an LSMS needs a privileged rank plus at least one "
                f"other, got group_size={self.group_size}")

    # -- sizes -------------------------------------------------------------

    @property
    def nprocs(self) -> int:
        """Total world size (1 WL rank + M*N)."""
        return 1 + self.n_lsms * self.group_size

    @property
    def wl_rank(self) -> int:
        """The Wang-Landau rank (always global rank 0)."""
        return 0

    # -- rank classification -------------------------------------------------

    def group_of(self, rank: int) -> int:
        """The LSMS instance a rank belongs to (WL rank has none)."""
        self._check(rank)
        if rank == self.wl_rank:
            raise ValueError("the WL rank belongs to no LSMS instance")
        return (rank - 1) // self.group_size

    def local_index(self, rank: int) -> int:
        """Position within the LSMS instance (0 = privileged)."""
        g = self.group_of(rank)
        return rank - self.first_rank_of(g)

    def is_privileged(self, rank: int) -> bool:
        """True for the first rank of an LSMS instance."""
        return rank != self.wl_rank and self.local_index(rank) == 0

    def is_wl(self, rank: int) -> bool:
        """True for the Wang-Landau rank."""
        self._check(rank)
        return rank == self.wl_rank

    # -- group structure -----------------------------------------------------

    def first_rank_of(self, group: int) -> int:
        """Lowest global rank of an LSMS instance."""
        self._check_group(group)
        return 1 + group * self.group_size

    def privileged_rank_of(self, group: int) -> int:
        """The privileged (first) rank of an instance."""
        return self.first_rank_of(group)

    def members_of(self, group: int) -> list[int]:
        """All ranks of one LSMS instance, privileged first."""
        first = self.first_rank_of(group)
        return list(range(first, first + self.group_size))

    def nonprivileged_of(self, group: int) -> list[int]:
        """The instance's ranks excluding the privileged one."""
        return self.members_of(group)[1:]

    def privileged_ranks(self) -> list[int]:
        """The privileged rank of every LSMS instance."""
        return [self.privileged_rank_of(g) for g in range(self.n_lsms)]

    # -- atom ownership --------------------------------------------------------

    def atoms_per_group(self) -> int:
        """One atom per group member (the paper's 16-atom, N=16 runs)."""
        return self.group_size

    def owner_of_atom(self, group: int, atom_index: int) -> int:
        """The rank owning atom ``atom_index`` of a group (round-robin;
        with one atom per rank this is member ``atom_index``)."""
        members = self.members_of(group)
        return members[atom_index % len(members)]

    # -- checks -----------------------------------------------------------------

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(
                f"rank {rank} outside the {self.nprocs}-rank world")

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.n_lsms:
            raise ValueError(
                f"group {group} outside the {self.n_lsms} LSMS instances")

    @classmethod
    def for_nprocs(cls, nprocs: int, group_size: int = 16) -> "Topology":
        """The topology for a Fig.3-style process count (1 + M*N)."""
        if (nprocs - 1) % group_size != 0:
            raise ValueError(
                f"nprocs={nprocs} is not 1 + M*{group_size}")
        return cls(n_lsms=(nprocs - 1) // group_size,
                   group_size=group_size)
