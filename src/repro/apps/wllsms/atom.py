"""Per-atom data: the exact payload of the paper's Listing 4.

Each atom carries the scalar block the original code packs field by
field (local_id, jmt, jws, xstart, rmt, header[80], alat, efermi,
vdif, ztotss, zcorss, evec[3], nspin, numc) plus the matrices it ships
as contiguous runs: the potential ``vr`` and charge density ``rhotot``
(each ``2*t`` doubles for ``t = vr.n_row()``), and the core-state
arrays ``ec`` (doubles) and ``nc``/``lc``/``kc`` (ints), each ``2*tc``
elements.

The directive version (Listing 5) groups the scalars into a single
composite — :data:`ATOM_SCALARS` — whose MPI struct the compiler
generates automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import CompositeType, extract_composite
from repro.util.rng import rank_rng

#: The scalar block as one composite type (directive version's
#: ``scalaratomdata``). Field order follows Listing 4's pack sequence.
ATOM_SCALARS: CompositeType = extract_composite("AtomScalars", {
    "local_id": "int",
    "jmt": "int",
    "jws": "int",
    "xstart": "double",
    "rmt": "double",
    "header": ("char", 80),
    "alat": "double",
    "efermi": "double",
    "vdif": "double",
    "ztotss": "double",
    "zcorss": "double",
    "evec": ("double", 3),
    "nspin": "int",
    "numc": "int",
})


@dataclass
class AtomData:
    """One atom's communicated state."""

    scalars: np.ndarray          # shape (1,), dtype ATOM_SCALARS
    vr: np.ndarray               # (t, 2) float64 — potential
    rhotot: np.ndarray           # (t, 2) float64 — charge density
    ec: np.ndarray               # (tc, 2) float64 — core energies
    nc: np.ndarray               # (tc, 2) int32 — principal q. numbers
    lc: np.ndarray               # (tc, 2) int32 — angular momenta
    kc: np.ndarray               # (tc, 2) int32 — kappa q. numbers

    @property
    def t(self) -> int:
        """Radial-grid rows of ``vr``/``rhotot``."""
        return self.vr.shape[0]

    @property
    def tc(self) -> int:
        """Core-state rows of ``ec``/``nc``/``lc``/``kc``."""
        return self.ec.shape[0]

    @property
    def payload_bytes(self) -> int:
        """Total communicated bytes for this atom."""
        return (self.scalars.nbytes + self.vr.nbytes + self.rhotot.nbytes
                + self.ec.nbytes + self.nc.nbytes + self.lc.nbytes
                + self.kc.nbytes)

    @classmethod
    def empty(cls, t: int, tc: int) -> "AtomData":
        """Zeroed receive-side storage with the declared extents."""
        return cls(
            scalars=ATOM_SCALARS.zeros(1),
            vr=np.zeros((t, 2)),
            rhotot=np.zeros((t, 2)),
            ec=np.zeros((tc, 2)),
            nc=np.zeros((tc, 2), dtype=np.int32),
            lc=np.zeros((tc, 2), dtype=np.int32),
            kc=np.zeros((tc, 2), dtype=np.int32),
        )

    def resize_potential(self, t: int) -> None:
        """Grow the potential arrays (Listing 4's resizePotential)."""
        if t > self.vr.shape[0]:
            self.vr = np.zeros((t, 2))
            self.rhotot = np.zeros((t, 2))

    def resize_core(self, tc: int) -> None:
        """Grow the core-state arrays (Listing 4's resizeCore)."""
        if tc > self.ec.shape[0]:
            self.ec = np.zeros((tc, 2))
            self.nc = np.zeros((tc, 2), dtype=np.int32)
            self.lc = np.zeros((tc, 2), dtype=np.int32)
            self.kc = np.zeros((tc, 2), dtype=np.int32)

    def equals(self, other: "AtomData") -> bool:
        """Field-by-field equality (tests use this after transfers)."""
        return (np.array_equal(self.scalars, other.scalars)
                and np.array_equal(self.vr, other.vr)
                and np.array_equal(self.rhotot, other.rhotot)
                and np.array_equal(self.ec, other.ec)
                and np.array_equal(self.nc, other.nc)
                and np.array_equal(self.lc, other.lc)
                and np.array_equal(self.kc, other.kc))


def make_atom(rng: np.random.Generator, local_id: int, t: int,
              tc: int, z: float = 26.0) -> AtomData:
    """A synthetic Fe-like atom with plausible field contents."""
    atom = AtomData.empty(t, tc)
    s = atom.scalars
    s["local_id"] = local_id
    s["jmt"] = t
    s["jws"] = t - t // 8
    s["xstart"] = -11.13
    s["rmt"] = 2.26
    header = f"Fe atom {local_id} (synthetic, Z={z})".encode()[:80]
    s["header"][0, :len(header)] = np.frombuffer(header, dtype=np.int8)
    s["alat"] = 5.42
    s["efermi"] = 0.63
    s["vdif"] = 0.0
    s["ztotss"] = z
    s["zcorss"] = z - 8.0
    evec = rng.normal(size=3)
    s["evec"][0] = evec / np.linalg.norm(evec)
    s["nspin"] = 2
    s["numc"] = tc
    # Radial grids: a screened-Coulomb-ish potential and a decaying
    # density; two spin channels as the two columns.
    r = np.linspace(1e-3, float(s["rmt"][0]), t)
    for spin in range(2):
        atom.vr[:, spin] = -2.0 * z * np.exp(-r) / r * (1 + 0.01 * spin)
        atom.rhotot[:, spin] = z * np.exp(-2.0 * r) * (1 + 0.02 * spin)
    # Core states: (n, l, kappa) ladders with hydrogenic-ish energies.
    ns = 1 + np.arange(tc)
    for spin in range(2):
        atom.ec[:, spin] = -z * z / (2.0 * ns ** 2) * (1 + 1e-3 * spin)
        atom.nc[:, spin] = ns
        atom.lc[:, spin] = np.maximum(ns - 1, 0)
        atom.kc[:, spin] = -(np.maximum(ns - 1, 0) + 1)
    return atom


def make_atoms(seed: int, count: int, t: int = 512,
               tc: int = 8) -> list[AtomData]:
    """The synthetic input deck (the paper used sixteen iron atoms)."""
    rng = rank_rng(seed, 0)
    return [make_atom(rng, i, t, tc) for i in range(count)]
