"""Wang-Landau driver: the Monte-Carlo layer of WL-LSMS.

A genuine (miniature) Wang-Landau sampler over a toy Heisenberg energy
model: it estimates the density of states g(E) by proposing random
spin configurations, accepting with probability min(1, g(E_old)/
g(E_new)), incrementing ln g at each visited energy, and refining the
modification factor when the visit histogram flattens — the algorithm
of the paper's reference [12], scaled down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def random_spins(rng: np.random.Generator, count: int) -> np.ndarray:
    """``count`` random unit vectors, flattened (the ``ev`` array)."""
    v = rng.normal(size=(count, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return v.reshape(-1)


def heisenberg_energy(spins: np.ndarray, j_coupling: float = 1.0) -> float:
    """Nearest-neighbour-chain Heisenberg energy of a configuration."""
    s = spins.reshape(-1, 3)
    return float(-j_coupling * (s[:-1] * s[1:]).sum())


@dataclass
class WangLandau:
    """The density-of-states estimator."""

    e_min: float
    e_max: float
    n_bins: int = 32
    flatness: float = 0.8
    ln_f_final: float = 1e-4

    ln_g: np.ndarray = field(init=False)
    histogram: np.ndarray = field(init=False)
    ln_f: float = field(init=False, default=1.0)
    steps: int = field(init=False, default=0)
    refinements: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.e_max <= self.e_min:
            raise ValueError("e_max must exceed e_min")
        if self.n_bins < 2:
            raise ValueError("need at least two energy bins")
        self.ln_g = np.zeros(self.n_bins)
        self.histogram = np.zeros(self.n_bins, dtype=np.int64)

    # ------------------------------------------------------------------

    def bin_of(self, energy: float) -> int:
        """The (clamped) bin index of an energy."""
        frac = (energy - self.e_min) / (self.e_max - self.e_min)
        return int(np.clip(frac * self.n_bins, 0, self.n_bins - 1))

    def accept(self, e_old: float, e_new: float,
               rng: np.random.Generator) -> bool:
        """The Wang-Landau acceptance rule."""
        b_old, b_new = self.bin_of(e_old), self.bin_of(e_new)
        ln_ratio = self.ln_g[b_old] - self.ln_g[b_new]
        return bool(np.log(rng.random()) < min(0.0, ln_ratio)
                    or ln_ratio >= 0.0)

    def record(self, energy: float) -> None:
        """Visit an energy: bump g and the histogram, refine if flat."""
        b = self.bin_of(energy)
        self.ln_g[b] += self.ln_f
        self.histogram[b] += 1
        self.steps += 1
        if self.steps % (8 * self.n_bins) == 0 and self.is_flat():
            self.refine()

    def is_flat(self) -> bool:
        """True when every visited bin is near the mean visit count."""
        visited = self.histogram[self.histogram > 0]
        if visited.size < 2:
            return False
        return bool(visited.min() >= self.flatness * visited.mean())

    def refine(self) -> None:
        """Halve ln f and reset the histogram (one WL stage)."""
        self.ln_f /= 2.0
        self.histogram[:] = 0
        self.refinements += 1

    @property
    def converged(self) -> bool:
        """True once the modification factor reached its floor."""
        return self.ln_f <= self.ln_f_final

    def normalized_ln_g(self) -> np.ndarray:
        """ln g shifted so its minimum visited value is zero."""
        out = self.ln_g.copy()
        visited = out > 0
        if visited.any():
            out[visited] -= out[visited].min()
        return out
