"""Single-atom-data distribution: Listing 4 vs Listing 5.

Stage A (common to all variants): the Wang-Landau rank sends each LSMS
instance's input deck to its privileged rank, serially — the stage that
makes total distribution time grow with the number of instances.

Stage B (the part the paper rewrote): inside each LIZ the privileged
rank sends every non-privileged member its atom:

* ``original`` — the Listing 4 transcription: a field-by-field
  ``MPI_Pack`` sequence into one ``MPI_PACKED`` buffer, a blocking
  send, and the mirrored ``MPI_Unpack`` sequence with the
  ``resizePotential``/``resizeCore`` underflow handling;
* ``directive`` — the Listing 5 transcription: one ``comm_parameters``
  region holding three ``comm_p2p`` instances (the scalar composite,
  the ``vr``/``rhotot`` pair, the ``ec``/``nc``/``lc``/``kc`` group),
  re-targetable to MPI or SHMEM.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.apps.wllsms.atom import AtomData
from repro.apps.wllsms.liz import Topology
from repro.core import comm_p2p, comm_parameters
from repro.sim.process import Env


def atom_packed_size(t: int, tc: int) -> int:
    """Staging-buffer size for one packed atom (Listing 4's ``s``)."""
    scalar_bytes = 4 * 5 + 8 * 9 + 80  # 5 ints, 6 doubles + evec[3], header
    return (scalar_bytes + 2 * 4  # two length prefixes
            + 2 * (2 * t * 8)     # vr, rhotot
            + 2 * tc * 8          # ec
            + 3 * (2 * tc * 4)    # nc, lc, kc
            + 64)                 # slack, as the original over-allocates


def pack_atom(comm: mpi.Comm, atom: AtomData, buf: bytearray) -> int:
    """The sender half of Listing 4 (lines 4-32). Returns the size."""
    s = atom.scalars
    pos = 0
    pos = mpi.Pack(comm, s["local_id"], buf, pos)
    pos = mpi.Pack(comm, s["jmt"], buf, pos)
    pos = mpi.Pack(comm, s["jws"], buf, pos)
    pos = mpi.Pack(comm, s["xstart"], buf, pos)
    pos = mpi.Pack(comm, s["rmt"], buf, pos)
    pos = mpi.Pack(comm, s["header"][0], buf, pos)
    pos = mpi.Pack(comm, s["alat"], buf, pos)
    pos = mpi.Pack(comm, s["efermi"], buf, pos)
    pos = mpi.Pack(comm, s["vdif"], buf, pos)
    pos = mpi.Pack(comm, s["ztotss"], buf, pos)
    pos = mpi.Pack(comm, s["zcorss"], buf, pos)
    pos = mpi.Pack(comm, s["evec"][0], buf, pos)
    pos = mpi.Pack(comm, s["nspin"], buf, pos)
    pos = mpi.Pack(comm, s["numc"], buf, pos)
    t = np.array([atom.vr.shape[0]], dtype=np.int32)
    pos = mpi.Pack(comm, t, buf, pos)
    pos = mpi.Pack(comm, atom.vr, buf, pos)
    pos = mpi.Pack(comm, atom.rhotot, buf, pos)
    tc = np.array([atom.ec.shape[0]], dtype=np.int32)
    pos = mpi.Pack(comm, tc, buf, pos)
    pos = mpi.Pack(comm, atom.ec, buf, pos)
    pos = mpi.Pack(comm, atom.nc, buf, pos)
    pos = mpi.Pack(comm, atom.lc, buf, pos)
    pos = mpi.Pack(comm, atom.kc, buf, pos)
    return pos


def unpack_atom(comm: mpi.Comm, data: bytes, atom: AtomData) -> None:
    """The receiver half of Listing 4 (lines 41-73), in place."""
    s = atom.scalars
    pos = 0
    for name in ("local_id", "jmt", "jws"):
        pos = mpi.Unpack(comm, data, pos, s[name])
    for name in ("xstart", "rmt"):
        pos = mpi.Unpack(comm, data, pos, s[name])
    pos = mpi.Unpack(comm, data, pos, s["header"][0])
    for name in ("alat", "efermi", "vdif", "ztotss", "zcorss"):
        pos = mpi.Unpack(comm, data, pos, s[name])
    pos = mpi.Unpack(comm, data, pos, s["evec"][0])
    for name in ("nspin", "numc"):
        pos = mpi.Unpack(comm, data, pos, s[name])
    t = np.zeros(1, dtype=np.int32)
    pos = mpi.Unpack(comm, data, pos, t)
    if int(t[0]) > atom.vr.shape[0]:
        atom.resize_potential(int(t[0]) + 50)
    pos = mpi.Unpack(comm, data, pos, atom.vr[:int(t[0])])
    pos = mpi.Unpack(comm, data, pos, atom.rhotot[:int(t[0])])
    tc = np.zeros(1, dtype=np.int32)
    pos = mpi.Unpack(comm, data, pos, tc)
    if int(tc[0]) > atom.nc.shape[0]:
        atom.resize_core(int(tc[0]))
    pos = mpi.Unpack(comm, data, pos, atom.ec[:int(tc[0])])
    pos = mpi.Unpack(comm, data, pos, atom.nc[:int(tc[0])])
    pos = mpi.Unpack(comm, data, pos, atom.lc[:int(tc[0])])
    pos = mpi.Unpack(comm, data, pos, atom.kc[:int(tc[0])])


# ---------------------------------------------------------------------------
# Stage A: WL rank -> privileged ranks (common to every variant)


def stage_a_send_decks(comm: mpi.Comm, topo: Topology,
                       atoms: list[AtomData]) -> None:
    """The WL rank ships the whole deck to each privileged rank."""
    buf = bytearray(atom_packed_size(atoms[0].t, atoms[0].tc))
    for g in range(topo.n_lsms):
        priv = topo.privileged_rank_of(g)
        for atom in atoms:
            size = pack_atom(comm, atom, buf)
            raw = np.frombuffer(bytes(buf), dtype=np.uint8)
            comm.Send((raw, size, mpi.PACKED), dest=priv, tag=7)


def stage_a_recv_deck(comm: mpi.Comm, topo: Topology, t: int,
                      tc: int) -> list[AtomData]:
    """A privileged rank receives its instance's deck."""
    deck = []
    raw = np.zeros(atom_packed_size(t, tc), dtype=np.uint8)
    for _ in range(topo.atoms_per_group()):
        st = mpi.Status()
        comm.Recv(raw, source=topo.wl_rank, tag=7, status=st)
        atom = AtomData.empty(t, tc)
        unpack_atom(comm, raw.tobytes(), atom)
        deck.append(atom)
    return deck


# ---------------------------------------------------------------------------
# Stage B, original: Listing 4 per (privileged -> member) transfer


def distribute_original(comm: mpi.Comm, topo: Topology, env: Env,
                        deck: list[AtomData] | None, my_atom: AtomData,
                        ) -> None:
    """Listing 4: pack/send on the privileged rank, recv/unpack on the
    non-privileged ones. ``deck`` is non-None on privileged ranks."""
    rank = env.rank
    if topo.is_wl(rank):
        return
    g = topo.group_of(rank)
    if topo.is_privileged(rank):
        assert deck is not None
        buf = bytearray(atom_packed_size(deck[0].t, deck[0].tc))
        for idx, member in enumerate(topo.members_of(g)):
            if member == rank:
                copy_atom(deck[idx], my_atom)
                continue
            size = pack_atom(comm, deck[idx], buf)
            raw = np.frombuffer(bytes(buf), dtype=np.uint8)
            comm.Send((raw, size, mpi.PACKED), dest=member, tag=0)
    else:
        raw = np.zeros(atom_packed_size(my_atom.t, my_atom.tc),
                       dtype=np.uint8)
        st = mpi.Status()
        comm.Recv(raw, source=topo.privileged_rank_of(g), tag=0,
                  status=st)
        unpack_atom(comm, raw.tobytes(), my_atom)


def copy_atom(src: AtomData, dst: AtomData) -> None:
    """Local copy (the privileged rank keeps its own atom).

    Either side's arrays may be symmetric handles (SHMEM variant).
    """
    from repro.core.buffers import array_of
    for field in ("scalars", "vr", "rhotot", "ec", "nc", "lc", "kc"):
        array_of(getattr(dst, field))[...] = array_of(getattr(src, field))


# ---------------------------------------------------------------------------
# Stage B, directive: Listing 5


def distribute_directive(env: Env, topo: Topology,
                         deck: list[AtomData] | None, my_atom: AtomData,
                         target: str = "TARGET_COMM_MPI_2SIDE") -> None:
    """Listing 5: three comm_p2p instances in one comm_parameters
    region per (privileged -> member) pair.

    ``my_atom``'s arrays are the receive buffers; for the SHMEM target
    they must be symmetric (the app allocates them so).
    """
    rank = env.rank
    if topo.is_wl(rank):
        return
    g = topo.group_of(rank)
    from_rank = topo.privileged_rank_of(g)
    deck_t = deck[0].t if deck is not None else my_atom.t
    members = topo.members_of(g)
    for idx, to_rank in enumerate(members):
        if to_rank == from_rank:
            if rank == from_rank:
                copy_atom(deck[idx], my_atom)
            continue
        if rank == from_rank:
            send_atom = deck[idx]
        else:
            send_atom = my_atom  # unused unless this rank sends
        with comm_parameters(env,
                             sendwhen=rank == from_rank,
                             receivewhen=rank == to_rank,
                             sender=from_rank, receiver=to_rank,
                             target=target):
            with comm_p2p(env, sbuf=send_atom.scalars,
                          rbuf=my_atom.scalars, count=1):
                pass
            with comm_p2p(env, sbuf=[send_atom.vr, send_atom.rhotot],
                          rbuf=[my_atom.vr, my_atom.rhotot],
                          count=2 * deck_t):
                pass
            with comm_p2p(env,
                          sbuf=[send_atom.ec, send_atom.nc,
                                send_atom.lc, send_atom.kc],
                          rbuf=[my_atom.ec, my_atom.nc,
                                my_atom.lc, my_atom.kc],
                          count=2 * my_atom.tc):
                pass
