"""Mini WL-LSMS: the paper's evaluation application (Section IV).

WL-LSMS couples a Wang-Landau Monte-Carlo driver (one rank) with M
instances of LSMS (N ranks each); inside every LSMS a *privileged*
rank communicates with the non-privileged ranks of its local
interaction zone (LIZ). This mini-app preserves exactly the structure
the paper's experiments exercise:

* the process topology of Fig. 1/2 (:mod:`~repro.apps.wllsms.liz`);
* the single-atom-data distribution of Listing 4 (hand-written
  ``MPI_Pack``/``Send``/``Recv``/``Unpack``) and its directive
  replacement of Listing 5 (:mod:`~repro.apps.wllsms.distribute`);
* the random-spin-configuration transfer of Listing 6 (``MPI_Isend`` +
  per-request ``MPI_Wait`` loops), the paper's ``Waitall`` ablation,
  and the directive version of Listing 7 with communication/
  computation overlap (:mod:`~repro.apps.wllsms.setevec`);
* a real (toy Heisenberg) energy model so the Wang-Landau loop
  computes checkable numbers (:mod:`~repro.apps.wllsms.wanglandau`,
  :mod:`~repro.apps.wllsms.corestates`).

The physics is deliberately miniature; the communication — message
sizes, counts, roles, synchronization structure — is the paper's.
"""

from repro.apps.wllsms.atom import ATOM_SCALARS, AtomData, make_atoms
from repro.apps.wllsms.liz import Topology
from repro.apps.wllsms.app import AppConfig, PhaseTimes, run_app

__all__ = [
    "ATOM_SCALARS",
    "AtomData",
    "make_atoms",
    "Topology",
    "AppConfig",
    "PhaseTimes",
    "run_app",
]
