"""``calculateCoreStates``: the energy kernel the paper overlaps.

The real WL-LSMS solves the Dirac equation for the core electrons; we
substitute a miniature-but-real computation (a spin-coupled sum over
the core-state ladder) plus a modelled cost so the compute:
communication ratio can be set to the paper's measured 19:1 — and
scaled by the projected 10x GPU speedup Fig. 5 assumes.

The paper notes the *first* part of the computation does not depend on
the random spin configurations, which is what makes overlapping it
with the spin-configuration communication legal. We expose that split:
``phase1_energy`` uses only the atom's own data (overlappable),
``phase2_energy`` couples to the received spin vector.
"""

from __future__ import annotations

import numpy as np

from repro.apps.wllsms.atom import AtomData
from repro.core.buffers import array_of
from repro.sim.process import Env


def phase1_energy(env: Env, atom: AtomData, *,
                  cost_seconds: float) -> float:
    """Spin-independent core-state preparation (overlappable).

    Charges ``cost_seconds`` of modelled compute and returns the
    spin-independent part of the atom's core energy.
    """
    ec = array_of(atom.ec)
    nc = array_of(atom.nc)
    vr = array_of(atom.vr)
    env.compute(cost_seconds, label="calculateCoreStates.phase1")
    # Sum of occupied core levels, weighted by degeneracy 2(2l+1)-ish,
    # plus a potential-well correction from the radial grid.
    degeneracy = 2.0 * (2.0 * np.abs(array_of(atom.lc)) + 1.0)
    well = float(vr[:, 0].mean()) * 1e-3
    return float((ec * degeneracy).sum() / max(nc.max(), 1)) + well


def phase2_energy(env: Env, atom: AtomData, spin: np.ndarray, *,
                  cost_seconds: float) -> float:
    """Spin-coupled correction (must wait for the received evec)."""
    env.compute(cost_seconds, label="calculateCoreStates.phase2")
    s = array_of(atom.scalars)
    vdif = float(s["vdif"][0])
    zcor = float(s["zcorss"][0])
    moment = float(np.clip(spin[2], -1.0, 1.0))  # z-projection coupling
    return -0.5 * zcor * moment + vdif


def core_state_energy(env: Env, atom: AtomData, spin: np.ndarray, *,
                      phase1_seconds: float,
                      phase2_seconds: float) -> float:
    """Full ``calculateCoreStates`` for one atom."""
    return (phase1_energy(env, atom, cost_seconds=phase1_seconds)
            + phase2_energy(env, atom, spin, cost_seconds=phase2_seconds))


def calibrated_cost(model, group_size: int, *, ratio: float = 19.0,
                    gpu_speedup: float = 1.0) -> float:
    """Per-rank core-state compute seconds for one WL step.

    Section IV-B: the overall compute:communication ratio in WL-LSMS is
    19:1, so the kernel cost is set to ``ratio`` times the estimated
    original spin-configuration communication time (the privileged
    rank's serialized per-message software path), divided by the
    assumed accelerator speedup (Fig. 5 projects 10x).
    """
    tp = model.transport("mpi2s")
    per_message = (tp.send_overhead(24) + model.request_alloc_overhead
                   + model.wait_overhead)
    comm_time = (group_size - 1) * per_message
    return ratio * comm_time / gpu_speedup
