"""The assembled WL-LSMS mini-application.

``run_app(AppConfig(...))`` builds the topology, runs the simulated
SPMD program — atom distribution, then ``wl_steps`` Wang-Landau steps
of (spin dispatch, setEvec, core-state computation, energy collection,
WL update) — and returns per-phase virtual timings plus the physics
outputs. The communication variant under test is selected by
``variant`` (+ ``target``/``overlap`` for the directive), everything
else being identical, which is what makes the Figure 3/4/5 comparisons
apples-to-apples.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import mpi, shmem
from repro.apps.wllsms import corestates, distribute, setevec
from repro.apps.wllsms.atom import ATOM_SCALARS, AtomData, make_atoms
from repro.apps.wllsms.liz import Topology
from repro.apps.wllsms.wanglandau import (
    WangLandau,
    heisenberg_energy,
    random_spins,
)
from repro.netmodel import gemini_model
from repro.netmodel.base import MachineModel
from repro.sim import Engine
from repro.sim.process import Env
from repro.util.rng import rank_rng

VARIANTS = ("original", "waitall", "directive")


@dataclass(frozen=True)
class AppConfig:
    """One WL-LSMS run's parameters."""

    n_lsms: int = 2
    group_size: int = 16
    #: Radial-grid rows of vr/rhotot (sets the single-atom payload).
    t: int = 512
    #: Core-state rows of ec/nc/lc/kc.
    tc: int = 8
    wl_steps: int = 4
    variant: str = "original"
    target: str = "TARGET_COMM_MPI_2SIDE"
    #: Overlap core-state phase 1 with the setEvec communication
    #: (directive variant only; Fig. 5).
    overlap: bool = False
    #: Fig. 5's projected accelerator speedup of the computation.
    gpu_speedup: float = 1.0
    #: Compute:communication ratio (Section IV-B measured 19:1).
    compute_ratio: float = 19.0
    #: Collect per-group energies with the future-work comm_collective
    #: directive (Section V) instead of a hand-written reduction.
    collective_intent: bool = False
    seed: int = 2013
    model: MachineModel | None = None
    trace: bool = False
    #: Record a span profile (:mod:`repro.profiling`) of the run.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}")
        if self.variant != "directive" and (
                self.target != "TARGET_COMM_MPI_2SIDE" or self.overlap):
            raise ValueError(
                "target/overlap only apply to the directive variant")

    @property
    def topology(self) -> Topology:
        """The WL-LSMS rank layout this config describes."""
        return Topology(n_lsms=self.n_lsms, group_size=self.group_size)

    @property
    def nprocs(self) -> int:
        """Total simulated world size."""
        return self.topology.nprocs

    @property
    def uses_shmem(self) -> bool:
        """True when receive buffers must live on the symmetric heap."""
        return (self.variant == "directive"
                and self.target == "TARGET_COMM_SHMEM")


class PhaseTimes:
    """Per-phase virtual-time spans, collected across ranks and steps."""

    def __init__(self) -> None:
        #: name -> rank -> list of (start, end) episodes.
        self.records: dict[str, dict[int, list[tuple[float, float]]]] = {}

    @contextlib.contextmanager
    def measure(self, env: Env, name: str):
        """Record one (start, end) span of ``name`` on this rank."""
        start = env.now
        yield
        self.records.setdefault(name, {}).setdefault(
            env.rank, []).append((start, env.now))

    def episodes(self, name: str) -> int:
        """Number of recorded episodes of a phase."""
        ranks = self.records.get(name, {})
        return max((len(v) for v in ranks.values()), default=0)

    def episode_duration(self, name: str, episode: int) -> float:
        """Wall span of one episode: latest end minus earliest start."""
        ranks = self.records.get(name, {})
        starts, ends = [], []
        for spans in ranks.values():
            if episode < len(spans):
                starts.append(spans[episode][0])
                ends.append(spans[episode][1])
        if not starts:
            raise KeyError(f"no records for phase {name!r} episode "
                           f"{episode}")
        return max(ends) - min(starts)

    def total_duration(self, name: str) -> float:
        """Sum of all episode spans of a phase."""
        return sum(self.episode_duration(name, e)
                   for e in range(self.episodes(name)))

    def mean_duration(self, name: str) -> float:
        """Average episode span of a phase."""
        n = self.episodes(name)
        return self.total_duration(name) / n if n else 0.0

    def rank_total(self, name: str, rank: int) -> float:
        """Sum of one rank's own spans of a phase (its busy time in the
        phase, free of cross-rank arrival skew — what the paper's
        per-routine timers measure)."""
        spans = self.records.get(name, {}).get(rank, [])
        return sum(end - start for start, end in spans)

    def max_rank_total(self, name: str) -> tuple[int, float]:
        """The (rank, time) with the largest per-rank phase total."""
        ranks = self.records.get(name, {})
        if not ranks:
            raise KeyError(f"no records for phase {name!r}")
        best = max(ranks, key=lambda r: self.rank_total(name, r))
        return best, self.rank_total(name, best)


@dataclass
class AppResult:
    """Everything a benchmark or test wants from one run."""

    config: AppConfig
    phases: PhaseTimes
    stats: Any
    #: Final per-group energies as seen by the WL rank.
    group_energies: list[float]
    #: The WL sampler state after the run.
    wang_landau: WangLandau
    makespan: float
    trace: Any = None
    #: Per-rank virtual finish times (determinism regression tests
    #: compare these across scheduler implementations).
    finish_times: list[float] | None = None
    #: Span profile of the run (``AppConfig.profile=True`` only).
    profile: Any = None


def run_app(config: AppConfig, *, engine_cls: type[Engine] = Engine
            ) -> AppResult:
    """Execute one configured WL-LSMS run on the simulator.

    ``engine_cls`` selects the scheduler implementation — the default
    :class:`~repro.sim.Engine`, or e.g.
    :class:`~repro.sim.SeedEngine` for determinism regressions.
    """
    topo = config.topology
    model = config.model or gemini_model()
    engine = engine_cls(topo.nprocs, trace=config.trace,
                        profile=config.profile)
    phases = PhaseTimes()
    num_types = topo.atoms_per_group()

    total_cost = corestates.calibrated_cost(
        model, config.group_size, ratio=config.compute_ratio,
        gpu_speedup=config.gpu_speedup)
    phase1_seconds = 0.6 * total_cost
    phase2_seconds = 0.4 * total_cost

    wl_state: dict[str, Any] = {}

    def main(env: Env) -> Any:
        comm = mpi.init(env, model)
        rank = env.rank

        # --- setup: receive-side storage (symmetric for SHMEM) --------
        if config.uses_shmem:
            sh = shmem.init(env)
            my_atom = _symmetric_atom(sh, config.t, config.tc)
            my_evec = sh.malloc(3, np.float64)
        else:
            my_atom = AtomData.empty(config.t, config.tc)
            my_evec = np.zeros(3)

        deck: list[AtomData] | None = None
        atoms_input: list[AtomData] | None = None
        if topo.is_wl(rank):
            atoms_input = make_atoms(config.seed, num_types,
                                     t=config.t, tc=config.tc)

        # --- phase: single-atom-data distribution (Fig. 3) ------------
        with phases.measure(env, "distribute"):
            if topo.is_wl(rank):
                distribute.stage_a_send_decks(comm, topo, atoms_input)
            elif topo.is_privileged(rank):
                deck = distribute.stage_a_recv_deck(
                    comm, topo, config.t, config.tc)
            if not topo.is_wl(rank):
                if config.variant == "directive":
                    distribute.distribute_directive(
                        env, topo, deck, my_atom, target=config.target)
                else:
                    distribute.distribute_original(
                        comm, topo, env, deck, my_atom)

        # --- Wang-Landau loop ------------------------------------------
        if topo.is_wl(rank):
            return _wl_main(env, comm, topo, config, phases, wl_state)
        return _lsms_main(env, comm, topo, config, phases, my_atom,
                          my_evec, phase1_seconds, phase2_seconds)

    run = engine.run(main)
    wl = wl_state["sampler"]
    return AppResult(
        config=config,
        phases=phases,
        stats=engine.stats,
        group_energies=wl_state["energies"],
        wang_landau=wl,
        makespan=run.makespan,
        trace=engine.trace,
        finish_times=run.finish_times,
        profile=run.profile,
    )


def _symmetric_atom(sh: shmem.Shmem, t: int, tc: int) -> AtomData:
    """Atom storage on the symmetric heap (SHMEM-target rbufs)."""
    return AtomData(
        scalars=sh.malloc(1, ATOM_SCALARS.to_numpy_dtype()),
        vr=sh.malloc((t, 2), np.float64),
        rhotot=sh.malloc((t, 2), np.float64),
        ec=sh.malloc((tc, 2), np.float64),
        nc=sh.malloc((tc, 2), np.int32),
        lc=sh.malloc((tc, 2), np.int32),
        kc=sh.malloc((tc, 2), np.int32),
    )


def _wl_main(env: Env, comm: mpi.Comm, topo: Topology, config: AppConfig,
             phases: PhaseTimes, wl_state: dict) -> dict:
    """The Wang-Landau rank's program."""
    num_types = topo.atoms_per_group()
    rng = rank_rng(config.seed, 0)
    # The reported group energy is the spin-dependent part only (the
    # spin-independent core sum is a constant shift WL never needs):
    # |e2| <= 0.5*zcorss per atom, |heisenberg| <= J*(n-1).
    bound = 0.5 * 18.0 * num_types + 1.0 * (num_types - 1) + 5.0
    wl = WangLandau(e_min=-bound, e_max=bound)
    wl_state["sampler"] = wl
    current_e = [np.inf] * topo.n_lsms
    for _step in range(config.wl_steps):
        configs = [random_spins(rng, num_types)
                   for _ in range(topo.n_lsms)]
        with phases.measure(env, "wl_dispatch"):
            for g in range(topo.n_lsms):
                comm.Send(configs[g], dest=topo.privileged_rank_of(g),
                          tag=11)
        with phases.measure(env, "wl_collect"):
            energies = np.zeros(1)
            new_e = []
            for g in range(topo.n_lsms):
                comm.Recv(energies, source=topo.privileged_rank_of(g),
                          tag=12)
                new_e.append(float(energies[0]))
        for g, e in enumerate(new_e):
            if not np.isfinite(current_e[g]) or \
                    wl.accept(current_e[g], e, rng):
                current_e[g] = e
            wl.record(current_e[g])
    wl_state["energies"] = current_e
    return {"ln_g": wl.normalized_ln_g(), "refinements": wl.refinements}


def _lsms_main(env: Env, comm: mpi.Comm, topo: Topology,
               config: AppConfig, phases: PhaseTimes, my_atom: AtomData,
               my_evec, phase1_seconds: float,
               phase2_seconds: float) -> float:
    """One LSMS rank's program (privileged or not)."""
    rank = env.rank
    g = topo.group_of(rank)
    group_comm = setevec._group_comm(env, topo)
    num_types = topo.atoms_per_group()
    from repro.core.buffers import array_of
    last_energy = 0.0
    for _step in range(config.wl_steps):
        ev = None
        if topo.is_privileged(rank):
            ev = np.zeros(3 * num_types)
            comm.Recv(ev, source=topo.wl_rank, tag=11)

        overlapped = {"done": False}

        def overlap_body(env_: Env, _p: int,
                         _state=overlapped) -> None:
            # Spin-independent phase 1 runs once, inside the first
            # directive instance's body: overlapped with the in-flight
            # spin transfers (Listing 7 / Fig. 5).
            if not _state["done"]:
                _state["e1"] = corestates.phase1_energy(
                    env_, my_atom, cost_seconds=phase1_seconds)
                _state["done"] = True

        with phases.measure(env, "setevec"):
            if config.variant == "original":
                setevec.set_evec_original(env, topo, ev, my_evec)
            elif config.variant == "waitall":
                setevec.set_evec_waitall(env, topo, ev, my_evec)
            else:
                setevec.set_evec_directive(
                    env, topo, ev, my_evec, target=config.target,
                    overlap_body=overlap_body if config.overlap
                    else None)

        with phases.measure(env, "corestates"):
            if overlapped["done"]:
                e1 = overlapped["e1"]
            else:
                e1 = corestates.phase1_energy(
                    env, my_atom, cost_seconds=phase1_seconds)
            e2 = corestates.phase2_energy(
                env, my_atom, array_of(my_evec),
                cost_seconds=phase2_seconds)
            last_energy = e1 + e2

        with phases.measure(env, "collect"):
            # Only the spin-dependent part matters to WL (the
            # spin-independent sum is a configuration-independent
            # shift); reporting e2 keeps the energies inside the
            # sampler's window.
            if config.collective_intent:
                # Future-work path (Section V): express the many-to-one
                # collection as a collective-intent directive.
                from repro.core import comm_collective
                members = topo.members_of(g)
                gathered = np.zeros((len(members), 1))
                gathered[members.index(rank), 0] = e2
                comm_collective(env, pattern="PATTERN_MANY_TO_ONE",
                                buf=gathered,
                                root=topo.privileged_rank_of(g),
                                group=members)
                total = (np.array([gathered.sum()])
                         if topo.is_privileged(rank) else None)
            else:
                contribution = np.array([e2])
                total = np.zeros(1) if group_comm.rank == 0 else None
                group_comm.Reduce(contribution, total, op="sum",
                                  root=0)
            if topo.is_privileged(rank):
                # Add the exchange coupling of the group's spin
                # configuration and report to the WL rank.
                spins = ev.reshape(num_types, 3)
                total[0] += heisenberg_energy(spins.reshape(-1))
                comm.Send(total, dest=topo.wl_rank, tag=12)
    return last_energy
