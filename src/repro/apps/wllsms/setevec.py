"""Random-spin-configuration transfer: Listing 6 / ablation / Listing 7.

Within one LSMS instance the privileged rank holds the new spin
configuration for all ``num_types`` atoms (3 doubles each, 24-byte
messages) and delivers each atom's vector to its owner:

* :func:`set_evec_original` — Listing 6: a loop of ``MPI_Isend`` with
  user-managed request arrays, completed by a *loop of* ``MPI_Wait``;
  receivers mirror with ``MPI_Irecv`` + wait loops.
* :func:`set_evec_waitall` — the paper's ablation: identical except a
  single ``MPI_Waitall`` per side ("about 2.6x over the original").
* :func:`set_evec_directive` — Listing 7: ``comm_p2p`` per atom inside
  one ``comm_parameters`` region (``count(3)``,
  ``max_comm_iter(num_types)``, sync at ``END_PARAM_REGION``),
  re-targetable to MPI or SHMEM, with an optional overlapped body
  (the core-state computation of Fig. 5).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro import mpi
from repro.apps.wllsms.liz import Topology
from repro.core import comm_p2p, comm_parameters
from repro.core.buffers import array_of
from repro.sim.process import Env


def _group_comm(env: Env, topo: Topology) -> mpi.Comm:
    """The LSMS instance's communicator (privileged = local rank 0)."""
    world = mpi.init(env)
    g = topo.group_of(env.rank)
    group = world.world.group_for(tuple(topo.members_of(g)))
    return mpi.Comm(world.world, group, env)


def set_evec_original(env: Env, topo: Topology, ev: np.ndarray | None,
                      my_evec: np.ndarray) -> None:
    """Listing 6 transcription over the instance communicator."""
    comm = _group_comm(env, topo)
    num_types = topo.atoms_per_group()
    if comm.rank == 0:
        requests = []
        for p in range(num_types):
            if p == 0:
                array_of(my_evec)[...] = ev[3 * p:3 * p + 3]
                continue
            requests.append(
                comm.Isend(ev[3 * p:3 * p + 3], dest=p, tag=p))
        for req in requests:
            comm.Wait(req)
    else:
        num_local = 1
        requests = []
        for _ in range(num_local):
            requests.append(
                comm.Irecv(array_of(my_evec), source=0, tag=comm.rank))
        for req in requests:
            comm.Wait(req)


def set_evec_waitall(env: Env, topo: Topology, ev: np.ndarray | None,
                     my_evec: np.ndarray) -> None:
    """The ablation: Listing 6 with one MPI_Waitall per loop."""
    comm = _group_comm(env, topo)
    num_types = topo.atoms_per_group()
    if comm.rank == 0:
        requests = []
        for p in range(num_types):
            if p == 0:
                array_of(my_evec)[...] = ev[3 * p:3 * p + 3]
                continue
            requests.append(
                comm.Isend(ev[3 * p:3 * p + 3], dest=p, tag=p))
        comm.Waitall(requests)
    else:
        requests = [comm.Irecv(array_of(my_evec), source=0,
                               tag=comm.rank)]
        comm.Waitall(requests)


def set_evec_directive(env: Env, topo: Topology, ev: np.ndarray | None,
                       my_evec, *,
                       target: str = "TARGET_COMM_MPI_2SIDE",
                       overlap_body: Callable[[Env, int], None] | None
                       = None) -> None:
    """Listing 7 transcription.

    ``overlap_body(env, p)``, when given, is the computation overlapped
    with the in-flight transfers (legal because it is the
    spin-independent phase; see :mod:`repro.apps.wllsms.corestates`).
    On receiving ranks it runs inside each instance's body; on the
    privileged sender it runs once *after* all sends are posted (still
    inside the region, so it overlaps the sends) — computing before
    posting would delay every receiver.
    """
    rank = env.rank
    g = topo.group_of(rank)
    priv = topo.privileged_rank_of(g)
    members = topo.members_of(g)
    num_types = topo.atoms_per_group()
    if rank == priv:
        array_of(my_evec)[...] = ev[0:3]
    with comm_parameters(env,
                         sendwhen=rank == priv,
                         receivewhen=rank != priv,
                         sender=priv,
                         count=3,
                         max_comm_iter=num_types,
                         place_sync="END_PARAM_REGION",
                         target=target):
        for p in range(1, num_types):
            owner = members[p]
            sb = (ev[3 * p:3 * p + 3] if rank == priv
                  else array_of(my_evec))
            with comm_p2p(env, receiver=owner,
                          sendwhen=rank == priv,
                          receivewhen=rank == owner,
                          sbuf=sb, rbuf=my_evec):
                if overlap_body is not None and rank != priv:
                    overlap_body(env, p)
        if overlap_body is not None and rank == priv:
            overlap_body(env, 0)
