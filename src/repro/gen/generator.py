"""Seed-reproducible random directive-program generator.

Every program is grown from one :class:`random.Random` seeded with the
caller's seed, so a ``(seed, mode, nprocs)`` triple reproduces the same
source text bit-for-bit forever — the property every repro hint and CI
stats line stands on.

Constraint modes
----------------

* ``"clean"`` — every directive is drawn from paired SPMD templates
  (ring shifts, guarded neighbour shifts, xor partners, fixed
  src->dst transfers) and then *checked*: the generator evaluates the
  clause expressions for every rank of the chosen world and keeps the
  directive only when every guarded send has exactly one matching
  guarded receive and vice versa. Buffers are never shared between
  directives. A clean program must verify clean and run clean — any
  finding on either side is oracle evidence.
* ``"racy"`` — a clean program with one deliberately planted defect
  (an overlap-body write into an in-flight receive or send buffer, or
  two concurrent directives delivering into one shared receive
  buffer). The planted kind is recorded on
  :attr:`GeneratedProgram.planted`.
* ``"unconstrained"`` — the matching check is skipped and rank
  expressions come from an adversarial grab-bag; programs may
  deadlock, mismatch or be trivially fine. The oracle only requires
  static and dynamic verdicts to *agree*, not any particular verdict.

The grammar covers the surface the analyses reason about: standalone
``comm_p2p``, single and adjacent ``comm_parameters`` regions (all
three ``place_sync`` spellings), nested regions, ``max_comm_iter``
loop regions, per-directive ``target`` overrides, optional ``count``,
``compute_us`` interleavings, data-seeding element stores and
``consume()`` uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import exprs
from repro.core.clauses import Target
from repro.errors import ReproError

__all__ = ["MODES", "GeneratedProgram", "generate", "generate_many"]

#: The constraint modes the generator understands.
MODES = ("clean", "racy", "unconstrained")

#: World sizes the generator draws from: small enough that the
#: thread-per-rank dynamic runs stay cheap at thousands of seeds,
#: large enough to exercise guards, wrap-around and non-power-of-two
#: partner math.
_NPROCS_CHOICES = (2, 3, 4, 5, 6)

#: Buffer lengths drawn for declarations.
_LEN_CHOICES = (4, 6, 8, 12, 16)

#: Directive pattern templates as ``(weight, name)``; the clause
#: builders live in :func:`_template_clauses`.
_TEMPLATES = (
    (3, "ring"),
    (2, "ring-rev"),
    (3, "shift"),
    (2, "evenodd"),
    (1, "xor"),
    (2, "pair"),
)

#: Program section shapes as ``(weight, name)``.
_SECTIONS = (
    (3, "p2p"),          # one standalone comm_p2p
    (4, "region"),       # one comm_parameters region, 1-3 directives
    (1, "chain"),        # two adjacent regions (END_ADJ_PARAM_REGIONS)
    (1, "nested"),       # a region containing a region
    (1, "iter"),         # a max_comm_iter loop region (Listing 3 shape)
)

#: Rank-expression grab-bag for unconstrained mode (text, may be
#: out-of-range, unmatched, or accidentally fine).
_WILD_RANKS = (
    "rank", "0", "1", "nprocs-1", "rank+1", "rank-1",
    "(rank+1)%nprocs", "(rank-1+nprocs)%nprocs", "rank^1",
    "nprocs", "rank+2", "(rank*2)%nprocs",
)

_WILD_WHENS = (
    None, "rank%2==0", "rank%2==1", "rank>0", "rank<nprocs-1",
    "rank==0", "rank!=0", "1",
)


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program, addressable by ``(seed, mode, nprocs)``."""

    seed: int
    mode: str
    nprocs: int
    source: str
    #: The planted defect kind for racy mode ("" otherwise).
    planted: str = ""

    def describe(self) -> str:
        """One-line identity for logs and repro hints."""
        planted = f" planted={self.planted}" if self.planted else ""
        return (f"seed={self.seed} mode={self.mode} "
                f"nprocs={self.nprocs}{planted}")


def generate(seed: int, mode: str = "clean",
             nprocs: int | None = None) -> GeneratedProgram:
    """Generate one program for ``seed``.

    ``mode`` must be one of :data:`MODES`; ``nprocs`` defaults to a
    seed-determined draw from the small-world pool.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    rng = random.Random(seed)
    n = nprocs if nprocs is not None else rng.choice(_NPROCS_CHOICES)
    return _Builder(rng, mode, n).build(seed)


def generate_many(seeds, mode: str = "mix",
                  nprocs: int | None = None) -> list[GeneratedProgram]:
    """Generate one program per seed.

    ``mode="mix"`` deals modes out seed-deterministically (roughly
    half clean, a quarter racy, a quarter unconstrained — the blend
    the differential CI sweep wants).
    """
    out = []
    for seed in seeds:
        chosen = mode
        if mode == "mix":
            r = random.Random(seed ^ 0x5EED).random()
            chosen = ("clean" if r < 0.5
                      else "racy" if r < 0.75 else "unconstrained")
        out.append(generate(seed, chosen, nprocs))
    return out


# ---------------------------------------------------------------------------
# Template matching check (the "clean" constraint)


@dataclass
class _Directive:
    """Clause text of one candidate ``comm_p2p``."""

    sender: str
    receiver: str
    sendwhen: str | None = None
    receivewhen: str | None = None
    sbuf: str = ""
    rbuf: str = ""
    count: int | None = None
    target: Target | None = None

    def clause_text(self) -> str:
        parts = [f"sender({self.sender})", f"receiver({self.receiver})"]
        if self.sendwhen is not None:
            parts.append(f"sendwhen({self.sendwhen})")
            parts.append(f"receivewhen({self.receivewhen})")
        parts.append(f"sbuf({self.sbuf})")
        parts.append(f"rbuf({self.rbuf})")
        if self.count is not None:
            parts.append(f"count({self.count})")
        if self.target is not None:
            parts.append(f"target({self.target.value})")
        return " ".join(parts)


def _evaluate(text: str | None, rank: int, nprocs: int):
    if text is None:
        return True
    return exprs.evaluate(text, {"rank": rank, "nprocs": nprocs,
                                 "size": nprocs})


def matches_cleanly(d: _Directive, nprocs: int) -> bool:
    """True when every guarded send pairs with exactly one guarded
    receive and vice versa, over all ranks of the world.

    This is the constraint that makes "clean" mean something: the
    generator evaluates the candidate's clause expressions exactly as
    each rank would and checks the induced bipartite matching, instead
    of trusting template algebra to survive wrap-arounds and odd world
    sizes.
    """
    try:
        senders: dict[int, int] = {}     # dst -> src
        receivers: dict[int, int] = {}   # dst -> expected src
        for r in range(nprocs):
            if _evaluate(d.sendwhen, r, nprocs):
                dst = _evaluate(d.receiver, r, nprocs)
                if not isinstance(dst, int) or isinstance(dst, bool):
                    return False
                if not 0 <= dst < nprocs or dst in senders:
                    return False
                senders[dst] = r
            if _evaluate(d.receivewhen, r, nprocs):
                src = _evaluate(d.sender, r, nprocs)
                if not isinstance(src, int) or isinstance(src, bool):
                    return False
                if not 0 <= src < nprocs:
                    return False
                receivers[r] = src
    except (ReproError, TypeError, ValueError, ZeroDivisionError):
        return False
    if set(senders) != set(receivers):
        return False
    return all(senders[dst] == receivers[dst] for dst in senders)


# ---------------------------------------------------------------------------
# Builder


def _weighted(rng: random.Random, table) -> str:
    names = [n for _, n in table]
    weights = [w for w, _ in table]
    return rng.choices(names, weights=weights, k=1)[0]


@dataclass
class _Buffer:
    name: str
    length: int


class _Builder:
    """Grows one program from one RNG."""

    def __init__(self, rng: random.Random, mode: str, nprocs: int):
        self.rng = rng
        self.mode = mode
        self.nprocs = nprocs
        self.buffers: list[_Buffer] = []
        self.rbufs: list[_Buffer] = []
        #: Directives emitted so far (for racy-mode planting).
        self.placed: list[_Directive] = []

    # -- buffers -----------------------------------------------------------

    def fresh_buffer(self) -> _Buffer:
        buf = _Buffer(f"buf{len(self.buffers)}",
                      self.rng.choice(_LEN_CHOICES))
        self.buffers.append(buf)
        return buf

    # -- directives --------------------------------------------------------

    def directive(self, forced_target: Target | None) -> _Directive:
        """One candidate directive honouring the constraint mode."""
        for _attempt in range(8):
            d = self._candidate(forced_target)
            if self.mode == "unconstrained":
                return d
            if matches_cleanly(d, self.nprocs):
                return d
        # Template algebra failed for this world (e.g. xor partners on
        # an odd nprocs); the ring always matches.
        return self._from_template("ring", forced_target)

    def _candidate(self, forced_target: Target | None) -> _Directive:
        if self.mode == "unconstrained" and self.rng.random() < 0.5:
            return self._wild(forced_target)
        name = _weighted(self.rng, _TEMPLATES)
        return self._from_template(name, forced_target)

    def _from_template(self, name: str,
                       forced_target: Target | None) -> _Directive:
        rng, n = self.rng, self.nprocs
        if name == "ring":
            d = _Directive(sender="(rank-1+nprocs)%nprocs",
                           receiver="(rank+1)%nprocs")
        elif name == "ring-rev":
            d = _Directive(sender="(rank+1)%nprocs",
                           receiver="(rank-1+nprocs)%nprocs")
        elif name == "shift":
            k = rng.choice((1, 2))
            d = _Directive(sender=f"rank-{k}", receiver=f"rank+{k}",
                           sendwhen=f"rank+{k}<nprocs",
                           receivewhen=f"rank>={k}")
        elif name == "evenodd":
            d = _Directive(sender="rank-1", receiver="rank+1",
                           sendwhen="rank%2==0 && rank+1<nprocs",
                           receivewhen="rank%2==1")
        elif name == "xor":
            k = rng.choice((1, 2))
            d = _Directive(sender=f"rank^{k}", receiver=f"rank^{k}",
                           sendwhen=f"(rank^{k})<nprocs",
                           receivewhen=f"(rank^{k})<nprocs")
        elif name == "pair":
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if dst == src:
                dst = (src + 1) % n
            d = _Directive(sender=str(src), receiver=str(dst),
                           sendwhen=f"rank=={src}",
                           receivewhen=f"rank=={dst}")
        else:  # pragma: no cover - template table is closed
            raise ValueError(name)
        self._decorate(d, forced_target)
        return d

    def _wild(self, forced_target: Target | None) -> _Directive:
        rng = self.rng
        d = _Directive(sender=rng.choice(_WILD_RANKS),
                       receiver=rng.choice(_WILD_RANKS))
        when = rng.choice(_WILD_WHENS)
        if when is not None:
            d.sendwhen = when
            d.receivewhen = rng.choice(
                [w for w in _WILD_WHENS if w is not None])
        self._decorate(d, forced_target)
        return d

    def _decorate(self, d: _Directive,
                  forced_target: Target | None) -> None:
        """Attach buffers and optional count/target clauses."""
        rng = self.rng
        sbuf = self.fresh_buffer()
        rbuf = self.fresh_buffer()
        d.sbuf, d.rbuf = sbuf.name, rbuf.name
        if rng.random() < 0.3:
            d.count = rng.randrange(
                1, min(sbuf.length, rbuf.length) + 1)
        if forced_target is not None:
            d.target = forced_target
        elif rng.random() < 0.4:
            d.target = rng.choice(list(Target))
        self.rbufs.append(rbuf)
        self.placed.append(d)

    # -- raw code ----------------------------------------------------------

    def seed_stores(self, d: _Directive) -> list[str]:
        """Element stores giving each rank's send data a distinct value
        (what makes the cross-target payload comparison meaningful)."""
        buf = next(b for b in self.buffers if b.name == d.sbuf)
        m = self.rng.choice((100, 1000))
        k = self.rng.randrange(1, min(buf.length, 4) + 1)
        return [f"{buf.name}[{i}] = rank * {m} + {i + 1};"
                for i in range(k)]

    def compute_line(self) -> str:
        return f"compute_us({self.rng.choice((1, 2, 5, 10))});"

    # -- sections ----------------------------------------------------------

    def build(self, seed: int) -> GeneratedProgram:
        rng = self.rng
        sections: list[str] = []
        for _ in range(rng.randrange(1, 4)):
            kind = _weighted(rng, _SECTIONS)
            sections.append(self._section(kind))
        planted = ""
        if self.mode == "racy":
            planted = self._plant(sections)
        body = "\n".join(sections)
        decls = "\n".join(
            f"double {b.name}[{b.length}];" for b in self.buffers)
        uses = "".join(f"consume({b.name});\n"
                       for b in self.rbufs if rng.random() < 0.7)
        source = (f"/* generated: seed={seed} mode={self.mode} "
                  f"nprocs={self.nprocs} */\n"
                  f"{decls}\nint rank, nprocs;\n{body}\n{uses}")
        return GeneratedProgram(seed=seed, mode=self.mode,
                                nprocs=self.nprocs, source=source,
                                planted=planted)

    def _section(self, kind: str) -> str:
        rng = self.rng
        forced = rng.choice(list(Target)) if rng.random() < 0.2 else None
        if kind == "p2p":
            return self._p2p_text(self.directive(forced), indent=0)
        if kind == "region":
            return self._region_text(
                [self.directive(forced)
                 for _ in range(rng.randrange(1, 4))])
        if kind == "chain":
            first = self._region_text(
                [self.directive(forced)],
                place_sync="END_ADJ_PARAM_REGIONS")
            second = self._region_text(
                [self.directive(forced)],
                place_sync="END_ADJ_PARAM_REGIONS")
            return f"{first}\n{second}"
        if kind == "nested":
            inner = self._region_text([self.directive(forced)])
            outer_d = self.directive(forced)
            inner_lines = "\n".join(
                "    " + ln for ln in inner.splitlines())
            return ("#pragma comm_parameters\n{\n"
                    f"{self._p2p_text(outer_d, indent=4)}\n"
                    f"{inner_lines}\n}}")
        if kind == "iter":
            iters = rng.choice((2, 3))
            d = self.directive(forced)
            stores = "\n".join("    " + s for s in self.seed_stores(d))
            return (f"#pragma comm_parameters max_comm_iter({iters})\n"
                    "{\n"
                    f"{stores}\n"
                    f"{self._p2p_text(d, indent=4)}\n"
                    "}")
        raise ValueError(kind)  # pragma: no cover - closed table

    def _p2p_text(self, d: _Directive, indent: int,
                  body_lines: list[str] | None = None) -> str:
        rng = self.rng
        pad = " " * indent
        stores = [f"{pad}{s}" for s in self.seed_stores(d)]
        head = f"{pad}#pragma comm_p2p {d.clause_text()}"
        body = list(body_lines or [])
        if rng.random() < 0.5:
            body.append(self.compute_line())
        if body:
            inner = "\n".join(f"{pad}    {ln}" for ln in body)
            block = f"{head}\n{pad}{{\n{inner}\n{pad}}}"
        else:
            block = f"{head}\n{pad}{{\n{pad}}}"
        return "\n".join(stores + [block])

    def _region_text(self, directives: list[_Directive],
                     place_sync: str | None = None) -> str:
        rng = self.rng
        clauses = ""
        if place_sync is not None:
            clauses = f" place_sync({place_sync})"
        elif rng.random() < 0.3:
            clauses = " place_sync(END_PARAM_REGION)"
        inner = "\n".join(self._p2p_text(d, indent=4)
                          for d in directives)
        return f"#pragma comm_parameters{clauses}\n{{\n{inner}\n}}"

    # -- racy planting -----------------------------------------------------

    def _plant(self, sections: list[str]) -> str:
        """Inject one defect into an already-built clean program.

        The defect is planted textually into the *first* directive body
        of a section (every section's directives carry an empty or
        compute-only body block, so the insertion point is the line
        after the pragma's opening brace).
        """
        rng = self.rng
        victim = rng.choice(self.placed)
        kind = rng.choice(("overlap-write-rbuf", "overlap-write-sbuf",
                           "shared-rbuf"))
        if kind == "shared-rbuf":
            # Retarget another directive's delivery into the victim's
            # receive buffer: two unordered delivery writes.
            others = [d for d in self.placed
                      if d is not victim and d.rbuf != victim.rbuf]
            if not others:
                kind = "overlap-write-rbuf"
            else:
                other = rng.choice(others)
                old = f"rbuf({other.rbuf})"
                new = f"rbuf({victim.rbuf})"
                for i, text in enumerate(sections):
                    if old in text:
                        sections[i] = text.replace(old, new, 1)
                        return kind
                kind = "overlap-write-rbuf"
        buf = victim.rbuf if kind == "overlap-write-rbuf" else victim.sbuf
        needle = f"#pragma comm_p2p {victim.clause_text()}"
        store = f"{buf}[0] = 7.0;"
        for i, text in enumerate(sections):
            at = text.find(needle)
            if at == -1:
                continue
            brace = text.find("{", at)
            if brace == -1:
                continue
            indent = " " * (_line_indent(text, at) + 4)
            sections[i] = (text[:brace + 1]
                           + f"\n{indent}{store}" + text[brace + 1:])
            return kind
        return ""  # pragma: no cover - the victim always has a body


def _line_indent(text: str, at: int) -> int:
    start = text.rfind("\n", 0, at) + 1
    line = text[start:]
    return len(line) - len(line.lstrip())
