"""Delta-minimizer for disagreeing generated programs.

Given a source text and an *interest predicate* (``predicate(source)
-> bool``, True while the disagreement reproduces), the minimizer
repeatedly tries structure-aware shrinking edits — drop a statement,
unwrap a region, drop an optional clause, drop a raw line — keeping an
edit whenever the shrunk program still parses, still round-trips
through :meth:`Program.to_source`, and still satisfies the predicate.
Passes repeat to a fixpoint, so the result is *1-minimal* with respect
to the edit set: no single remaining edit preserves the disagreement.

Properties the tests pin:

* **idempotence** — minimizing a minimized source returns it unchanged;
* **monotonicity** — the statement count never grows during a run;
* **determinism** — edits are enumerated in a fixed structural order,
  so the same (source, predicate) pair always shrinks to the same
  result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.ir import Node, P2PNode, ParamRegionNode, Program, RawCode
from repro.core.pragma import parse_program
from repro.errors import ReproError

__all__ = ["MinimizeResult", "minimize_source", "statement_count"]

#: Clause names an edit may drop (required clauses are kept; the
#: sendwhen/receivewhen pair drops together — the parser rejects one
#: without the other).
_OPTIONAL_EXPRS = ("count", "max_comm_iter")


@dataclass(frozen=True)
class MinimizeResult:
    """Outcome of one :func:`minimize_source` run."""

    source: str
    #: Statement counts before and after.
    initial_statements: int
    final_statements: int
    #: Shrinking edits accepted / candidate edits tried.
    accepted: int
    attempts: int


def statement_count(program: Program) -> int:
    """Size metric: directives plus raw lines, recursively."""
    total = 0

    def walk(nodes: list[Node]) -> None:
        nonlocal total
        for node in nodes:
            if isinstance(node, RawCode):
                total += sum(1 for ln in node.lines if ln.strip())
            else:
                total += 1
                walk(node.body)

    walk(program.nodes)
    return total


def minimize_source(source: str,
                    predicate: Callable[[str], bool],
                    max_rounds: int = 64) -> MinimizeResult:
    """Shrink ``source`` while ``predicate`` stays True.

    The input must itself satisfy the predicate (otherwise there is
    nothing to minimize and the input is returned unchanged). Each
    round enumerates every applicable edit on the *current* program in
    structural order and keeps the first that preserves the predicate;
    a round with no accepted edit ends the run.
    """
    program = parse_program(source)
    current = program.to_source()
    if not predicate(current):
        n = statement_count(program)
        return MinimizeResult(source=source, initial_statements=n,
                              final_statements=n, accepted=0, attempts=0)
    initial = statement_count(program)
    accepted = 0
    attempts = 0
    for _round in range(max_rounds):
        progressed = False
        for edit in _edits(parse_program(current)):
            work = parse_program(current)
            if not edit(work):
                continue
            attempts += 1
            try:
                candidate = work.to_source()
                reparsed = parse_program(candidate)
                if reparsed.to_source() != candidate:
                    continue
            except ReproError:
                continue
            # Strict lexicographic shrink: fewer statements, or equal
            # statements and strictly shorter text (clause drops).
            # Monotone decrease is what guarantees termination and the
            # monotonicity property the tests pin.
            if ((statement_count(reparsed), len(candidate))
                    >= (statement_count(parse_program(current)),
                        len(current))):
                continue
            if predicate(candidate):
                current = candidate
                accepted += 1
                progressed = True
                break
        if not progressed:
            break
    return MinimizeResult(
        source=current, initial_statements=initial,
        final_statements=statement_count(parse_program(current)),
        accepted=accepted, attempts=attempts)


# ---------------------------------------------------------------------------
# Edit enumeration
#
# An edit is a callable applied to a FRESHLY PARSED program; it returns
# True when it changed something. Edits are addressed by structural
# path (child indices from the root), so the same enumeration order on
# the same source yields the same edit sequence — determinism.


def _edits(program: Program):
    """Every applicable shrinking edit, in structural order."""
    paths = _paths(program)
    # Biggest wins first: drop whole statements (deepest last, so a
    # region is attempted before its children), then unwrap, then
    # clause- and line-level trims.
    for path in paths:
        yield _DropNode(path)
    for path in paths:
        node = _resolve(program, path)
        if isinstance(node, (P2PNode, ParamRegionNode)) and node.body:
            yield _Unwrap(path)
    for path in paths:
        node = _resolve(program, path)
        if isinstance(node, RawCode) and len(node.lines) > 1:
            for i in range(len(node.lines)):
                yield _DropLine(path, i)
        elif isinstance(node, (P2PNode, ParamRegionNode)):
            clauses = node.clauses
            for name in _OPTIONAL_EXPRS:
                if name in clauses.exprs:
                    yield _DropClause(path, name)
            if "sendwhen" in clauses.exprs:
                yield _DropWhens(path)
            if clauses.target is not None:
                yield _DropTarget(path)
            if clauses.place_sync is not None:
                yield _DropPlaceSync(path)
            for buflist in ("sbuf", "rbuf"):
                if len(getattr(clauses, buflist)) > 1:
                    for i in range(len(getattr(clauses, buflist))):
                        yield _DropBuffer(path, buflist, i)


def _paths(program: Program) -> list[tuple[int, ...]]:
    out: list[tuple[int, ...]] = []

    def walk(nodes: list[Node], prefix: tuple[int, ...]) -> None:
        for i, node in enumerate(nodes):
            path = prefix + (i,)
            out.append(path)
            if isinstance(node, (P2PNode, ParamRegionNode)):
                walk(node.body, path)

    walk(program.nodes, ())
    return out


def _container(program: Program, path: tuple[int, ...]) -> list[Node]:
    nodes = program.nodes
    for i in path[:-1]:
        node = nodes[i]
        assert isinstance(node, (P2PNode, ParamRegionNode))
        nodes = node.body
    return nodes


def _resolve(program: Program, path: tuple[int, ...]) -> Node:
    return _container(program, path)[path[-1]]


@dataclass(frozen=True)
class _DropNode:
    path: tuple[int, ...]

    def __call__(self, program: Program) -> bool:
        container = _container(program, self.path)
        if self.path[-1] >= len(container):
            return False
        del container[self.path[-1]]
        return True


@dataclass(frozen=True)
class _Unwrap:
    """Replace a directive with its body statements."""

    path: tuple[int, ...]

    def __call__(self, program: Program) -> bool:
        container = _container(program, self.path)
        node = container[self.path[-1]]
        if not isinstance(node, (P2PNode, ParamRegionNode)) \
                or not node.body:
            return False
        container[self.path[-1]:self.path[-1] + 1] = node.body
        return True


@dataclass(frozen=True)
class _DropLine:
    path: tuple[int, ...]
    index: int

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if not isinstance(node, RawCode) or self.index >= len(node.lines):
            return False
        del node.lines[self.index]
        return True


@dataclass(frozen=True)
class _DropClause:
    path: tuple[int, ...]
    name: str

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if isinstance(node, RawCode) or self.name not in node.clauses.exprs:
            return False
        del node.clauses.exprs[self.name]
        return True


@dataclass(frozen=True)
class _DropWhens:
    path: tuple[int, ...]

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if isinstance(node, RawCode) \
                or "sendwhen" not in node.clauses.exprs:
            return False
        node.clauses.exprs.pop("sendwhen", None)
        node.clauses.exprs.pop("receivewhen", None)
        return True


@dataclass(frozen=True)
class _DropTarget:
    path: tuple[int, ...]

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if isinstance(node, RawCode) or node.clauses.target is None:
            return False
        node.clauses.target = None
        return True


@dataclass(frozen=True)
class _DropPlaceSync:
    path: tuple[int, ...]

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if isinstance(node, RawCode) or node.clauses.place_sync is None:
            return False
        node.clauses.place_sync = None
        return True


@dataclass(frozen=True)
class _DropBuffer:
    path: tuple[int, ...]
    buflist: str
    index: int

    def __call__(self, program: Program) -> bool:
        node = _resolve(program, self.path)
        if isinstance(node, RawCode):
            return False
        bufs = getattr(node.clauses, self.buflist)
        if len(bufs) <= 1 or self.index >= len(bufs):
            return False
        del bufs[self.index]
        return True
