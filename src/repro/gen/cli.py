"""``repro-gen`` — generate, differentially test, and minimize.

The command drives the whole :mod:`repro.gen` pipeline::

    repro-gen --seeds 1000 --diff --stats diffgen.json
    repro-gen --seed 44 --mode racy --emit --out /tmp/corpus
    repro-gen --seeds 200 --diff --weaken-oracle ignore-races \
              --expect-disagreements --minimize

Exit status: 0 on success; 1 when the differential run found an
unexplained disagreement (or, under ``--expect-disagreements``, when
it found *none* — the CI proof that an injected analyzer weakening is
caught); 2 on usage errors.

Every sampling cap is logged: nothing is silently truncated.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.core.analysis import hb
from repro.core.clauses import Target
from repro.gen.generator import MODES, GeneratedProgram, generate_many
from repro.gen.minimize import minimize_source
from repro.gen.oracle import (
    WEAKENINGS,
    Disagreement,
    OracleConfig,
    check_program,
)

__all__ = ["main", "build_parser"]

#: Short target aliases accepted on the command line.
_TARGET_ALIASES = {
    "mpi1s": Target.MPI_1SIDE,
    "mpi2s": Target.MPI_2SIDE,
    "shmem": Target.SHMEM,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-gen`` argument parser (exposed for the docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description="Generate random directive programs and "
                    "differentially test the toolchain on them.")
    sel = parser.add_argument_group("program selection")
    sel.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="generate seeds 0..N-1")
    sel.add_argument("--seed", type=int, nargs="+", default=None,
                     metavar="S", help="generate these specific seeds")
    sel.add_argument("--mode", choices=MODES + ("mix",), default="mix",
                     help="constraint mode (default: mix)")
    sel.add_argument("--nprocs", type=int, default=None,
                     help="force a world size (default: per-seed)")
    run = parser.add_argument_group("differential run")
    run.add_argument("--diff", action="store_true",
                     help="run the static/dynamic oracle on each program")
    run.add_argument("--targets", default=None, metavar="T[,T...]",
                     help="lowering targets to sweep (mpi1s, mpi2s, "
                          "shmem or full keywords; default: all)")
    run.add_argument("--fuzz-seeds", type=int, default=2, metavar="N",
                     help="jittered schedules per clean target "
                          "(default: 2; 0 disables)")
    run.add_argument("--fix-sample", type=int, default=0, metavar="N",
                     help="run the fix-soundness arm on every Nth "
                          "program (default: 0 = off)")
    run.add_argument("--max-time", type=float, default=5.0,
                     help="virtual-time cap per dynamic run (default: 5)")
    run.add_argument("--weaken-oracle", choices=sorted(WEAKENINGS),
                     default=None,
                     help="deliberately weaken the static side "
                          "(test-only; proves regressions are caught)")
    run.add_argument("--expect-disagreements", action="store_true",
                     help="invert the exit status: fail when the run "
                          "finds NO disagreement")
    out = parser.add_argument_group("output")
    out.add_argument("--minimize", action="store_true",
                     help="delta-minimize each disagreeing program")
    out.add_argument("--emit", action="store_true",
                     help="write every generated source to --out")
    out.add_argument("--out", type=Path, default=None, metavar="DIR",
                     help="directory for emitted/minimized .c files")
    out.add_argument("--stats", type=Path, default=None, metavar="FILE",
                     help="write a run-statistics JSON artifact")
    out.add_argument("--quiet", action="store_true",
                     help="suppress per-program progress lines")
    return parser


def _parse_targets(spec: str | None) -> tuple[Target, ...]:
    if spec is None:
        return tuple(Target)
    out = []
    for word in spec.split(","):
        word = word.strip()
        if not word:
            continue
        out.append(_TARGET_ALIASES.get(word.lower(), None)
                   or Target.parse(word))
    if not out:
        raise SystemExit(2)
    return tuple(out)


def _programs(ns: argparse.Namespace) -> list[GeneratedProgram]:
    seeds: Iterable[int]
    if ns.seed is not None:
        seeds = ns.seed
    else:
        seeds = range(ns.seeds if ns.seeds is not None else 20)
    return list(generate_many(seeds, mode=ns.mode, nprocs=ns.nprocs))


def _minimize_one(gp: GeneratedProgram, disagreement: Disagreement,
                  config: OracleConfig, out_dir: Path,
                  quiet: bool) -> dict[str, object]:
    """Shrink one disagreeing program and write the repro file."""
    kind = disagreement.kind

    def still_disagrees(source: str) -> bool:
        probe = GeneratedProgram(seed=gp.seed, mode=gp.mode,
                                 nprocs=gp.nprocs, source=source,
                                 planted=gp.planted)
        result = check_program(probe, config)
        return any(d.kind == kind for d in result.disagreements)

    shrunk = minimize_source(gp.source, still_disagrees)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"seed{gp.seed}_{kind.replace('-', '_')}.c"
    header = (f"/* repro-gen minimized repro: seed={gp.seed} "
              f"mode={gp.mode} nprocs={gp.nprocs} kind={kind} */\n")
    path.write_text(header + shrunk.source)
    if not quiet:
        print(f"  minimized {shrunk.initial_statements} -> "
              f"{shrunk.final_statements} statements: {path}")
    return {"seed": gp.seed, "kind": kind, "file": str(path),
            "initial_statements": shrunk.initial_statements,
            "final_statements": shrunk.final_statements}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    ns = build_parser().parse_args(argv)
    try:
        targets = _parse_targets(ns.targets)
    except Exception as exc:
        print(f"repro-gen: {exc}", file=sys.stderr)
        return 2
    programs = _programs(ns)
    out_dir = ns.out or Path("examples/pragmas/generated")

    if ns.emit:
        out_dir.mkdir(parents=True, exist_ok=True)
        for gp in programs:
            path = out_dir / f"seed{gp.seed}_{gp.mode}.c"
            path.write_text(gp.source)
            if not ns.quiet:
                print(f"wrote {path}  ({gp.describe()})")

    if not ns.diff:
        if not ns.emit:
            for gp in programs:
                print(gp.describe())
        return 0

    config = OracleConfig(targets=targets, fuzz_seeds=ns.fuzz_seeds,
                          weaken=ns.weaken_oracle,
                          max_time=ns.max_time)
    fix_config = OracleConfig(targets=targets,
                              fuzz_seeds=ns.fuzz_seeds,
                              weaken=ns.weaken_oracle,
                              max_time=ns.max_time, fix_check=True)
    if ns.fix_sample > 0:
        sampled = len(programs[::ns.fix_sample])
        print(f"fix-soundness arm sampled on {sampled}/{len(programs)} "
              f"programs (every {ns.fix_sample}th; the rest skip "
              f"check (d))")

    checks = 0
    explained: list[str] = []
    disagreements: list[Disagreement] = []
    minimized: list[dict[str, object]] = []
    mode_counts: dict[str, int] = {}
    for index, gp in enumerate(programs):
        mode_counts[gp.mode] = mode_counts.get(gp.mode, 0) + 1
        use = (fix_config if ns.fix_sample > 0
               and index % ns.fix_sample == 0 else config)
        result = check_program(gp, use)
        checks += result.checks
        explained.extend(result.explained)
        if not result.ok:
            for d in result.disagreements:
                print(d)
            disagreements.extend(result.disagreements)
            if ns.minimize:
                seen_kinds = set()
                for d in result.disagreements:
                    if d.kind in seen_kinds:
                        continue
                    seen_kinds.add(d.kind)
                    minimized.append(_minimize_one(
                        gp, d, use, out_dir, ns.quiet))
        elif not ns.quiet and (index + 1) % 100 == 0:
            print(f"  {index + 1}/{len(programs)} programs checked, "
                  f"{checks} oracle checks, "
                  f"{len(disagreements)} disagreements")

    summary = (f"{len(programs)} programs, {checks} oracle checks, "
               f"{len(disagreements)} disagreements "
               f"({len(explained)} explained divergences)")
    print(summary)
    if ns.stats is not None:
        stats = {
            "programs": len(programs),
            "modes": mode_counts,
            "targets": [t.value for t in targets],
            "oracle_checks": checks,
            "disagreements": [asdict(d) for d in disagreements],
            "explained": explained,
            "minimized": minimized,
            "weaken": ns.weaken_oracle,
            "hb_cache": hb.GRAPH_CACHE.stats(),
        }
        ns.stats.parent.mkdir(parents=True, exist_ok=True)
        ns.stats.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"stats written to {ns.stats}")

    if ns.expect_disagreements:
        if not disagreements:
            print("repro-gen: expected disagreements but found none "
                  "(the weakened oracle failed to catch anything)",
                  file=sys.stderr)
            return 1
        return 0
    return 1 if disagreements else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
