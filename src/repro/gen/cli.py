"""``repro-gen`` — generate, differentially test, and minimize.

The command drives the whole :mod:`repro.gen` pipeline::

    repro-gen --seeds 1000 --diff --stats diffgen.json
    repro-gen --seed 44 --mode racy --emit --out /tmp/corpus
    repro-gen --seeds 200 --diff --weaken-oracle ignore-races \
              --expect-disagreements --minimize

The differential sweep shards and memoizes through the same service
layer as ``repro-lint`` (:mod:`repro.lintserve`; docs/LINTSERVE.md)::

    repro-gen --seeds 1000 --shard 2/4 --diff --jobs 2 \
              --cache-dir .repro-cache --stats shard2.json
    repro-gen --merge-stats diffgen.json --stats-in shard*.json

``--shard I/N`` stripes the seed range (seeds with ``seed % N == I``),
``--jobs`` fans oracle checks over a worker pool, ``--cache-dir``
memoizes per-program oracle results keyed by content hash + the
analysis-version salt, and ``--merge-stats`` combines per-shard stats
artifacts into one, verifying shard coverage and asserting zero
unexplained disagreements across all shards.

Exit status: 0 on success; 1 when the differential run (or the merged
stats) found an unexplained disagreement (or, under
``--expect-disagreements``, when it found *none* — the CI proof that
an injected analyzer weakening is caught); 2 on usage errors.

Every sampling cap is logged: nothing is silently truncated.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.core.analysis import hb
from repro.core.clauses import Target
from repro.gen.generator import MODES, GeneratedProgram, generate_many
from repro.gen.minimize import minimize_source
from repro.gen.oracle import (
    WEAKENINGS,
    Disagreement,
    OracleConfig,
    check_program,
)

__all__ = ["main", "build_parser"]

#: Short target aliases accepted on the command line.
_TARGET_ALIASES = {
    "mpi1s": Target.MPI_1SIDE,
    "mpi2s": Target.MPI_2SIDE,
    "shmem": Target.SHMEM,
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-gen`` argument parser (exposed for the docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description="Generate random directive programs and "
                    "differentially test the toolchain on them.")
    sel = parser.add_argument_group("program selection")
    sel.add_argument("--seeds", type=int, default=None, metavar="N",
                     help="generate seeds 0..N-1")
    sel.add_argument("--seed", type=int, nargs="+", default=None,
                     metavar="S", help="generate these specific seeds")
    sel.add_argument("--mode", choices=MODES + ("mix",), default="mix",
                     help="constraint mode (default: mix)")
    sel.add_argument("--nprocs", type=int, default=None,
                     help="force a world size (default: per-seed)")
    run = parser.add_argument_group("differential run")
    run.add_argument("--diff", action="store_true",
                     help="run the static/dynamic oracle on each program")
    run.add_argument("--targets", default=None, metavar="T[,T...]",
                     help="lowering targets to sweep (mpi1s, mpi2s, "
                          "shmem or full keywords; default: all)")
    run.add_argument("--fuzz-seeds", type=int, default=2, metavar="N",
                     help="jittered schedules per clean target "
                          "(default: 2; 0 disables)")
    run.add_argument("--fix-sample", type=int, default=0, metavar="N",
                     help="run the fix-soundness arm on every Nth "
                          "program (default: 0 = off)")
    run.add_argument("--max-time", type=float, default=5.0,
                     help="virtual-time cap per dynamic run (default: 5)")
    run.add_argument("--weaken-oracle", choices=sorted(WEAKENINGS),
                     default=None,
                     help="deliberately weaken the static side "
                          "(test-only; proves regressions are caught)")
    run.add_argument("--expect-disagreements", action="store_true",
                     help="invert the exit status: fail when the run "
                          "finds NO disagreement")
    svc = parser.add_argument_group(
        "sharded service (repro.lintserve; docs/LINTSERVE.md)")
    svc.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="fan oracle checks over N worker processes "
                          "(default: in-process)")
    svc.add_argument("--shard", default=None, metavar="I/N",
                     help="check only seeds with seed %% N == I "
                          "(CI matrix striping; 0 <= I < N)")
    svc.add_argument("--cache-dir", type=Path, default=None,
                     metavar="DIR",
                     help="memoize per-program oracle results on disk "
                          "(content hash + analysis-version salt)")
    svc.add_argument("--merge-stats", type=Path, default=None,
                     metavar="OUT",
                     help="merge per-shard --stats artifacts into OUT "
                          "and exit (no generation)")
    svc.add_argument("--stats-in", type=Path, nargs="+", default=None,
                     metavar="FILE",
                     help="shard stats artifacts for --merge-stats")
    out = parser.add_argument_group("output")
    out.add_argument("--minimize", action="store_true",
                     help="delta-minimize each disagreeing program")
    out.add_argument("--emit", action="store_true",
                     help="write every generated source to --out")
    out.add_argument("--out", type=Path, default=None, metavar="DIR",
                     help="directory for emitted/minimized .c files")
    out.add_argument("--stats", type=Path, default=None, metavar="FILE",
                     help="write a run-statistics JSON artifact")
    out.add_argument("--quiet", action="store_true",
                     help="suppress per-program progress lines")
    return parser


def _parse_targets(spec: str | None) -> tuple[Target, ...]:
    if spec is None:
        return tuple(Target)
    out = []
    for word in spec.split(","):
        word = word.strip()
        if not word:
            continue
        out.append(_TARGET_ALIASES.get(word.lower(), None)
                   or Target.parse(word))
    if not out:
        raise SystemExit(2)
    return tuple(out)


def _parse_shard(spec: str | None) -> tuple[int, int] | None:
    """Parse ``--shard I/N`` into ``(index, total)``."""
    if spec is None:
        return None
    index_word, sep, total_word = spec.partition("/")
    try:
        if not sep:
            raise ValueError(spec)
        index, total = int(index_word), int(total_word)
    except ValueError:
        raise ValueError(f"--shard expects I/N, got {spec!r}") from None
    if total <= 0 or not 0 <= index < total:
        raise ValueError(
            f"--shard expects 0 <= I < N, got {spec!r}")
    return index, total


def _programs(ns: argparse.Namespace,
              shard: tuple[int, int] | None) -> list[GeneratedProgram]:
    seeds: Iterable[int]
    if ns.seed is not None:
        seeds = ns.seed
    else:
        seeds = range(ns.seeds if ns.seeds is not None else 20)
    if shard is not None:
        # Stripe the seed range *before* generation: shard I of N owns
        # exactly the seeds with seed % N == I, so a CI matrix covers
        # every seed once with no coordination between shards.
        index, total = shard
        seeds = [s for s in seeds if s % total == index]
    return list(generate_many(seeds, mode=ns.mode, nprocs=ns.nprocs))


def _oracle_payload(gp: GeneratedProgram,
                    config: OracleConfig) -> tuple[object, ...]:
    """Cache-key payload for one (program, config) oracle check.

    Everything :func:`check_program` is a function of, as primitives
    (see :func:`repro.lintserve.cache.unit_key`). The seed and mode
    are included because they name the program in every recorded
    disagreement, not just because they seeded generation.
    """
    return (gp.seed, gp.mode, gp.nprocs, gp.source, repr(gp.planted),
            tuple(t.value for t in config.targets), config.fuzz_seeds,
            config.fix_check, config.weaken, config.max_time)


def _check_unit(item: tuple[GeneratedProgram, OracleConfig]) -> dict:
    """Pool worker: one oracle check → a JSON-serializable summary."""
    gp, config = item
    result = check_program(gp, config)
    return {
        "checks": result.checks,
        "explained": list(result.explained),
        "disagreements": [asdict(d) for d in result.disagreements],
    }


def _iter_results(programs: list[GeneratedProgram],
                  configs: list[OracleConfig], jobs: int,
                  cache: object | None) -> Iterable[dict]:
    """Oracle summaries for each program, in generation order.

    ``jobs > 1`` fans cache misses over :func:`repro.lintserve.
    scheduler.pool_map` (order-preserving, so the merged output is
    identical to the sequential path); otherwise checks run inline so
    progress lines stay live.
    """
    from repro.lintserve.scheduler import pool_map

    keys: list[str | None] = []
    hits: list[dict | None] = []
    pending: list[tuple[GeneratedProgram, OracleConfig]] = []
    for gp, config in zip(programs, configs):
        key = hit = None
        if cache is not None:
            key = cache.key("diffgen", _oracle_payload(gp, config))
            hit = cache.get(key)
        keys.append(key)
        hits.append(hit)
        if hit is None:
            pending.append((gp, config))
    if jobs > 1:
        computed = iter(pool_map(_check_unit, pending, jobs))
    else:
        computed = (_check_unit(item) for item in pending)
    for key, hit in zip(keys, hits):
        if hit is not None:
            yield hit
            continue
        value = next(computed)
        if cache is not None and key is not None:
            cache.put(key, value)
        yield value


def _minimize_one(gp: GeneratedProgram, disagreement: Disagreement,
                  config: OracleConfig, out_dir: Path,
                  quiet: bool) -> dict[str, object]:
    """Shrink one disagreeing program and write the repro file."""
    kind = disagreement.kind

    def still_disagrees(source: str) -> bool:
        probe = GeneratedProgram(seed=gp.seed, mode=gp.mode,
                                 nprocs=gp.nprocs, source=source,
                                 planted=gp.planted)
        result = check_program(probe, config)
        return any(d.kind == kind for d in result.disagreements)

    shrunk = minimize_source(gp.source, still_disagrees)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"seed{gp.seed}_{kind.replace('-', '_')}.c"
    header = (f"/* repro-gen minimized repro: seed={gp.seed} "
              f"mode={gp.mode} nprocs={gp.nprocs} kind={kind} */\n")
    path.write_text(header + shrunk.source)
    if not quiet:
        print(f"  minimized {shrunk.initial_statements} -> "
              f"{shrunk.final_statements} statements: {path}")
    return {"seed": gp.seed, "kind": kind, "file": str(path),
            "initial_statements": shrunk.initial_statements,
            "final_statements": shrunk.final_statements}


def _merge_stats(out: Path, inputs: list[Path],
                 expect_disagreements: bool) -> int:
    """``--merge-stats``: combine per-shard stats artifacts.

    The CI merge step: sums counters, concatenates disagreement /
    explained / minimized records, verifies that recorded ``I/N``
    shards share one N and cover ``0..N-1`` exactly once, and fails
    (exit 1) when any shard recorded an unexplained disagreement.
    """
    if not inputs:
        print("repro-gen: --merge-stats requires --stats-in",
              file=sys.stderr)
        return 2
    merged: dict[str, object] = {
        "programs": 0, "modes": {}, "targets": None,
        "oracle_checks": 0, "disagreements": [], "explained": [],
        "minimized": [], "weaken": None, "shards": [],
    }
    shard_specs: list[tuple[int, int] | None] = []
    for path in inputs:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-gen: cannot read stats {path}: {exc}",
                  file=sys.stderr)
            return 2
        merged["programs"] += int(data.get("programs", 0))
        for mode, count in data.get("modes", {}).items():
            merged["modes"][mode] = (merged["modes"].get(mode, 0)
                                     + int(count))
        targets = data.get("targets")
        if merged["targets"] is None:
            merged["targets"] = targets
        elif targets is not None and targets != merged["targets"]:
            print(f"repro-gen: {path} swept targets {targets}, other "
                  f"shards swept {merged['targets']}", file=sys.stderr)
            return 2
        merged["oracle_checks"] += int(data.get("oracle_checks", 0))
        merged["disagreements"].extend(data.get("disagreements", []))
        merged["explained"].extend(data.get("explained", []))
        merged["minimized"].extend(data.get("minimized", []))
        merged["weaken"] = merged["weaken"] or data.get("weaken")
        try:
            shard_specs.append(_parse_shard(data.get("shard")))
        except ValueError:
            shard_specs.append(None)
        merged["shards"].append({
            "file": str(path),
            "shard": data.get("shard"),
            "programs": int(data.get("programs", 0)),
            "disagreements": len(data.get("disagreements", [])),
        })
    if all(spec is not None for spec in shard_specs):
        totals = {spec[1] for spec in shard_specs}
        indices = sorted(spec[0] for spec in shard_specs)
        if len(totals) != 1 or indices != list(range(indices[-1] + 1)) \
                or len(indices) != next(iter(totals)):
            print(f"repro-gen: shard coverage is not a complete "
                  f"0..N-1 partition: "
                  f"{sorted(s[0] for s in shard_specs)} of N="
                  f"{sorted(totals)}", file=sys.stderr)
            return 2
    disagreements = merged["disagreements"]
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"merged {len(inputs)} shard(s): {merged['programs']} "
          f"programs, {merged['oracle_checks']} oracle checks, "
          f"{len(disagreements)} disagreements "
          f"({len(merged['explained'])} explained divergences)")
    print(f"stats written to {out}")
    if expect_disagreements:
        if not disagreements:
            print("repro-gen: expected disagreements but found none "
                  "across all shards", file=sys.stderr)
            return 1
        return 0
    return 1 if disagreements else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    ns = build_parser().parse_args(argv)
    if ns.merge_stats is not None:
        return _merge_stats(ns.merge_stats, list(ns.stats_in or []),
                            ns.expect_disagreements)
    try:
        targets = _parse_targets(ns.targets)
        shard = _parse_shard(ns.shard)
    except Exception as exc:
        print(f"repro-gen: {exc}", file=sys.stderr)
        return 2
    programs = _programs(ns, shard)
    out_dir = ns.out or Path("examples/pragmas/generated")

    if ns.emit:
        out_dir.mkdir(parents=True, exist_ok=True)
        for gp in programs:
            path = out_dir / f"seed{gp.seed}_{gp.mode}.c"
            path.write_text(gp.source)
            if not ns.quiet:
                print(f"wrote {path}  ({gp.describe()})")

    if not ns.diff:
        if not ns.emit:
            for gp in programs:
                print(gp.describe())
        return 0

    config = OracleConfig(targets=targets, fuzz_seeds=ns.fuzz_seeds,
                          weaken=ns.weaken_oracle,
                          max_time=ns.max_time)
    fix_config = OracleConfig(targets=targets,
                              fuzz_seeds=ns.fuzz_seeds,
                              weaken=ns.weaken_oracle,
                              max_time=ns.max_time, fix_check=True)
    if ns.fix_sample > 0:
        sampled = len(programs[::ns.fix_sample])
        print(f"fix-soundness arm sampled on {sampled}/{len(programs)} "
              f"programs (every {ns.fix_sample}th; the rest skip "
              f"check (d))")

    cache = None
    if ns.cache_dir is not None:
        from repro.lintserve.cache import ResultCache

        cache = ResultCache(ns.cache_dir)
    jobs = max(1, ns.jobs) if ns.jobs is not None else 1
    configs = [(fix_config if ns.fix_sample > 0
                and index % ns.fix_sample == 0 else config)
               for index in range(len(programs))]

    checks = 0
    explained: list[str] = []
    disagreements: list[Disagreement] = []
    minimized: list[dict[str, object]] = []
    mode_counts: dict[str, int] = {}
    results = _iter_results(programs, configs, jobs, cache)
    for index, (gp, result) in enumerate(zip(programs, results)):
        mode_counts[gp.mode] = mode_counts.get(gp.mode, 0) + 1
        checks += result["checks"]
        explained.extend(result["explained"])
        found = [Disagreement(**d) for d in result["disagreements"]]
        if found:
            for d in found:
                print(d)
            disagreements.extend(found)
            if ns.minimize:
                seen_kinds = set()
                for d in found:
                    if d.kind in seen_kinds:
                        continue
                    seen_kinds.add(d.kind)
                    minimized.append(_minimize_one(
                        gp, d, configs[index], out_dir, ns.quiet))
        elif not ns.quiet and (index + 1) % 100 == 0:
            print(f"  {index + 1}/{len(programs)} programs checked, "
                  f"{checks} oracle checks, "
                  f"{len(disagreements)} disagreements")

    summary = (f"{len(programs)} programs, {checks} oracle checks, "
               f"{len(disagreements)} disagreements "
               f"({len(explained)} explained divergences)")
    print(summary)
    if cache is not None and not ns.quiet:
        print(f"oracle cache: {cache.hits} hit(s), {cache.misses} "
              f"miss(es) (hit rate {cache.hit_rate:.0%})")
    if ns.stats is not None:
        stats = {
            "programs": len(programs),
            "shard": ns.shard,
            "jobs": jobs,
            "modes": mode_counts,
            "targets": [t.value for t in targets],
            "oracle_checks": checks,
            "disagreements": [asdict(d) for d in disagreements],
            "explained": explained,
            "minimized": minimized,
            "weaken": ns.weaken_oracle,
            "hb_cache": hb.GRAPH_CACHE.stats(),
            "cache": cache.stats() if cache is not None else None,
        }
        ns.stats.parent.mkdir(parents=True, exist_ok=True)
        ns.stats.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"stats written to {ns.stats}")

    if ns.expect_disagreements:
        if not disagreements:
            print("repro-gen: expected disagreements but found none "
                  "(the weakened oracle failed to catch anything)",
                  file=sys.stderr)
            return 1
        return 0
    return 1 if disagreements else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
