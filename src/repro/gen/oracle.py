"""Differential static/dynamic oracle over generated programs.

For each ``(program, nprocs, target)`` the oracle cross-checks every
claim one side of the toolchain makes against the other side:

(a) **static vs dynamic** — the verifier's per-target verdict against
    the concrete outcome of the program simulator with the access
    sanitizer armed in collect mode;
(b) **cross-target payloads** — on targets both sides agree are clean,
    the final per-rank buffer contents must be bit-for-bit identical
    across all lowerings, and must stay bit-for-bit stable under
    adversarially jittered schedules (:func:`repro.faults.fuzz.
    fuzz_program`);
(c) **time model consistency** — the program simulator's modeled time
    must equal the span profile's makespan, and the profile's critical
    path can never exceed it;
(d) **fix soundness** — when the proof-carrying fixer rewrites a
    program, the claimed proof is re-checked independently: the fixed
    source must lint clean and must not regress modeled time on any
    target the original ran on.

Verdict classification is *family*-based (deadlock / stale-read /
race / validation) with an explicit *explained* table: combinations a
single immediate-delivery schedule cannot distinguish (e.g. a proven
stale read that deterministic delivery happens to satisfy) are counted
as explained, never silently dropped. Everything else is a
:class:`Disagreement` — either toolchain bug or generator bug, and
always worth a minimized repro.

``weaken`` deliberately *breaks* the static side (test-only): dropping
the race or deadlock family from the static verdict makes the planted
defects of racy/unconstrained programs flow through as disagreements,
which is how the pipeline (and CI job) proves end-to-end that a real
analyzer regression would be caught and minimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.codes import (
    DEADLOCK_CODES,
    RACE_CODES,
    STALE_READ_CODES,
    severity_of,
)
from repro.core.analysis.fix import fix_source
from repro.core.analysis.lint import lint_program
from repro.core.analysis.progsim import simulate_program
from repro.core.analysis.verify import undefined_payload_buffers
from repro.core.clauses import Target
from repro.core.ir import Program
from repro.core.pragma import parse_program
from repro.errors import (
    PragmaSyntaxError,
    RaceError,
    ReproError,
    SimAbortError,
)
from repro.faults.fuzz import fuzz_program, mask_payloads
from repro.gen.generator import GeneratedProgram
from repro.profiling.critpath import critical_path

__all__ = ["OracleConfig", "Disagreement", "OracleResult",
           "check_program"]

#: Codes whose static *error* proves the run cannot complete: the
#: deadlock family plus out-of-range ranks (a dynamic clause
#: violation). CI005/006 matching warnings stay advisory.
_MUST_ABORT = frozenset(DEADLOCK_CODES | {"CI004"})

#: Relative tolerance for modeled-time identities (float accumulation).
_TIME_RTOL = 1e-9

#: Named static-side weakenings (test-only): code families removed
#: from the static verdict before comparison.
WEAKENINGS = {
    "ignore-races": frozenset(RACE_CODES),
    "ignore-deadlocks": frozenset(_MUST_ABORT),
}


@dataclass(frozen=True)
class OracleConfig:
    """Knobs of one differential run (defaults = the CI quick profile)."""

    targets: tuple[Target, ...] = tuple(Target)
    #: Jittered schedules per clean target for the payload-stability
    #: arm (0 disables).
    fuzz_seeds: int = 2
    #: Run the independent fix-soundness re-check (the most expensive
    #: arm; CLI samples it).
    fix_check: bool = False
    #: Test-only static weakening (a :data:`WEAKENINGS` key) used to
    #: prove the pipeline catches analyzer regressions.
    weaken: str | None = None
    #: Virtual-time cap per dynamic run.
    max_time: float = 5.0


@dataclass(frozen=True)
class Disagreement:
    """One unexplained static/dynamic divergence."""

    seed: int
    mode: str
    kind: str
    target: str
    detail: str

    def __str__(self) -> str:
        return (f"DISAGREE[{self.kind}] seed={self.seed} "
                f"mode={self.mode} target={self.target}: {self.detail}")


@dataclass
class OracleResult:
    """Everything one program's differential run established."""

    program: GeneratedProgram
    #: Individual oracle checks executed (the CI stats line).
    checks: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)
    #: Known-benign divergences, with reasons (never silently dropped).
    explained: list[str] = field(default_factory=list)
    #: Static error/race codes per target keyword.
    static_codes: dict[str, list[str]] = field(default_factory=dict)
    #: Dynamic outcome word per target keyword.
    dynamic: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no unexplained disagreement was found."""
        return not self.disagreements

    def _disagree(self, kind: str, target: str, detail: str) -> None:
        self.disagreements.append(Disagreement(
            seed=self.program.seed, mode=self.program.mode, kind=kind,
            target=target, detail=detail))


def check_program(gp: GeneratedProgram,
                  config: OracleConfig = OracleConfig()) -> OracleResult:
    """Run the full differential oracle over one generated program."""
    result = OracleResult(program=gp)
    dropped = WEAKENINGS.get(config.weaken or "", frozenset())

    # -- parse + print fixpoint (satellite invariant) ----------------------
    result.checks += 1
    try:
        program = parse_program(gp.source)
    except ReproError as exc:
        result._disagree("gen-parse", "*",
                         f"generated source fails to parse: {exc}")
        return result
    result.checks += 1
    printed = program.to_source()
    try:
        if parse_program(printed).to_source() != printed:
            result._disagree("fixpoint", "*",
                             "parse -> print -> parse is not a fixpoint")
            return result
    except PragmaSyntaxError as exc:
        result._disagree("fixpoint", "*",
                         f"printed source fails to re-parse: {exc}")
        return result

    # -- static verdict, swept over every target ---------------------------
    result.checks += 1
    report = lint_program(program, gp.nprocs,
                          targets=list(config.targets))
    clean_payloads: dict[str, object] = {}
    # Buffers whose contents the directive contract leaves undefined
    # (unreceived deliveries): a SHMEM put lands them, a two-sided
    # Isend never does, and the deferred-delivery fault mode parks
    # them — every payload comparison must exclude these bytes.
    undefined: set[tuple[int, str]] = set()
    for target in config.targets:
        try:
            undefined |= undefined_payload_buffers(
                program, gp.nprocs, target)
        except ReproError:
            pass  # unresolvable clauses: nothing to exclude
    if undefined:
        result.explained.append(
            "unguaranteed delivery buffer(s) excluded from payload "
            "comparison: " + ", ".join(
                f"rank {r} {n!r}" for r, n in sorted(undefined)))
    for target in config.targets:
        key = target.value
        diags = [d for d in report.diagnostics
                 if d.target in ("*", key)]
        errors = {d.code for d in diags
                  if (d.severity or severity_of(d.code)) == "error"
                  and d.code not in dropped}
        race_any = {d.code for d in diags
                    if d.code in RACE_CODES and d.code not in dropped}
        result.static_codes[key] = sorted(errors | race_any)
        _check_one_target(result, program, gp, target, errors,
                          race_any, config, clean_payloads,
                          frozenset(undefined))

    # -- (b) payloads bit-for-bit across clean targets ---------------------
    if len(clean_payloads) > 1:
        result.checks += 1
        baseline_key = sorted(clean_payloads)[0]
        baseline = clean_payloads[baseline_key]
        for key in sorted(clean_payloads)[1:]:
            if clean_payloads[key] != baseline:
                result._disagree(
                    "payload-divergence", key,
                    f"final payloads differ from {baseline_key}")

    # -- (d) independent fix-soundness re-check ----------------------------
    if config.fix_check:
        _check_fix_soundness(result, program, gp)
    return result


def _classify_dynamic(exc: ReproError | None,
                      races: tuple[str, ...]) -> str:
    if exc is None:
        return "race" if races else "ok"
    if isinstance(exc, RaceError):
        return "race"
    if isinstance(exc, SimAbortError):
        return "abort"
    return "error"


def _check_one_target(result: OracleResult, program: Program,
                      gp: GeneratedProgram, target: Target,
                      errors: set[str], race_any: set[str],
                      config: OracleConfig,
                      clean_payloads: dict[str, object],
                      undefined: frozenset[tuple[int, str]] = frozenset()
                      ) -> None:
    """Check (a) and (c) for one lowering target."""
    key = target.value
    result.checks += 1
    outcome = None
    exc: ReproError | None = None
    try:
        outcome = simulate_program(
            program, gp.nprocs, target=target, sanitize="collect",
            capture=True, profile=True, max_time=config.max_time)
    except ReproError as caught:
        exc = caught
    except Exception as caught:  # toolchain bug, not a modeled outcome
        result.dynamic[key] = "crash"
        result._disagree("crash", key,
                         f"simulator crashed with "
                         f"{type(caught).__name__}: {caught}")
        return
    dynamic = _classify_dynamic(
        exc, outcome.races if outcome is not None else ())
    result.dynamic[key] = dynamic

    static_must_abort = bool(errors & _MUST_ABORT)
    static_race = bool(race_any)
    static_stale = bool(errors & STALE_READ_CODES)
    static_other = bool(errors - _MUST_ABORT - STALE_READ_CODES
                        - RACE_CODES)

    if dynamic == "ok":
        if static_must_abort:
            result._disagree("phantom-abort", key,
                             f"static proves {sorted(errors)} but the "
                             f"run completed cleanly")
        elif static_race:
            # A race verdict whose schedule never manifests under
            # immediate delivery: proven (error) findings must be
            # observed; widened (warning-only) findings may not be.
            proven = race_any & errors
            if proven:
                result._disagree(
                    "phantom-race", key,
                    f"static proves race {sorted(proven)} but the "
                    f"sanitizer observed none")
            else:
                result.explained.append(
                    f"{key}: widened race warning "
                    f"{sorted(race_any)} not observed (expected)")
        elif static_stale:
            result.explained.append(
                f"{key}: stale-read proof {sorted(errors)} not "
                f"observable under immediate delivery")
        elif static_other:
            result._disagree("phantom-error", key,
                             f"static error {sorted(errors)} but the "
                             f"run completed cleanly")
    elif dynamic == "race":
        if not (static_race or static_stale or static_must_abort):
            races = outcome.races if outcome is not None else (str(exc),)
            result._disagree("missed-race", key,
                             f"sanitizer observed a race the verifier "
                             f"missed: {races[0]}")
    elif dynamic == "abort":
        if not static_must_abort:
            result._disagree("missed-abort", key,
                             f"run aborted ({exc}) but static verdict "
                             f"was {sorted(errors) or 'clean'}")
    else:  # dynamic == "error"
        if not errors:
            result._disagree("missed-error", key,
                             f"run raised {type(exc).__name__}: {exc} "
                             f"but static verdict was clean")

    if outcome is None or dynamic != "ok" or errors or race_any:
        return

    # -- (c) time-model identities on the clean run ------------------------
    result.checks += 1
    makespan = max(outcome.finish_times)
    if abs(outcome.modeled_time - makespan) > _TIME_RTOL * makespan:
        result._disagree("time-model", key,
                         f"modeled_time {outcome.modeled_time} != "
                         f"makespan {makespan}")
    if outcome.profile is not None:
        cp = critical_path(outcome.profile)
        if cp.length_s > cp.makespan_s * (1.0 + _TIME_RTOL) + 1e-12:
            result._disagree(
                "time-model", key,
                f"critical path {cp.length_s} exceeds makespan "
                f"{cp.makespan_s}")

    clean_payloads[key] = mask_payloads(outcome.payloads, undefined)

    # -- (b) payload stability under adversarial schedules -----------------
    if config.fuzz_seeds > 0:
        result.checks += 1
        failures = fuzz_program(
            program, gp.nprocs, target=key,
            seeds=range(config.fuzz_seeds),
            baseline=outcome.payloads,
            name=f"seed{gp.seed}", ignore=undefined)
        for failure in failures:
            result._disagree("schedule-divergence", key, str(failure))


def _check_fix_soundness(result: OracleResult, program: Program,
                         gp: GeneratedProgram) -> None:
    """(d): re-prove the fixer's claim with fresh lint + simulation."""
    result.checks += 1
    try:
        fix = fix_source(gp.source, nprocs=gp.nprocs)
    except ReproError as exc:
        result._disagree("fix-crash", "*", f"fix run raised: {exc}")
        return
    if not fix.changed:
        return
    try:
        fixed = parse_program(fix.source)
    except ReproError as exc:
        result._disagree("fix-unsound", "*",
                         f"fixed source fails to parse: {exc}")
        return
    report = lint_program(fixed, gp.nprocs)
    bad = [d for d in report.diagnostics
           if (d.severity or severity_of(d.code)) == "error"
           or d.code in RACE_CODES]
    if bad:
        result._disagree("fix-unsound", "*",
                         f"fixed program is not clean: "
                         f"{'; '.join(str(d) for d in bad[:3])}")
        return
    for target in Target:
        try:
            before = simulate_program(program, gp.nprocs,
                                      target=target).modeled_time
        except ReproError:
            continue
        try:
            after = simulate_program(fixed, gp.nprocs,
                                     target=target).modeled_time
        except ReproError as exc:
            result._disagree("fix-unsound", target.value,
                             f"fixed program fails to run: {exc}")
            continue
        if after > before * (1.0 + _TIME_RTOL):
            result._disagree(
                "fix-unsound", target.value,
                f"fix regresses modeled time {before} -> {after}")
