"""Randomized directive-program generation and differential testing.

The generator (:mod:`repro.gen.generator`) emits seed-reproducible
random-but-well-formed pragma programs; the oracle
(:mod:`repro.gen.oracle`) cross-checks the static verifier against the
dynamic simulator/sanitizer on each one; the minimizer
(:mod:`repro.gen.minimize`) shrinks any disagreement to a small
stand-alone repro. ``repro-gen`` (:mod:`repro.gen.cli`) drives the
whole pipeline from the command line and in CI.
"""

from repro.gen.generator import (
    MODES,
    GeneratedProgram,
    generate,
    generate_many,
)
from repro.gen.minimize import MinimizeResult, minimize_source
from repro.gen.oracle import (
    Disagreement,
    OracleConfig,
    OracleResult,
    check_program,
)

__all__ = [
    "MODES",
    "GeneratedProgram",
    "generate",
    "generate_many",
    "MinimizeResult",
    "minimize_source",
    "Disagreement",
    "OracleConfig",
    "OracleResult",
    "check_program",
]
