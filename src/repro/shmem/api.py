"""The per-PE SHMEM API handle.

Obtained once per simulated rank via :func:`init`. Method names and
semantics follow SHMEM: puts are one-sided (the target takes no action),
``quiet`` guarantees remote completion of this PE's outstanding puts,
``barrier_all`` adds a full synchronization, ``wait_until`` is the flag
idiom for point-to-point notification.

Typed variants (``put_double``, ``put_int``, ``put_float``, ``put_long``,
``put32``, ``put64``, ``putmem``) enforce the element-size matching the
paper's compiler performs when choosing the call name for a buffer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShmemError, SymmetryError
from repro.netmodel.base import SHMEM, MachineModel
from repro.netmodel.gemini import gemini_model
from repro.shmem.symheap import SymArray, SymmetricHeap
from repro.sim.process import Env
from repro.sim.sync import Rendezvous

_MODEL_KEY = "shmem_model"
_BARRIER_KEY = "shmem_barriers"

#: Comparison operators accepted by :meth:`Shmem.wait_until`.
_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
}


def init(env: Env, model: MachineModel | None = None) -> "Shmem":
    """Return this PE's SHMEM handle (first caller fixes the model)."""
    engine = env.engine
    heap = SymmetricHeap.attach(engine)
    existing = engine.services.get(_MODEL_KEY)
    if existing is None:
        existing = model or gemini_model()
        engine.services[_MODEL_KEY] = existing
    elif model is not None and model is not existing:
        raise ShmemError(
            "shmem.init called with a different model than the one the "
            "heap was created with")
    return Shmem(env, heap, existing)


class Shmem:
    """One PE's view of the SHMEM world."""

    def __init__(self, env: Env, heap: SymmetricHeap, model: MachineModel):
        self.env = env
        self.heap = heap
        self.model = model
        self._tp = model.transport(SHMEM)
        #: Remote-completion times of puts not yet covered by a quiet.
        self._pending: list[float] = []

    # ------------------------------------------------------------------

    @property
    def my_pe(self) -> int:
        """This PE's id (``shmem_my_pe``)."""
        return self.env.rank

    @property
    def n_pes(self) -> int:
        """Total PE count (``shmem_n_pes``)."""
        return self.env.size

    # ------------------------------------------------------------------
    # Symmetric allocation

    def malloc(self, shape, dtype=np.float64) -> SymArray:
        """Collective symmetric allocation (``shmem_malloc``).

        Every PE must call with the same shape/dtype; returns this PE's
        handle. Synchronizes (as ``shmem_malloc`` does).
        """
        arr = self.heap.allocate(self.env.rank, shape, dtype)
        self.heap.malloc_barrier.join(self.env)
        return arr

    # ------------------------------------------------------------------
    # Puts / gets

    def _check_sym(self, target) -> SymArray:
        if not isinstance(target, SymArray):
            raise SymmetryError(
                "SHMEM communication requires symmetric data objects; "
                f"got {type(target).__name__} (allocate with shmem.malloc)")
        return target

    def _put(self, target: SymArray, source: np.ndarray, pe: int,
             offset: int, elem_size: int | None, name: str) -> float:
        completion, commit = self._put_impl(
            target, source, pe, offset, elem_size, name, staged=False)
        commit()
        return completion

    def put_staged(self, target: SymArray, source: np.ndarray, pe: int,
                   offset: int = 0, elem_size: int | None = None,
                   name: str = "shmem_put") -> tuple[float, "object"]:
        """Issue a put whose target-side visibility is deferred.

        Used by the directive backends under fault injection (deferred
        delivery): the wire cost and pending-completion bookkeeping
        happen now, but the remote buffer is only written when the
        returned ``commit`` callable runs — at the synchronization that
        guarantees the put. Returns ``(completion_time, commit)``.
        """
        return self._put_impl(target, source, pe, offset, elem_size,
                              name, staged=True)

    def _put_impl(self, target: SymArray, source: np.ndarray, pe: int,
                  offset: int, elem_size: int | None, name: str,
                  *, staged: bool):
        target = self._check_sym(target)
        if not isinstance(source, np.ndarray):
            source = np.asarray(source)
        if not 0 <= pe < self.n_pes:
            raise ShmemError(f"PE {pe} out of range (n_pes={self.n_pes})")
        self.env.engine.check_peer_alive(pe)
        if elem_size is not None and source.dtype.itemsize != elem_size:
            raise ShmemError(
                f"{name}: source element size "
                f"{source.dtype.itemsize} does not match the call's "
                f"{elem_size}-byte type")
        mirror = target.mirror_on(pe).reshape(-1)
        src = np.ascontiguousarray(source).reshape(-1)
        if elem_size is not None and target.dtype.itemsize != elem_size:
            raise ShmemError(
                f"{name}: target element size {target.dtype.itemsize} "
                f"does not match the call's {elem_size}-byte type")
        if src.dtype != mirror.dtype:
            # putmem-style raw copy requires byte-compatible views.
            if src.dtype.itemsize != mirror.dtype.itemsize:
                raise ShmemError(
                    f"{name}: dtype mismatch {src.dtype} -> {mirror.dtype}")
            src = src.view(mirror.dtype)
        if offset < 0 or offset + src.size > mirror.size:
            raise ShmemError(
                f"{name}: put of {src.size} elements at offset {offset} "
                f"exceeds the {mirror.size}-element symmetric buffer")
        nbytes = src.size * mirror.dtype.itemsize
        post_t0 = self.env.now
        self.env.advance(self._tp.send_overhead(nbytes))
        faults = self.env.engine.faults
        extra = (faults.message_delay(self._tp, self.env.rank, pe, nbytes)
                 if faults is not None else 0.0)
        completion = self.env.now + self._tp.wire_time(nbytes) + extra
        self._pending.append(completion)
        self.env.engine.stats.count_message(SHMEM, nbytes)
        self.env.trace("shmem.put", pe=pe, nbytes=nbytes, call=name)
        profile = self.env.engine.profile
        if profile is not None:
            profile.add(pe, "message", post_t0, completion,
                        src=self.env.rank, dst=pe, nbytes=nbytes,
                        transport="shmem", call=name)
        if staged:
            # The put conceptually reads the source *now*: snapshot it,
            # since the commit runs later (at the covering sync).
            src = src.copy()

        def commit(mirror=mirror, lo=offset, src=src, target=target,
                   pe=pe, completion=completion):
            mirror[lo:lo + src.size] = src
            self._notify_cell_waiters(target, pe, completion)

        return completion, commit

    def put(self, target: SymArray, source: np.ndarray, pe: int,
            offset: int = 0) -> float:
        """Generic put (element size inferred from the buffers).

        Returns the virtual time at which the data is remotely visible.
        """
        return self._put(target, source, pe, offset, None, "shmem_put")

    def put_double(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 8-byte floats (``shmem_double_put``)."""
        return self._put(target, source, pe, offset, 8, "shmem_double_put")

    def put_float(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 4-byte floats (``shmem_float_put``)."""
        return self._put(target, source, pe, offset, 4, "shmem_float_put")

    def put_int(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 4-byte integers (``shmem_int_put``)."""
        return self._put(target, source, pe, offset, 4, "shmem_int_put")

    def put_long(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 8-byte integers (``shmem_long_put``)."""
        return self._put(target, source, pe, offset, 8, "shmem_long_put")

    def put32(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 4-byte elements (``shmem_put32``)."""
        return self._put(target, source, pe, offset, 4, "shmem_put32")

    def put64(self, target, source, pe: int, offset: int = 0) -> float:
        """Typed put of 8-byte elements (``shmem_put64``)."""
        return self._put(target, source, pe, offset, 8, "shmem_put64")

    def putmem(self, target, source, pe: int, offset: int = 0) -> float:
        """Raw byte copy (``shmem_putmem``)."""
        return self._put(target, source, pe, offset, None, "shmem_putmem")

    def get(self, source: SymArray, dest: np.ndarray, pe: int,
            offset: int = 0) -> None:
        """Blocking get: returns when ``dest`` holds the remote data."""
        source = self._check_sym(source)
        if not isinstance(dest, np.ndarray) or not dest.flags.writeable:
            raise ShmemError("get destination must be a writeable array")
        if not 0 <= pe < self.n_pes:
            raise ShmemError(f"PE {pe} out of range (n_pes={self.n_pes})")
        self.env.engine.check_peer_alive(pe)
        mirror = source.mirror_on(pe).reshape(-1)
        n = dest.size
        if offset < 0 or offset + n > mirror.size:
            raise ShmemError(
                f"get of {n} elements at offset {offset} exceeds the "
                f"{mirror.size}-element symmetric buffer")
        nbytes = n * mirror.dtype.itemsize
        self.env.advance(self._tp.send_overhead(nbytes))
        dest.reshape(-1)[...] = mirror[offset:offset + n]
        # A blocking get is a full round trip.
        self.env.advance(self._tp.latency(8) + self._tp.wire_time(nbytes))
        self.env.engine.stats.count_message(SHMEM, nbytes)
        self.env.trace("shmem.get", pe=pe, nbytes=nbytes)

    # ------------------------------------------------------------------
    # Completion & synchronization

    def quiet(self) -> None:
        """Remote completion of all of this PE's outstanding puts."""
        self.env.advance(self.model.quiet_overhead)
        self.env.engine.stats.count_sync("quiet")
        if self._pending:
            self.env.advance_to(max(self._pending))
            self._pending.clear()

    def fence(self) -> None:
        """Ordering point for this PE's puts.

        Our wire model delivers puts in issue order per target already,
        so fence only charges its call cost (and, conservatively, covers
        pending completions like quiet — Cray SHMEM's fence on Gemini
        was similarly heavyweight).
        """
        self.env.advance(self.model.quiet_overhead)
        self.env.engine.stats.count_sync("fence")
        if self._pending:
            self.env.advance_to(max(self._pending))
            self._pending.clear()

    def barrier_all(self) -> None:
        """Global barrier + completion of all outstanding puts."""
        self.quiet()
        bars = self.env.engine.services.setdefault(_BARRIER_KEY, {})
        key = ("all",)
        bar = bars.get(key)
        if bar is None:
            bar = Rendezvous(range(self.n_pes),
                             cost_fn=self.model.barrier_cost,
                             name="shmem-barrier-all")
            bars[key] = bar
        self.env.engine.stats.count_sync("barrier")
        bar.join(self.env)

    def barrier(self, members: Sequence[int]) -> None:
        """Barrier over a PE subset (SHMEM active-set barrier)."""
        self.quiet()
        key = tuple(sorted(members))
        bars = self.env.engine.services.setdefault(_BARRIER_KEY, {})
        bar = bars.get(key)
        if bar is None:
            bar = Rendezvous(key, cost_fn=self.model.barrier_cost,
                             name=f"shmem-barrier-{key}")
            bars[key] = bar
        self.env.engine.stats.count_sync("barrier")
        bar.join(self.env)

    # ------------------------------------------------------------------
    # Atomic memory operations (AMOs)

    def _amo_target(self, sym: SymArray, index: int, pe: int):
        sym = self._check_sym(sym)
        if not 0 <= pe < self.n_pes:
            raise ShmemError(f"PE {pe} out of range (n_pes={self.n_pes})")
        self.env.engine.check_peer_alive(pe)
        mirror = sym.mirror_on(pe).reshape(-1)
        if not 0 <= index < mirror.size:
            raise ShmemError(f"AMO index {index} out of range")
        return sym, mirror

    def _amo_charge(self, sym: SymArray, pe: int, name: str) -> float:
        """AMOs cost a put-sized issue; completion is a round trip for
        fetching variants (callers block on the returned time)."""
        nbytes = sym.data.dtype.itemsize
        self.env.advance(self._tp.send_overhead(nbytes))
        completion = self.env.now + self._tp.wire_time(nbytes)
        self.env.engine.stats.count_message(SHMEM, nbytes)
        self.env.trace("shmem.amo", pe=pe, call=name)
        return completion

    def atomic_add(self, sym: SymArray, index: int, value, pe: int) -> None:
        """Non-fetching remote add (``shmem_atomic_add``)."""
        sym, mirror = self._amo_target(sym, index, pe)
        completion = self._amo_charge(sym, pe, "shmem_atomic_add")
        mirror[index] += value
        self._pending.append(completion)
        self._notify_cell_waiters(sym, pe, completion)

    def atomic_fetch_inc(self, sym: SymArray, index: int, pe: int):
        """Fetch-and-increment (``shmem_atomic_fetch_inc``): returns the
        pre-increment value; blocks for the round trip."""
        sym, mirror = self._amo_target(sym, index, pe)
        completion = self._amo_charge(sym, pe, "shmem_atomic_fetch_inc")
        old = mirror[index].copy() if hasattr(mirror[index], "copy") \
            else mirror[index]
        mirror[index] += 1
        self.env.advance_to(completion + self._tp.latency(8))
        self._notify_cell_waiters(sym, pe, completion)
        return old

    def atomic_compare_swap(self, sym: SymArray, index: int, cond,
                            value, pe: int):
        """Compare-and-swap (``shmem_atomic_compare_swap``): writes
        ``value`` iff the remote cell equals ``cond``; returns the old
        value. Blocks for the round trip."""
        sym, mirror = self._amo_target(sym, index, pe)
        completion = self._amo_charge(sym, pe,
                                      "shmem_atomic_compare_swap")
        old = mirror[index].copy() if hasattr(mirror[index], "copy") \
            else mirror[index]
        if old == cond:
            mirror[index] = value
        self.env.advance_to(completion + self._tp.latency(8))
        self._notify_cell_waiters(sym, pe, completion)
        return old

    # ------------------------------------------------------------------
    # Point-to-point synchronization (flag idiom)

    def wait_until(self, sym: SymArray, index: int, op: str,
                   value) -> None:
        """Block until ``sym[index] op value`` on *this* PE.

        ``op`` is one of ``"eq" "ne" "gt" "ge" "lt" "le"``. The waiting
        PE is woken at the visibility time of the put that satisfies the
        condition.
        """
        sym = self._check_sym(sym)
        pred = _PREDICATES.get(op)
        if pred is None:
            raise ShmemError(
                f"unknown wait_until op {op!r}; choose from "
                f"{sorted(_PREDICATES)}")
        if not 0 <= index < sym.data.size:
            raise ShmemError(f"wait_until index {index} out of range")
        while not pred(sym.data.reshape(-1)[index], value):
            waiter = self.env.make_waiter(
                f"shmem_wait_until(sym {sym.sid}[{index}] {op} {value})")
            key = (sym.sid, self.env.rank)
            self.heap.cell_waiters.setdefault(key, []).append(waiter)
            self.env.block("shmem.wait_until")

    def _notify_cell_waiters(self, target: SymArray, pe: int,
                             completion: float) -> None:
        key = (target.sid, pe)
        waiters = self.heap.cell_waiters.pop(key, [])
        for w in waiters:
            # Re-check happens in the waiter's own while loop; wake at
            # the put's visibility time. Waiters are single-use and the
            # engine requires their owner to be blocked, so skip any
            # entry already woken by an earlier update of the same cell
            # (its owner re-registers a fresh waiter if it blocks again).
            if not w.woken:
                self.env.engine.wake(w, completion)

    # ------------------------------------------------------------------

    def broadcast(self, sym: SymArray, root: int) -> None:
        """Simple broadcast: the root puts to every other PE, then all
        synchronize (``shmem_broadcast`` flavour)."""
        sym = self._check_sym(sym)
        if not 0 <= root < self.n_pes:
            raise ShmemError(f"invalid root {root}")
        if self.my_pe == root:
            for pe in range(self.n_pes):
                if pe != root:
                    self.put(sym, sym.data, pe)
        self.barrier_all()
