"""A simulated SHMEM library (the paper's ``TARGET_COMM_SHMEM`` target).

Models the OpenSHMEM/Cray-SHMEM essentials the directive translation
relies on:

* a **symmetric heap** — buffers allocated collectively so the same
  object exists at the same "address" (heap slot) on every PE; the
  directive compiler checks symmetry before emitting SHMEM calls
  (Section III-B: "the buffers in sbuf and rbuf must also be symmetric
  data objects");
* **typed puts** — the data type is embedded in the call name
  (``put_double``, ``put_int``, ``put32`` ...) and must match the
  buffer's element size, the matching the paper's compiler performs;
* **completion calls** — ``quiet`` (remote completion of my puts),
  ``fence`` (ordering), ``barrier_all``/group ``barrier`` (collective
  sync + completion), ``wait_until`` (point-to-point flag sync).

Usage::

    from repro import shmem

    def program(env):
        sh = shmem.init(env)
        dst = sh.malloc(10, np.float64)   # symmetric, collective
        if sh.my_pe == 0:
            sh.put_double(dst, np.arange(10.0), pe=1)
            sh.quiet()
        sh.barrier_all()
"""

from repro.shmem.symheap import SymArray, SymmetricHeap
from repro.shmem.api import Shmem, init

__all__ = ["SymArray", "SymmetricHeap", "Shmem", "init"]
