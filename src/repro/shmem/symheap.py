"""The symmetric heap: collectively allocated, per-PE mirrored buffers.

A :class:`SymArray` is the handle a PE holds to one symmetric
allocation: the same heap slot (``sid``) designates a same-shape,
same-dtype array on every PE. SHMEM communication calls take a
``SymArray`` as the *remote* side and resolve the target PE's mirror
through the shared heap — exactly how symmetric addresses work on a
real machine, and the property the directive compiler validates before
emitting SHMEM calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShmemError, SymmetryError
from repro.sim.engine import Engine
from repro.sim.sync import Rendezvous

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Waiter

_SERVICE_KEY = "shmem_heap"


class SymArray:
    """Per-PE handle to one symmetric allocation."""

    def __init__(self, heap: "SymmetricHeap", sid: int, data: np.ndarray):
        self.heap = heap
        self.sid = sid
        #: This PE's local mirror.
        self.data = data

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the allocation."""
        return self.data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the allocation."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Element count of the allocation."""
        return self.data.size

    @property
    def nbytes(self) -> int:
        """Byte size of the allocation."""
        return self.data.nbytes

    def mirror_on(self, pe: int) -> np.ndarray:
        """The target PE's mirror of this allocation."""
        return self.heap.mirror(self.sid, pe)

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value):
        self.data[idx] = value

    def __repr__(self) -> str:
        return (f"<SymArray sid={self.sid} shape={self.shape} "
                f"dtype={self.dtype}>")


class SymmetricHeap:
    """Engine-wide registry of symmetric allocations."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._mirrors: dict[int, dict[int, np.ndarray]] = {}
        self._alloc_seq: dict[int, int] = {}  # per-PE allocation counter
        self._alloc_bar = Rendezvous(range(engine.nprocs),
                                     name="shmem-malloc")
        #: Waiters parked by wait_until, keyed by (sid, pe).
        self.cell_waiters: dict[tuple[int, int], list] = {}

    @classmethod
    def attach(cls, engine: Engine) -> "SymmetricHeap":
        """The engine-wide heap (created on first use)."""
        heap = engine.services.get(_SERVICE_KEY)
        if heap is None:
            heap = cls(engine)
            engine.services[_SERVICE_KEY] = heap
        return heap

    def allocate(self, pe: int, shape, dtype) -> SymArray:
        """Register this PE's mirror for its next allocation slot.

        Symmetric allocation is collective: every PE must perform the
        same sequence of allocations (the caller synchronizes).
        """
        sid = self._alloc_seq.get(pe, 0)
        self._alloc_seq[pe] = sid + 1
        data = np.zeros(shape, dtype=dtype)
        slot = self._mirrors.setdefault(sid, {})
        slot[pe] = data
        # Symmetry check against mirrors already registered in this slot.
        for other_pe, other in slot.items():
            if other.shape != data.shape or other.dtype != data.dtype:
                raise SymmetryError(
                    f"allocation {sid} is not symmetric: PE {pe} asked "
                    f"for {data.shape}/{data.dtype}, PE {other_pe} for "
                    f"{other.shape}/{other.dtype}")
        return SymArray(self, sid, data)

    def mirror(self, sid: int, pe: int) -> np.ndarray:
        """PE ``pe``'s array for allocation ``sid``."""
        try:
            return self._mirrors[sid][pe]
        except KeyError:
            raise ShmemError(
                f"PE {pe} has no mirror for symmetric allocation {sid} "
                "(was shmem.malloc called collectively?)") from None

    @property
    def malloc_barrier(self) -> Rendezvous:
        """The collective-allocation synchronization point."""
        return self._alloc_bar
