"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

One profile becomes one JSON object with a ``traceEvents`` array in the
trace-event format's *JSON object* flavor:

* process 0 (``ranks``) holds per-rank activity: one thread per rank,
  ``X`` complete events for compute/post/sync/window/barrier/stall
  spans and the recovery runtime's detect/retry/recovery spans, ``i``
  instant events for crash/checkpoint/restore marks;
* process 1 (``network``) holds deliveries: one thread per *source*
  rank, ``X`` events for message and notify spans (named by transport),
  so in-flight traffic reads as lanes under the ranks that produced it.

Timestamps are virtual microseconds (the trace-event unit). The event
list is deterministically ordered — metadata first, then by
``(ts, pid, tid, name)`` — and serialized with sorted keys, so exports
of the same run diff cleanly (the schema unit test relies on this).
"""

from __future__ import annotations

import json
from typing import Any

from repro.profiling.spans import Profile, Span

#: Span kinds drawn in the per-rank process.
_ACTIVITY = ("compute", "post", "sync", "window", "barrier", "stall",
             "detect", "retry", "recovery")
#: Span kinds drawn in the network process, on the sender's lane.
_NETWORK = ("message", "notify")
#: Zero-length marks drawn as instant events on the rank lane.
_INSTANT = ("crash", "checkpoint", "restore")


def _us(t: float) -> float:
    """Virtual seconds -> trace-event microseconds (rounded so equal
    virtual times serialize identically)."""
    return round(t * 1e6, 6)


def _args(span: Span) -> dict[str, Any]:
    """JSON-safe span attributes (tuples become lists)."""
    out: dict[str, Any] = {}
    for key, value in span.attrs.items():
        if isinstance(value, (list, tuple)):
            out[key] = [list(v) if isinstance(v, tuple) else v
                        for v in value]
        else:
            out[key] = value
    return out


def _name(span: Span) -> str:
    if span.kind == "message":
        transport = span.attrs.get("transport", "?")
        return f"message {span.attrs.get('src')}->{span.attrs.get('dst')} " \
               f"({transport})"
    if span.kind == "notify":
        return f"notify {span.attrs.get('src')}->{span.attrs.get('dst')}"
    if span.kind == "post":
        return f"post ({span.attrs.get('target', '?')})"
    if span.kind == "barrier":
        return f"barrier {span.attrs.get('name', '')}".rstrip()
    return span.kind


def chrome_trace(profile: Profile) -> dict[str, Any]:
    """Build the trace-event JSON object for one profile."""
    nranks = profile.nranks
    events: list[dict[str, Any]] = []

    meta: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "ranks"}},
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "network"}},
    ]
    for rank in range(nranks):
        meta.append({"ph": "M", "name": "thread_name", "pid": 0,
                     "tid": rank, "args": {"name": f"rank {rank}"}})
        meta.append({"ph": "M", "name": "thread_name", "pid": 1,
                     "tid": rank, "args": {"name": f"from rank {rank}"}})

    for span in profile:
        if span.t1 is None:  # pragma: no cover - finish() closes these
            continue
        if span.kind in _INSTANT:
            cat = "fault" if span.kind == "crash" else "recovery"
            events.append({"ph": "i", "name": span.kind, "cat": cat,
                           "pid": 0, "tid": span.rank, "ts": _us(span.t0),
                           "s": "t", "args": _args(span)})
            continue
        if span.kind in _NETWORK:
            src = span.attrs.get("src", span.rank)
            tid = src if isinstance(src, int) else span.rank
            pid = 1
        elif span.kind in _ACTIVITY:
            pid, tid = 0, span.rank
        else:  # pragma: no cover - future kinds default to the rank lane
            pid, tid = 0, span.rank
        events.append({"ph": "X", "name": _name(span), "cat": span.kind,
                       "pid": pid, "tid": tid, "ts": _us(span.t0),
                       "dur": _us(span.duration), "args": _args(span)})

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


def export_chrome(profile: Profile, path: str) -> None:
    """Write the trace-event JSON for ``profile`` to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(chrome_trace(profile), f, sort_keys=True,
                  separators=(",", ":"))
        f.write("\n")
