"""``repro-trace``: profile a simulated run and analyse its spans.

Three ways to obtain a profiled run:

* a **pragma source file** (the translator's input format), replayed
  through :func:`repro.core.analysis.progsim.simulate_program`::

      repro-trace examples/pragmas/slow/early_sync.c --critical-path

* a **communication pattern** from the catalog, via the fuzzer's
  target-parameterized pattern programs::

      repro-trace --pattern halo2d --target shmem --metrics

* the **WL-LSMS application** (directive variant, quick
  configuration)::

      repro-trace --app wllsms --export-chrome wllsms.json

Actions (combinable; ``--metrics`` is the default):

* ``--metrics`` — the per-rank / per-directive aggregation table,
  including the realized-overlap ratio and forfeited-overlap seconds;
* ``--critical-path`` — the longest dependency chain through the run
  with its per-kind breakdown, plus the forfeited-overlap figure to
  cross-check against ``repro-lint``'s CI101/CI102 estimated saving;
* ``--export-chrome FILE`` — trace-event JSON loadable in Perfetto or
  ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Sequence

from repro.profiling.chrome import export_chrome
from repro.profiling.critpath import critical_path
from repro.profiling.metrics import aggregate
from repro.profiling.spans import Profile

_TARGETS = {
    "mpi2s": "TARGET_COMM_MPI_2SIDE",
    "mpi1s": "TARGET_COMM_MPI_1SIDE",
    "shmem": "TARGET_COMM_SHMEM",
}

#: Pattern name -> (program factory module attr, default nprocs).
_PATTERNS = {
    "ring": ("_ring_prog", 5),
    "evenodd": ("_evenodd_prog", 6),
    "halo2d": ("_halo2d_prog", 6),
    "butterfly": ("_butterfly_prog", 4),
}


def _parse_vars(pairs: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        name, eq, value = pair.partition("=")
        if not eq or not name:
            raise SystemExit(f"--var expects NAME=VALUE, got {pair!r}")
        try:
            out[name] = int(value)
        except ValueError:
            raise SystemExit(f"--var {name}: {value!r} is not an integer")
    return out


def _profile_source(path: str, nprocs: int | None, target: str,
                    extra_vars: dict[str, int]) -> Profile:
    from repro.core.pragma import parse_program
    from repro.core.analysis.progsim import simulate_program

    try:
        with open(path, "r", encoding="utf-8") as f:
            source = f.read()
    except OSError as exc:
        raise SystemExit(f"repro-trace: cannot read {path}: {exc}")
    program = parse_program(source)
    outcome = simulate_program(program, nprocs=nprocs or 8,
                               target=_TARGETS[target],
                               extra_vars=extra_vars, profile=True)
    assert outcome.profile is not None
    return outcome.profile


def _profile_pattern(name: str, nprocs: int | None,
                     target: str) -> Profile:
    import importlib

    from repro import mpi
    from repro.netmodel import gemini_model
    from repro.sim import Engine
    from repro.sim.process import Env

    # repro.faults re-exports the fuzz *function*; fetch the module.
    fuzz = importlib.import_module("repro.faults.fuzz")
    attr, default_nprocs = _PATTERNS[name]
    prog: Callable[[Env, str], Any] = getattr(fuzz, attr)
    model = gemini_model()
    engine = Engine(nprocs or default_nprocs, profile=True)

    def main(env: Env) -> Any:
        mpi.init(env, model)
        return prog(env, _TARGETS[target])

    result = engine.run(main)
    assert result.profile is not None
    return result.profile


def _profile_app(nprocs: int | None, target: str) -> Profile:
    from repro.apps.wllsms.app import AppConfig, run_app

    config = AppConfig(n_lsms=2, group_size=4, t=32, tc=4, wl_steps=2,
                       variant="directive", target=_TARGETS[target],
                       profile=True)
    if nprocs is not None and nprocs != config.nprocs:
        raise SystemExit(
            f"repro-trace: the quick WL-LSMS configuration runs on "
            f"{config.nprocs} ranks; --nprocs cannot override it")
    result = run_app(config)
    assert result.profile is not None
    return result.profile


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-trace``; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Profile a simulated run: span metrics, "
                    "critical path, Chrome trace export.")
    parser.add_argument("source", nargs="?", default=None,
                        help="annotated pragma source file to replay")
    parser.add_argument("--pattern", choices=sorted(_PATTERNS),
                        help="profile a catalog communication pattern")
    parser.add_argument("--app", choices=["wllsms"],
                        help="profile an application (quick config)")
    parser.add_argument("--target", choices=sorted(_TARGETS),
                        default="mpi2s",
                        help="lowering target (default: mpi2s)")
    parser.add_argument("--nprocs", type=int, default=None,
                        help="simulated world size (defaults: 8 for "
                             "sources, per-pattern otherwise)")
    parser.add_argument("--var", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="bind a free clause variable (repeatable)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the per-rank/per-directive table "
                             "(default action)")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the longest dependency chain")
    parser.add_argument("--export-chrome", metavar="FILE", default=None,
                        help="write trace-event JSON for Perfetto")
    args = parser.parse_args(argv)

    sources = [s for s in (args.source, args.pattern, args.app)
               if s is not None]
    if len(sources) != 1:
        parser.error("exactly one of a source file, --pattern or --app "
                     "is required")
    if args.nprocs is not None and args.nprocs < 1:
        parser.error("--nprocs must be positive")

    if args.pattern is not None:
        profile = _profile_pattern(args.pattern, args.nprocs, args.target)
    elif args.app is not None:
        profile = _profile_app(args.nprocs, args.target)
    else:
        profile = _profile_source(args.source, args.nprocs, args.target,
                                  _parse_vars(args.var))

    did_something = False
    if args.export_chrome is not None:
        export_chrome(profile, args.export_chrome)
        print(f"wrote {args.export_chrome} "
              f"({len(profile)} spans, {profile.nranks} ranks)")
        did_something = True
    if args.critical_path:
        print(critical_path(profile).render())
        did_something = True
    if args.metrics or not did_something:
        if did_something:
            print()
        print(aggregate(profile).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
