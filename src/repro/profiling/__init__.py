"""Span-based profiling of simulated runs (``repro.profiling``).

Where :mod:`repro.sim.tracing` records flat point events, this package
records **spans** — begin/end intervals in virtual time carrying
directive, sync-plan and message identity — and builds the analyses the
paper's performance story needs on top of them:

* :mod:`repro.profiling.spans` — the :class:`Profile` recorder the
  engine and the communication libraries emit into
  (``Engine(profile=True)`` / ``RunResult.profile``);
* :mod:`repro.profiling.metrics` — per-rank / per-directive aggregation
  (bytes, message counts, time in post/compute/sync, realized-overlap
  ratio, forfeited-overlap seconds);
* :mod:`repro.profiling.chrome` — Chrome trace-event JSON exporter
  (loadable in Perfetto / ``chrome://tracing``);
* :mod:`repro.profiling.critpath` — critical-path extraction over the
  dynamic happens-before edges (reusing the verifier's
  :mod:`repro.core.analysis.hb` graph machinery);
* :mod:`repro.profiling.cli` — the ``repro-trace`` command line tool.

See ``docs/PROFILING.md`` for the span schema and metric definitions.
"""

from repro.profiling.spans import Profile, Span
from repro.profiling.metrics import ProfileMetrics, RankMetrics, aggregate
from repro.profiling.chrome import chrome_trace, export_chrome
from repro.profiling.critpath import CriticalPath, critical_path

__all__ = [
    "Profile",
    "Span",
    "ProfileMetrics",
    "RankMetrics",
    "aggregate",
    "chrome_trace",
    "export_chrome",
    "CriticalPath",
    "critical_path",
]
