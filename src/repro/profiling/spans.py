"""The span recorder the engine and libraries emit into.

A **span** is one interval of virtual time on one rank, with a kind and
free-form identity attributes. The emitting sites (see
``docs/PROFILING.md`` for the full schema):

========== ==========================================================
kind       emitted by
========== ==========================================================
compute    :meth:`repro.sim.process.Env.compute`
post       ``comm_p2p.__enter__`` — posting one directive instance
sync       :meth:`repro.core.region.PendingComm.sync` — one
           consolidated synchronization (carries the handle identity
           it waited on as ``send_keys``/``recv_keys``)
window     a posted-but-unsynced interval on one rank (posts open it,
           the covering sync closes it); the realized-overlap metric
           intersects compute spans with these
message    a payload delivery: a matched MPI send/recv pair, an
           ``MPI_Put`` or a ``shmem_put`` (``src``/``dst``/``seq``/
           ``nbytes``/``transport``)
notify     the one-sided flag update a receiver's sync waits on
barrier    one rank's episode of a :class:`repro.sim.sync.Rendezvous`
           (``critical_rank`` names the last arriver)
stall      a fault-injected dispatch stall
crash      a fault-injected rank kill (zero length)
detect     a survivor waiting out the failure detector's deadline
           before declaring a peer dead (``peer``)
retry      one bounded-retransmission attempt for a dropped message
           (``src``/``dst``/``attempt``/``transport``)
checkpoint one coordinated snapshot at a sync boundary (zero length,
           ``cut``)
restore    a restarted rank resuming from a checkpoint (zero length,
           ``cut``)
recovery   the bridge between an aborted attempt and its restart in a
           stitched multi-attempt profile (``policy``/``episode``/
           ``failed_ranks``)
========== ==========================================================

Spans are recorded by the rank that owns the interval except
``message``/``notify``, which are attributed to the *destination* rank
(the side whose progress they gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One interval of virtual time on one rank."""

    sid: int
    rank: int
    kind: str
    t0: float
    t1: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def __str__(self) -> str:
        end = "open" if self.t1 is None else f"{self.t1:.9f}"
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (f"[{self.t0:.9f}..{end}] rank {self.rank}: "
                f"{self.kind} {extra}".rstrip())


class Profile:
    """An append-only span log for one simulated run.

    Opt-in via ``Engine(profile=True)``; the collected profile rides on
    :attr:`repro.sim.engine.RunResult.profile`. Unlike
    :class:`repro.sim.tracing.Trace` this log is unbounded — profiling
    is an explicit request, and the analyses need the whole run.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        self._labels: dict[int, list[str]] = {}
        #: Per-rank virtual finish times, filled by the engine when the
        #: run completes (open spans are closed at their rank's finish).
        self.finish_times: list[float] = []

    # -- recording ---------------------------------------------------------

    def begin(self, rank: int, kind: str, t0: float, **attrs: Any) -> int:
        """Open a span; returns its id for the matching :meth:`end`."""
        sid = len(self.spans)
        span = Span(sid=sid, rank=rank, kind=kind, t0=t0, attrs=attrs)
        self.spans.append(span)
        self._open[sid] = span
        return sid

    def end(self, sid: int, t1: float, **attrs: Any) -> None:
        """Close a previously opened span, merging extra attributes."""
        span = self._open.pop(sid)
        span.t1 = max(t1, span.t0)
        if attrs:
            span.attrs.update(attrs)

    def add(self, rank: int, kind: str, t0: float, t1: float,
            **attrs: Any) -> int:
        """Record a span whose interval is already known."""
        sid = len(self.spans)
        self.spans.append(Span(sid=sid, rank=rank, kind=kind, t0=t0,
                               t1=max(t1, t0), attrs=attrs))
        return sid

    def instant(self, rank: int, kind: str, t: float, **attrs: Any) -> int:
        """Record a zero-length span (e.g. a crash)."""
        return self.add(rank, kind, t, t, **attrs)

    def finish(self, finish_times: list[float]) -> None:
        """Close any still-open spans at their rank's finish time.

        Called by the engine at run end; spans left open (e.g. a window
        abandoned on an error path) are clamped so every span has a
        well-defined interval for the analyses.
        """
        self.finish_times = list(finish_times)
        for span in list(self._open.values()):
            t = (finish_times[span.rank]
                 if span.rank < len(finish_times) else span.t0)
            self.end(span.sid, max(t, span.t0))

    # -- directive labels --------------------------------------------------
    #
    # The runtime DSL has no source locations; callers that *do* know
    # the directive identity (the program simulator replaying a parsed
    # Program, a pattern runner) push a label around the directive so
    # post spans can be attributed per directive.

    def push_label(self, rank: int, label: str) -> None:
        """Enter a directive-attribution scope on one rank."""
        self._labels.setdefault(rank, []).append(label)

    def pop_label(self, rank: int) -> None:
        """Leave the innermost directive-attribution scope."""
        stack = self._labels.get(rank)
        if stack:
            stack.pop()

    def current_label(self, rank: int) -> str | None:
        """The innermost active label on ``rank``, if any."""
        stack = self._labels.get(rank)
        return stack[-1] if stack else None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def of_kind(self, *kinds: str) -> list[Span]:
        """All spans of the given kind(s), in recording order."""
        want = set(kinds)
        return [s for s in self.spans if s.kind in want]

    def by_rank(self, rank: int) -> list[Span]:
        """All spans attributed to one rank, in recording order."""
        return [s for s in self.spans if s.rank == rank]

    @property
    def nranks(self) -> int:
        """Number of ranks that appear in the profile."""
        if self.finish_times:
            return len(self.finish_times)
        return max((s.rank for s in self.spans), default=-1) + 1

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished."""
        if self.finish_times:
            return max(self.finish_times)
        return max((s.t1 for s in self.spans if s.t1 is not None),
                   default=0.0)

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump of the first ``limit`` spans."""
        spans = self.spans if limit is None else self.spans[:limit]
        lines = [str(s) for s in spans]
        if limit is not None and len(self.spans) > limit:
            lines.append(f"... ({len(self.spans) - limit} more spans)")
        return "\n".join(lines)
