"""Critical-path extraction over a profile's happens-before edges.

The profile is re-cast as the verifier's dynamic graph: one
:class:`repro.core.analysis.hb.Event` per activity span (compute, post,
sync, barrier, stall) in per-rank program order, plus one extra trace of
*delivery* events (message/notify spans). Cross-rank edges express what
each span actually waited on in the run:

* a **sync** span depends on the delivery spans its ``send_keys`` /
  ``recv_keys`` identify — the ``(src, dst, seq)`` message identity the
  consolidated synchronization recorded. Notify deliveries are
  preferred where present (on the one-sided targets the flag update,
  not the payload, is what the receiver's sync blocks on);
* a **barrier** span on a non-critical rank depends on the episode's
  last arriver (``critical_rank``);
* a **delivery** leads back to the sender-side activity span in flight
  when it was posted.

The chain itself is recovered by the classic **backward time-walk**:
start at the last-finishing rank at the makespan and walk virtual time
backwards, charging each backward interval to the span that occupied
it; whenever the walk enters a waiting region (the tail of a sync gated
by a delivery, a barrier episode, an inter-span gap), it jumps through
the happens-before edge to the rank that caused the wait and continues
there. The charged intervals are disjoint sub-intervals of
``[0, makespan]`` by construction, so the reported path length can
never exceed the makespan — the invariant the catalog tests pin.

The per-kind breakdown of the winning chain shows where the run's
length actually comes from; the accompanying forfeited-overlap figure
is the measured counterpart of the advisor's CI101/CI102
``saving_s`` estimate.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.core.analysis.hb import Event, HBGraph
from repro.profiling.metrics import aggregate
from repro.profiling.spans import Profile, Span

#: Span kinds that occupy a rank (tile its timeline; windows overlap
#: compute/sync and are analysed by the metrics layer instead).
_ACTIVITY = ("compute", "post", "sync", "barrier", "stall")


@dataclass
class CPStep:
    """One chain link: a span and the seconds it charged to the path.

    Synthetic ``wait`` spans fill regions where the rank was blocked
    outside any recorded span (e.g. a raw-MPI wait between directive
    episodes)."""

    span: Span
    charge_s: float


@dataclass
class CriticalPath:
    """The longest dependency chain through one profiled run."""

    length_s: float
    makespan_s: float
    #: Seconds charged to the path, by span kind.
    breakdown: dict[str, float] = field(default_factory=dict)
    steps: list[CPStep] = field(default_factory=list)
    #: Measured forfeited overlap (see
    #: :attr:`repro.profiling.metrics.ProfileMetrics.forfeited_overlap_s`)
    #: — the number to cross-check against the advisor's CI101/CI102
    #: ``saving_s`` estimate.
    forfeited_overlap_s: float = 0.0

    def render(self, limit: int = 40) -> str:
        """Human-readable report: totals, per-kind breakdown, and the
        path itself oldest-first (at most ``limit`` steps)."""
        lines = [
            f"critical path       {self.length_s * 1e6:12.3f} us "
            f"({len(self.steps)} spans)",
            f"makespan            {self.makespan_s * 1e6:12.3f} us",
            "forfeited overlap   "
            f"{self.forfeited_overlap_s * 1e6:12.3f} us",
            "",
            "breakdown:",
        ]
        for kind, secs in sorted(self.breakdown.items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"  {kind:10s} {secs * 1e6:12.3f} us")
        lines.append("")
        lines.append("path (oldest first):")
        steps = self.steps if len(self.steps) <= limit \
            else self.steps[:limit]
        for step in steps:
            lines.append(f"  +{step.charge_s * 1e6:10.3f} us  "
                         f"{step.span}")
        if len(self.steps) > limit:
            lines.append(f"  ... ({len(self.steps) - limit} more spans)")
        return "\n".join(lines)


def _build_graph(profile: Profile) -> tuple[
        HBGraph, dict[Event, Span], dict[int, Event],
        list[list[Span]], list[Span]]:
    """Re-cast the profile as an hb graph with timed events."""
    nranks = profile.nranks
    per_rank: list[list[Span]] = [[] for _ in range(nranks)]
    deliveries: list[Span] = []
    for span in profile:
        if span.t1 is None:  # pragma: no cover - finish() closes these
            continue
        if span.kind in _ACTIVITY and 0 <= span.rank < nranks:
            per_rank[span.rank].append(span)
        elif span.kind in ("message", "notify"):
            deliveries.append(span)
    for spans in per_rank:
        spans.sort(key=lambda s: (s.t0, s.t1, s.sid))
    deliveries.sort(key=lambda s: (s.t0, s.t1, s.sid))

    graph = HBGraph(nprocs=nranks)
    span_of: dict[Event, Span] = {}
    event_of: dict[int, Event] = {}

    for rank, spans in enumerate(per_rank):
        trace: list[Event] = []
        for i, span in enumerate(spans):
            ev = Event(rank=rank, index=i, kind=span.kind)
            trace.append(ev)
            span_of[ev] = span
            event_of[span.sid] = ev
        graph.traces.append(trace)
    net: list[Event] = []
    for i, span in enumerate(deliveries):
        ev = Event(rank=nranks, index=i, kind=span.kind)
        net.append(ev)
        span_of[ev] = span
        event_of[span.sid] = ev
    graph.traces.append(net)

    # Delivery index: (src, dst, seq) -> candidate delivery spans, the
    # one-sided notify (the receiver's actual gate) kept apart from the
    # payload message so it wins where both exist.
    by_key: dict[tuple[int, int, int], dict[str, list[Span]]] = {}
    for span in deliveries:
        seq = span.attrs.get("seq")
        src = span.attrs.get("src")
        dst = span.attrs.get("dst")
        if seq is None or src is None or dst is None:
            continue
        slot = by_key.setdefault((src, dst, seq),
                                 {"message": [], "notify": []})
        slot[span.kind].append(span)

    def gate_for(key: tuple[int, int, int],
                 deadline: float) -> Span | None:
        slot = by_key.get(key)
        if slot is None:
            return None
        for kind in ("notify", "message"):
            best: Span | None = None
            for cand in slot[kind]:
                assert cand.t1 is not None
                if cand.t1 <= deadline and (
                        best is None or cand.t1 > best.t1):  # type: ignore
                    best = cand
            if best is not None:
                return best
        return None

    # sync -> the deliveries it waited on.
    for rank_trace in graph.traces[:nranks]:
        for ev in rank_trace:
            span = span_of[ev]
            if span.kind != "sync":
                continue
            assert span.t1 is not None
            keys = list(span.attrs.get("recv_keys", ())) \
                + list(span.attrs.get("send_keys", ()))
            for key in keys:
                gate = gate_for(tuple(key), span.t1)
                if gate is not None:
                    graph.add_dep(ev, event_of[gate.sid])

    # barrier episode: everyone waits for the last arriver.
    episodes: dict[tuple, dict[int, Span]] = {}
    for rank, spans in enumerate(per_rank):
        for span in spans:
            if span.kind == "barrier":
                key = (span.attrs.get("name"), span.attrs.get("gen"))
                episodes.setdefault(key, {})[rank] = span
    for members in episodes.values():
        critical = None
        for span in members.values():
            critical = span.attrs.get("critical_rank", critical)
        if critical is None or critical not in members:
            continue
        crit_ev = event_of[members[critical].sid]
        for rank, span in members.items():
            if rank != critical:
                graph.add_dep(event_of[span.sid], crit_ev)

    return graph, span_of, event_of, per_rank, deliveries


def critical_path(profile: Profile) -> CriticalPath:
    """Extract the run's critical chain by a backward time-walk."""
    graph, span_of, event_of, per_rank, deliveries = _build_graph(profile)
    nranks = graph.nprocs
    makespan = profile.makespan

    starts = [[s.t0 for s in spans] for spans in per_rank]
    #: Deliveries addressed to each rank, sorted by end time (the gap
    #: fallback: what woke a rank blocked outside any recorded span).
    inbound: list[list[Span]] = [[] for _ in range(nranks)]
    for d in deliveries:
        dst = d.attrs.get("dst", d.rank)
        if isinstance(dst, int) and 0 <= dst < nranks:
            inbound[dst].append(d)
    for lst in inbound:
        lst.sort(key=lambda s: (s.t1, s.sid))
    inbound_ends = [[s.t1 for s in lst] for lst in inbound]

    steps: list[CPStep] = []
    synth_sid = -1

    def charge(span: Span, seconds: float) -> None:
        if seconds > 0:
            steps.append(CPStep(span=span, charge_s=seconds))

    def charge_wait(rank: int, t0: float, t1: float) -> None:
        nonlocal synth_sid
        if t1 > t0:
            steps.append(CPStep(
                span=Span(sid=synth_sid, rank=rank, kind="wait",
                          t0=t0, t1=t1), charge_s=t1 - t0))
            synth_sid -= 1

    def sync_gate(span: Span, t: float) -> Span | None:
        """The latest delivery this sync waited on that ended in
        ``(span.t0, t]``."""
        ev = event_of.get(span.sid)
        best: Span | None = None
        for dep in graph.deps.get(ev, ()):
            g = span_of[dep]
            assert g.t1 is not None
            if span.t0 < g.t1 <= t and (
                    best is None or g.t1 > best.t1):  # type: ignore
                best = g
        return best

    def gap_gate(rank: int, lo: float, hi: float) -> Span | None:
        """The latest delivery into ``rank`` ending in ``(lo, hi]``."""
        i = bisect_right(inbound_ends[rank], hi) - 1
        if i >= 0:
            g = inbound[rank][i]
            assert g.t1 is not None
            if g.t1 > lo:
                return g
        return None

    def jump_through(g: Span, t: float) -> tuple[int, float] | None:
        """Charge a delivery and return the sender-side resume point."""
        assert g.t1 is not None
        charge(g, g.t1 - g.t0)
        src = g.attrs.get("src")
        if isinstance(src, int) and 0 <= src < nranks and g.t0 < t:
            return src, g.t0
        return None

    # Start on the last-finishing rank at the makespan.
    if profile.finish_times:
        rank = max(range(nranks), key=lambda r: profile.finish_times[r])
    else:
        rank = max(range(nranks),
                   key=lambda r: per_rank[r][-1].t1 if per_rank[r]
                   else 0.0, default=0) if nranks else 0
    t = makespan

    limit = 4 * len(profile.spans) + 64
    while t > 0 and nranks and limit > 0:
        limit -= 1
        i = bisect_left(starts[rank], t) - 1
        span = per_rank[rank][i] if i >= 0 else None
        if span is None:
            # No recorded span before t on this rank (e.g. a rank doing
            # raw-MPI waits only): follow the latest inbound delivery.
            gate = gap_gate(rank, 0.0, t)
            if gate is not None:
                assert gate.t1 is not None
                charge_wait(rank, gate.t1, t)
                nxt = jump_through(gate, t)
                if nxt is not None:
                    rank, t = nxt
                    continue
            charge_wait(rank, 0.0, min(t, gate.t1 if gate is not None
                                       and gate.t1 is not None else t))
            break
        assert span.t1 is not None
        if span.t1 < t:
            # Gap after the span: blocked outside any recorded span.
            gate = gap_gate(rank, span.t1, t)
            if gate is not None:
                assert gate.t1 is not None
                charge_wait(rank, gate.t1, t)
                nxt = jump_through(gate, t)
                if nxt is not None:
                    rank, t = nxt
                    continue
                t = span.t1  # strict progress when the jump is degenerate
                continue
            charge_wait(rank, span.t1, t)
            t = span.t1
            continue
        if span.kind == "sync":
            gate = sync_gate(span, t)
            if gate is not None:
                assert gate.t1 is not None
                charge(span, t - gate.t1)
                nxt = jump_through(gate, t)
                if nxt is not None:
                    rank, t = nxt
                    continue
                t = span.t0  # strict progress when the jump is degenerate
                continue
        elif span.kind == "barrier":
            crit = span.attrs.get("critical_rank")
            if (isinstance(crit, int) and crit != rank
                    and 0 <= crit < nranks):
                crit_ev = next(
                    (d for d in graph.deps.get(
                        event_of.get(span.sid), ())), None)
                crit_span = span_of.get(crit_ev) if crit_ev else None
                if crit_span is not None and crit_span.t0 > span.t0:
                    # Waited for the last arriver: charge the release
                    # tail here, resume on the critical rank at its
                    # arrival.
                    charge(span, t - min(t, crit_span.t0))
                    rank, t = crit, min(t, crit_span.t0)
                    continue
        charge(span, t - span.t0)
        t = span.t0

    steps.reverse()
    breakdown: dict[str, float] = {}
    for step in steps:
        breakdown[step.span.kind] = \
            breakdown.get(step.span.kind, 0.0) + step.charge_s

    return CriticalPath(
        length_s=sum(s.charge_s for s in steps), makespan_s=makespan,
        breakdown=breakdown, steps=steps,
        forfeited_overlap_s=aggregate(profile).forfeited_overlap_s)
