"""Per-rank / per-directive aggregation over a recorded profile.

The metrics implement the paper's overlap vocabulary numerically:

* **realized-overlap ratio** — of the compute time a rank performed,
  the fraction that ran inside a *window* (a posted-but-unsynced
  interval opened by a directive post and closed by the covering
  consolidated sync). Ratio 1.0 means every compute second had
  communication in flight underneath it; 0.0 means the program never
  computed while communication was pending.
* **forfeited-overlap seconds** — per rank, the sync time that compute
  performed *outside* windows could have hidden:
  ``min(sync_s, compute_s - compute_overlapped_s)``. This is the
  measured counterpart of the advisor's CI101/CI102
  ``estimated_saving_s`` (a *prediction* from hoisting statements);
  :mod:`repro.profiling.critpath` cross-checks the two.

Per-directive rows group post spans by their attribution label (pushed
by the program simulator as ``p2p@L<line>``); posts recorded outside
any label scope land in the ``"unlabeled"`` row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiling.spans import Profile


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge intervals into a disjoint, sorted union."""
    out: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        if out and t0 <= out[-1][1]:
            if t1 > out[-1][1]:
                out[-1] = (out[-1][0], t1)
        else:
            out.append((t0, t1))
    return out


def _overlap(t0: float, t1: float,
             union: list[tuple[float, float]]) -> float:
    """Length of [t0, t1] covered by the disjoint union."""
    total = 0.0
    for u0, u1 in union:
        if u1 <= t0:
            continue
        if u0 >= t1:
            break
        total += min(t1, u1) - max(t0, u0)
    return total


@dataclass
class RankMetrics:
    """Aggregated span time and traffic of one rank."""

    rank: int
    compute_s: float = 0.0
    #: Compute time spent inside posted-but-unsynced windows.
    compute_overlapped_s: float = 0.0
    post_s: float = 0.0
    sync_s: float = 0.0
    barrier_s: float = 0.0
    stall_s: float = 0.0
    msgs_sent: int = 0
    msgs_recv: int = 0
    bytes_sent: int = 0
    bytes_recv: int = 0

    @property
    def overlap_ratio(self) -> float:
        """Fraction of compute that ran under in-flight communication
        (0.0 when the rank performed no compute)."""
        if self.compute_s <= 0.0:
            return 0.0
        return min(1.0, self.compute_overlapped_s / self.compute_s)

    @property
    def forfeited_overlap_s(self) -> float:
        """Sync seconds the rank's un-overlapped compute could have
        hidden had it been moved inside the windows."""
        return max(0.0, min(self.sync_s,
                            self.compute_s - self.compute_overlapped_s))


@dataclass
class DirectiveMetrics:
    """Traffic attributed to one directive label."""

    label: str
    posts: int = 0
    messages: int = 0
    bytes: int = 0
    post_s: float = 0.0


@dataclass
class ProfileMetrics:
    """The aggregate of one profile: per-rank rows plus directive rows."""

    makespan_s: float
    ranks: list[RankMetrics] = field(default_factory=list)
    directives: dict[str, DirectiveMetrics] = field(default_factory=dict)

    @property
    def realized_overlap_ratio(self) -> float:
        """Whole-run overlap ratio: total overlapped compute over total
        compute across all ranks (0.0 with no compute anywhere)."""
        total = sum(r.compute_s for r in self.ranks)
        if total <= 0.0:
            return 0.0
        overlapped = sum(r.compute_overlapped_s for r in self.ranks)
        return min(1.0, overlapped / total)

    @property
    def forfeited_overlap_s(self) -> float:
        """The run's forfeited overlap: the worst rank's value (ranks
        forfeit concurrently, so their losses do not add up in time)."""
        return max((r.forfeited_overlap_s for r in self.ranks),
                   default=0.0)

    @property
    def total_bytes(self) -> int:
        """Payload bytes delivered, counted once on the receive side."""
        return sum(r.bytes_recv for r in self.ranks)

    @property
    def total_messages(self) -> int:
        """Deliveries, counted once on the receive side."""
        return sum(r.msgs_recv for r in self.ranks)

    def render(self) -> str:
        """Human-readable table of the per-rank and directive rows."""
        lines = [
            f"makespan            {self.makespan_s * 1e6:12.3f} us",
            f"messages            {self.total_messages:12d}",
            f"bytes               {self.total_bytes:12d}",
            f"realized overlap    {self.realized_overlap_ratio:12.3f}",
            "forfeited overlap   "
            f"{self.forfeited_overlap_s * 1e6:12.3f} us",
            "",
            "rank  compute_us  overlap_us    post_us    sync_us "
            "barrier_us   ratio  sent  recv      bytes",
        ]
        for r in self.ranks:
            lines.append(
                f"{r.rank:4d} {r.compute_s * 1e6:11.3f} "
                f"{r.compute_overlapped_s * 1e6:11.3f} "
                f"{r.post_s * 1e6:10.3f} {r.sync_s * 1e6:10.3f} "
                f"{r.barrier_s * 1e6:10.3f} {r.overlap_ratio:7.3f} "
                f"{r.msgs_sent:5d} {r.msgs_recv:5d} "
                f"{r.bytes_recv:10d}")
        if self.directives:
            lines.append("")
            lines.append("directive             posts  messages      "
                         "bytes    post_us")
            for label in sorted(self.directives):
                d = self.directives[label]
                lines.append(
                    f"{label:20s} {d.posts:6d} {d.messages:9d} "
                    f"{d.bytes:10d} {d.post_s * 1e6:10.3f}")
        return "\n".join(lines)


def aggregate(profile: Profile) -> ProfileMetrics:
    """Fold a profile's spans into :class:`ProfileMetrics`."""
    nranks = profile.nranks
    ranks = [RankMetrics(rank=r) for r in range(nranks)]
    windows: dict[int, list[tuple[float, float]]] = {}
    computes: dict[int, list[tuple[float, float]]] = {}
    directives: dict[str, DirectiveMetrics] = {}

    def directive_row(span_attrs: dict) -> DirectiveMetrics:
        label = str(span_attrs.get("label", "unlabeled"))
        row = directives.get(label)
        if row is None:
            row = directives[label] = DirectiveMetrics(label=label)
        return row

    for span in profile:
        if span.t1 is None:  # pragma: no cover - finish() closes these
            continue
        dur = span.duration
        if 0 <= span.rank < nranks:
            rm = ranks[span.rank]
        else:  # pragma: no cover - defensive
            continue
        if span.kind == "compute":
            rm.compute_s += dur
            computes.setdefault(span.rank, []).append((span.t0, span.t1))
        elif span.kind == "post":
            rm.post_s += dur
            row = directive_row(span.attrs)
            row.posts += 1
            row.post_s += dur
            row.messages += int(span.attrs.get("sends", 0)) \
                + int(span.attrs.get("recvs", 0))
            row.bytes += int(span.attrs.get("bytes", 0))
        elif span.kind == "sync":
            rm.sync_s += dur
        elif span.kind == "barrier":
            rm.barrier_s += dur
        elif span.kind == "stall":
            rm.stall_s += dur
        elif span.kind == "window":
            windows.setdefault(span.rank, []).append((span.t0, span.t1))
        elif span.kind in ("message", "notify"):
            src = span.attrs.get("src")
            nbytes = int(span.attrs.get("nbytes", 0))
            rm.msgs_recv += 1
            rm.bytes_recv += nbytes
            if isinstance(src, int) and 0 <= src < nranks:
                ranks[src].msgs_sent += 1
                ranks[src].bytes_sent += nbytes

    for rank, intervals in computes.items():
        union = _union(windows.get(rank, []))
        if not union:
            continue
        rm = ranks[rank]
        for t0, t1 in intervals:
            rm.compute_overlapped_s += _overlap(t0, t1, union)

    return ProfileMetrics(makespan_s=profile.makespan, ranks=ranks,
                          directives=directives)
