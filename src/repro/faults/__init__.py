"""Fault injection, adversarial timing and sync-plan fuzzing.

The robustness layer of the simulator: declarative, seed-deterministic
:class:`FaultPlan` schedules (message jitter / reordering / drops, rank
stalls, rank crashes) compiled into a :class:`FaultInjector` the engine
consults; an opt-in progress :class:`Watchdog` turning hangs into rich
reports; the sync-plan correctness fuzzer of
:mod:`repro.faults.fuzz`; and the recovery-runtime chaos soak of
:mod:`repro.faults.chaos` (crash + drop + stall plans recovered by
:mod:`repro.recovery` with bit-exactness asserted).

Typical use::

    from repro.faults import FaultPlan, RankCrash, Watchdog
    from repro.sim import Engine

    plan = FaultPlan(seed=7, delay_jitter=1e-5, reorder_prob=0.25,
                     crashes=(RankCrash(rank=2, at=0.0),))
    eng = Engine(8, faults=plan, watchdog=Watchdog(wall_timeout=30.0))
    eng.run(main)   # raises RankFailedError naming rank 2
"""

from repro.faults.chaos import (
    SOAK_CASES,
    SOAK_NAMES,
    ChaosCase,
    ChaosFailure,
    chaos_one,
    chaos_plan,
    chaos_soak,
)
from repro.faults.fuzz import (
    CASE_NAMES,
    FUZZ_TARGETS,
    STATIC_TWINS,
    FuzzFailure,
    StaticTwin,
    fuzz,
    fuzz_one,
    static_twin_program,
    weaken_pending_sync,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, RankCrash, RankStall
from repro.faults.watchdog import Watchdog

__all__ = [
    "CASE_NAMES",
    "FUZZ_TARGETS",
    "SOAK_CASES",
    "SOAK_NAMES",
    "STATIC_TWINS",
    "ChaosCase",
    "ChaosFailure",
    "FaultInjector",
    "FaultPlan",
    "FuzzFailure",
    "RankCrash",
    "RankStall",
    "StaticTwin",
    "Watchdog",
    "chaos_one",
    "chaos_plan",
    "chaos_soak",
    "fuzz",
    "fuzz_one",
    "static_twin_program",
    "weaken_pending_sync",
]
