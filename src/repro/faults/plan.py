"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` describes one adversarial schedule: how message
delivery timing is perturbed (jitter, reordering pressure, drops with
retransmission cost) and which ranks are stalled or killed, all derived
deterministically from one seed. Plans are immutable values — the same
plan replayed against the same program produces the bit-identical run,
which is what makes fuzzer failures debuggable.

The perturbations deliberately stay inside the legal envelope of the
modelled networks: extra *delay* is always legal (wires are slow), and
reordering is expressed as adversarial delay rather than queue
permutation so MPI's same-``(source, dest, tag)`` non-overtaking rule
is never violated. A correct program must therefore produce identical
*data* under any plan; only virtual times may change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.inject import FaultInjector


@dataclass(frozen=True)
class RankStall:
    """Freeze one rank for ``duration`` virtual seconds.

    Fires once: the first time ``rank`` is selected to run at or after
    virtual time ``at``, its clock jumps by ``duration`` before it runs
    (an OS-noise / page-fault / GC-pause stand-in).
    """

    rank: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"stall rank must be >= 0, got {self.rank}")
        if self.at < 0 or self.duration < 0:
            raise ValueError("stall at/duration must be >= 0")


@dataclass(frozen=True)
class RankCrash:
    """Kill one rank: the first time ``rank`` is selected to run at or
    after virtual time ``at``, it is removed from the run permanently.

    Messages the rank posted before dying stay in flight; survivors that
    later touch the dead rank get a
    :class:`repro.errors.RankFailedError`.
    """

    rank: int
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"crash rank must be >= 0, got {self.rank}")
        if self.at < 0:
            raise ValueError("crash time must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """One seed-deterministic adversarial schedule.

    All randomness is drawn from per-``(source, dest)`` streams keyed by
    ``seed`` (see :func:`repro.util.rng.stream_rng`), so the
    perturbation a message experiences depends only on the seed and its
    channel's message history — never on host scheduling.
    """

    #: Seed of every random stream the plan uses; recorded in
    #: :class:`repro.sim.stats.SimStats` for replay.
    seed: int = 0
    #: Maximum extra per-message wire delay, seconds (uniform draw in
    #: ``[0, delay_jitter]``). ``0`` disables jitter.
    delay_jitter: float = 0.0
    #: Probability a message is singled out for adversarial extra delay
    #: large enough for unrelated later messages to overtake it.
    reorder_prob: float = 0.0
    #: The singled-out message is delayed by this multiple of its own
    #: wire time.
    reorder_factor: float = 4.0
    #: Per-attempt probability a message is dropped and retransmitted,
    #: each drop costing :meth:`TransportParams.retransmit_cost`.
    drop_prob: float = 0.0
    #: Drop attempts are capped here: the message always gets through in
    #: the end (we model lossy-but-reliable transport cost, not loss).
    max_retransmits: int = 3
    #: Scheduled one-shot rank stalls.
    stalls: tuple[RankStall, ...] = ()
    #: Scheduled rank kills.
    crashes: tuple[RankCrash, ...] = ()
    #: When true (default), payload writes land in user buffers only at
    #: the synchronization call that guarantees them (Wait/Waitall, a
    #: blocking Recv, the one-sided notify consumption) instead of at
    #: match time — so a sync plan that under-synchronizes leaves stale
    #: data that a comparison against an unfaulted immediate-delivery
    #: run catches.
    deferred_delivery: bool = True

    def __post_init__(self) -> None:
        for attr in ("delay_jitter", "reorder_factor"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        for attr in ("reorder_prob", "drop_prob"):
            if not 0.0 <= getattr(self, attr) <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1]")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        # Normalize sequence fields so plans are hashable values.
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @classmethod
    def jitter(cls, seed: int, delay_jitter: float = 1e-5,
               reorder_prob: float = 0.25,
               drop_prob: float = 0.05) -> "FaultPlan":
        """The fuzzer's stock timing-perturbation plan for one seed."""
        return cls(seed=seed, delay_jitter=delay_jitter,
                   reorder_prob=reorder_prob, drop_prob=drop_prob)

    @classmethod
    def neutral(cls, seed: int = 0) -> "FaultPlan":
        """No perturbations, but deferred delivery active — isolates
        the deferred-delivery mechanism from timing noise."""
        return cls(seed=seed)

    @property
    def perturbs_timing(self) -> bool:
        """True when any message-timing perturbation is active."""
        return (self.delay_jitter > 0 or self.reorder_prob > 0
                or self.drop_prob > 0)

    def compile(self) -> FaultInjector:
        """Build the runtime injector the engine consults."""
        return FaultInjector(self)
