"""Chaos soak: crash + drop + stall plans against the recovery runtime.

Where :mod:`repro.faults.fuzz` attacks the *sync plan* (is the data
valid once synchronization ran?), the chaos soak attacks the *recovery
runtime* (:mod:`repro.recovery`): seed-deterministic plans that crash
one or two ranks mid-run — on top of message drops and a scheduled
stall — are thrown at every catalog pattern on every lowering target,
under both ULFM-style policies. Each run must

* **complete** (the recovery loop converges within its episode budget),
* **be bit-exact**: respawn reproduces the unfaulted baseline at the
  original world size; shrink reproduces the unfaulted baseline at the
  *final* (shrunk) world size — the pattern programs derive all
  partners from ``env.rank``/``env.size``, so re-running at the
  survivor count *is* the ULFM re-map,
* **bound its retries**: every retransmission attempt recorded in the
  profile stays under the policy's ``max_retries``.

Every failure is addressable by ``(pattern, target, policy, seed)`` and
replays bit-identically. ``python -m repro.faults.chaos`` runs the
sweep and can emit a recovery-stats JSON artifact for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro import mpi
from repro.core import comm_parameters, comm_p2p
from repro.faults.fuzz import (
    FUZZ_TARGETS,
    FUZZ_WATCHDOG,
    _alloc_rbuf,
    _butterfly_prog,
    _contents,
    _diff,
    _evenodd_prog,
    _halo2d_prog,
    _ring_prog,
)
from repro.faults.plan import FaultPlan, RankCrash, RankStall
from repro.netmodel import gemini_model
from repro.patterns.catalog import power_of_two
from repro.recovery import (
    POLICIES,
    RecoveryConfig,
    RecoveryError,
    RetryPolicy,
    run_with_recovery,
)
from repro.sim import Engine
from repro.util.rng import stream_rng


def _fan_prog(env, target: str):
    """Root scatters a distinct block to every other rank (fan-out)."""
    out = np.arange(4.0) * (env.rank + 1)
    blocks = [_alloc_rbuf(env, target, 4) for _ in range(env.size)]
    with comm_parameters(env):
        for peer in range(env.size):
            with comm_p2p(env, sender=0, receiver=peer,
                          sendwhen=env.rank == 0 and peer != 0,
                          receivewhen=env.rank == peer and peer != 0,
                          sbuf=out, rbuf=blocks[peer], target=target):
                pass
    return _contents(blocks[env.rank]) if env.rank != 0 else out.tolist()


@dataclass(frozen=True)
class ChaosCase:
    """One pattern the soak can recover on any target at any size."""

    name: str
    prog: Callable
    nprocs: int
    #: World-size predicate shrink must respect (None = any size).
    valid_world: Callable[[int], bool] | None = None


#: The soak's pattern catalog. All programs compute every partner from
#: ``env.rank``/``env.size``, which is what makes shrink's re-map a
#: plain re-run at the survivor count.
SOAK_CASES = (
    ChaosCase("ring", _ring_prog, 5),
    ChaosCase("evenodd", _evenodd_prog, 6),
    ChaosCase("halo2d", _halo2d_prog, 6),
    ChaosCase("butterfly", _butterfly_prog, 4, valid_world=power_of_two),
    ChaosCase("fan", _fan_prog, 5),
)

SOAK_NAMES = tuple(c.name for c in SOAK_CASES)

#: Retry policy the soak runs under; ``max_retries`` is the bound the
#: retry-span assertion checks.
SOAK_RETRY = RetryPolicy(max_retries=4, backoff=2.0, jitter_frac=0.5)


@dataclass(frozen=True)
class ChaosFailure:
    """One soak failure, addressable for bit-identical replay."""

    pattern: str
    target: str
    policy: str
    seed: int
    detail: str

    def __str__(self) -> str:
        return (f"FAIL {self.pattern} on {self.target} under "
                f"{self.policy} at seed {self.seed}: {self.detail}\n"
                f"  replay: chaos_one({self.pattern!r}, {self.target!r}, "
                f"{self.policy!r}, seed={self.seed})")


def _main_for(case: ChaosCase, target: str) -> Callable:
    model = gemini_model()

    def main(env):
        mpi.init(env, model)
        return case.prog(env, target)

    return main


def chaos_plan(case: ChaosCase, target: str, seed: int,
               makespan: float, nfail: int) -> FaultPlan:
    """The seed-deterministic crash+drop+stall plan for one triple.

    Crash ranks and times are drawn from a stream keyed by the case,
    target and seed (independent of the per-channel message streams, so
    the same seed still perturbs message timing its own way). Crash
    times land inside the unfaulted makespan so they actually fire.
    """
    rng = stream_rng(seed, 101, SOAK_NAMES.index(case.name),
                     FUZZ_TARGETS.index(target), nfail)
    ranks = rng.choice(case.nprocs, size=nfail, replace=False)
    crashes = tuple(
        RankCrash(rank=int(r), at=float(rng.uniform(0.0, makespan)))
        for r in sorted(int(x) for x in ranks))
    stall_rank = int(rng.integers(case.nprocs))
    stalls = (RankStall(rank=stall_rank,
                        at=float(rng.uniform(0.0, makespan)),
                        duration=makespan * 0.25),)
    return FaultPlan(seed=seed, delay_jitter=1e-5, drop_prob=0.1,
                     stalls=stalls, crashes=crashes)


def chaos_one(pattern: str, target: str, policy: str, seed: int,
              nfail: int = 1, watchdog=FUZZ_WATCHDOG,
              baselines: dict | None = None) -> ChaosFailure | None:
    """Run one (pattern, target, policy, seed) soak; None means passed.

    ``baselines`` maps world size -> unfaulted result values for this
    (pattern, target); pass a shared dict when sweeping seeds so each
    reference world is simulated once.
    """
    case = next(c for c in SOAK_CASES if c.name == pattern)
    if baselines is None:
        baselines = {}

    def baseline(world: int):
        if world not in baselines:
            baselines[world] = Engine(world).run(
                _main_for(case, target)).values
        return baselines[world]

    ref = Engine(case.nprocs).run(_main_for(case, target))
    baselines.setdefault(case.nprocs, ref.values)
    plan = chaos_plan(case, target, seed, ref.makespan, nfail)
    config = RecoveryConfig(policy=policy, retry=SOAK_RETRY,
                            valid_world=case.valid_world)
    try:
        res = run_with_recovery(_main_for(case, target), case.nprocs,
                                faults=plan, config=config,
                                watchdog=watchdog, profile=True)
    except RecoveryError as exc:
        return ChaosFailure(pattern, target, policy, seed,
                            f"recovery gave up: {exc}")
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ChaosFailure(pattern, target, policy, seed,
                            f"raised {type(exc).__name__}: {exc}")
    # Bounded retries: no recorded attempt may reach the policy's cap.
    over = [s for s in res.profile.of_kind("retry")
            if s.attrs.get("attempt", 0) >= SOAK_RETRY.max_retries]
    if over:
        return ChaosFailure(pattern, target, policy, seed,
                            f"{len(over)} retry span(s) at or past "
                            f"max_retries={SOAK_RETRY.max_retries}")
    # Bit-exact payloads against the policy's reference world.
    world = res.recovery.final_world
    detail = _diff(baseline(world), res.values)
    if detail is not None:
        return ChaosFailure(pattern, target, policy, seed,
                            f"world {world}: {detail}")
    return None


def chaos_soak(patterns: Iterable[str] = SOAK_NAMES,
               targets: Iterable[str] = FUZZ_TARGETS,
               policies: Iterable[str] = POLICIES,
               seeds: Iterable[int] = range(50),
               nfail: int = 1,
               watchdog=FUZZ_WATCHDOG,
               progress: Callable[[str], None] | None = None,
               stats: dict | None = None) -> list[ChaosFailure]:
    """Sweep seeds over (pattern, target, policy); returns all failures.

    ``stats``, when given, is filled with one record per combination
    (runs / failures) — the recovery-stats artifact the CI job uploads.
    """
    seeds = list(seeds)
    failures: list[ChaosFailure] = []
    for pattern in patterns:
        for target in targets:
            baselines: dict = {}
            for policy in policies:
                bad = 0
                for seed in seeds:
                    failure = chaos_one(pattern, target, policy, seed,
                                        nfail=nfail, watchdog=watchdog,
                                        baselines=baselines)
                    if failure is not None:
                        failures.append(failure)
                        bad += 1
                if stats is not None:
                    key = f"{pattern}/{target}/{policy}"
                    stats[key] = {"runs": len(seeds), "failures": bad,
                                  "nfail": nfail}
                if progress is not None:
                    progress(f"{pattern:>9s} x {target:<22s} x "
                             f"{policy:<7s} {len(seeds) - bad}/"
                             f"{len(seeds)} seeds ok")
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.faults.chaos``."""
    parser = argparse.ArgumentParser(
        description="chaos-soak the recovery runtime")
    parser.add_argument("--patterns", nargs="*", default=list(SOAK_NAMES),
                        choices=list(SOAK_NAMES))
    parser.add_argument("--targets", nargs="*", default=list(FUZZ_TARGETS),
                        choices=list(FUZZ_TARGETS))
    parser.add_argument("--policies", nargs="*", default=list(POLICIES),
                        choices=list(POLICIES))
    parser.add_argument("--seeds", type=int, default=50,
                        help="seeds per combination (default 50)")
    parser.add_argument("--nfail", type=int, default=1,
                        help="ranks crashed per run (default 1)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the recovery-stats artifact here")
    args = parser.parse_args(argv)

    stats: dict = {}
    failures = chaos_soak(args.patterns, args.targets, args.policies,
                          range(args.seeds), nfail=args.nfail,
                          progress=lambda line: print(line, flush=True),
                          stats=stats)
    if args.json:
        artifact = {
            "seeds": args.seeds, "nfail": args.nfail,
            "combinations": stats,
            "failures": [vars(f) for f in failures],
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=2, sort_keys=True)
            f.write("\n")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"chaos soak: {len(failures)} failure(s) over "
          f"{len(args.patterns) * len(args.targets) * len(args.policies)}"
          f" combination(s) x {args.seeds} seed(s)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
