"""Sync-plan correctness fuzzer.

The directive layer *promises* that whatever target a ``comm_p2p`` is
lowered to, the data in ``rbuf`` is valid once the region's
synchronization has run. The fuzzer attacks that promise: it runs each
communication pattern under many seed-deterministic adversarial
schedules (delivery jitter, reordering pressure, drop/retransmit) on
every lowering target and asserts the final user-visible data is
bit-identical to an unperturbed baseline run.

Two mechanisms make under-synchronization *observable* rather than
merely possible:

* **deferred delivery** (`FaultPlan.deferred_delivery`): in the
  perturbed runs, payload bytes land in the user buffer only at the
  synchronization call that guarantees them, while the baseline runs
  unfaulted with immediate delivery — the data the translation
  *claims*. A sync plan that forgets a handle leaves stale bytes
  behind deterministically — no lucky schedules needed — and the
  comparison against the immediate-delivery reference flags them.

* **adversarial timing**: jitter and reordering shuffle completion
  order so consolidation bugs that depend on "the wait finished
  everything anyway" coincidences stop being hidden.

Every failure is reported with its ``(pattern, target, seed)`` triple;
re-running that exact triple replays the failing schedule
bit-identically.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator

import numpy as np

from repro import mpi, shmem
from repro.core import comm_p2p, comm_parameters
from repro.core import region as _region
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.netmodel import gemini_model
from repro.patterns.halo2d import HaloBuffers, grid_shape, neighbours
from repro.sim import Engine

#: Every lowering target of the directive layer.
FUZZ_TARGETS = ("TARGET_COMM_MPI_2SIDE", "TARGET_COMM_MPI_1SIDE",
                "TARGET_COMM_SHMEM")

#: Watchdog applied to every fuzz run: a schedule that deadlocks or
#: livelocks a pattern is converted into a diagnosable failure instead
#: of eating the CI job timeout.
FUZZ_WATCHDOG = Watchdog(wall_timeout=60.0, stall_events=1_000_000)

_SHMEM = "TARGET_COMM_SHMEM"
_OPPOSITE = {"north": "south", "south": "north",
             "west": "east", "east": "west"}


def _alloc_rbuf(env, target: str, n: int):
    """A receive buffer valid for ``target``.

    SHMEM requires symmetric objects; ``sh.malloc`` is collective, so
    every pattern below allocates the same shapes in the same order on
    all ranks.
    """
    if target == _SHMEM:
        return shmem.init(env).malloc(n, np.float64)
    return np.zeros(n)


def _contents(buf) -> list[float]:
    """Final element values of an rbuf, SymArray or ndarray alike."""
    data = buf.data if hasattr(buf, "data") else buf
    return np.asarray(data, dtype=np.float64).reshape(-1).tolist()


# -- pattern programs ------------------------------------------------------
#
# Target-parameterized variants of the repro.patterns programs: the
# library versions hard-code the default target, while the fuzzer must
# drive all three lowerings, so each program takes `target` and routes
# its rbufs through _alloc_rbuf. Each returns the rank's final
# user-visible data — the value the correctness comparison bites on.

def _ring_prog(env, target: str):
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    out = np.arange(8.0) + 100.0 * env.rank
    inb = _alloc_rbuf(env, target, 8)
    with comm_p2p(env, sender=prev, receiver=nxt,
                  sbuf=out, rbuf=inb, target=target):
        pass
    return _contents(inb)


def _evenodd_prog(env, target: str):
    out = np.arange(6.0) + 10.0 * env.rank
    inb = _alloc_rbuf(env, target, 6)
    with comm_p2p(env, sbuf=out, rbuf=inb,
                  sender=env.rank - 1,
                  receiver=min(env.rank + 1, env.size - 1),
                  sendwhen=env.rank % 2 == 0 and env.rank + 1 < env.size,
                  receivewhen=env.rank % 2 == 1,
                  target=target):
        pass
    return _contents(inb)


def _halo2d_prog(env, target: str):
    ny, nx = 3, 4
    py, px = grid_shape(env.size)
    block = (np.arange(float(ny * nx)).reshape(ny, nx)
             + 1000.0 * env.rank)
    bufs = HaloBuffers(ny, nx)
    if target == _SHMEM:
        # Same shapes in the same order on every rank: malloc stays
        # collective even though boundary ranks skip some transfers.
        bufs.halo = {d: _alloc_rbuf(env, target, h.size)
                     for d, h in bufs.halo.items()}
    nbr = neighbours(env.rank, py, px)
    edges = bufs.edges(block)
    with comm_parameters(env):
        for direction in ("north", "south", "west", "east"):
            peer = nbr[direction]
            with comm_p2p(env,
                          sender=peer if peer is not None else env.rank,
                          receiver=peer if peer is not None else env.rank,
                          sendwhen=peer is not None,
                          receivewhen=peer is not None,
                          sbuf=edges[direction],
                          rbuf=bufs.halo[direction],
                          target=target):
                pass
    return [_contents(bufs.halo[d])
            for d in ("north", "south", "west", "east")]


def _butterfly_prog(env, target: str):
    size, rank = env.size, env.rank
    rounds = size.bit_length() - 1
    data = np.zeros(size)
    data[rank] = float(rank + 1)
    owned_lo, owned_n = rank, 1
    for k in range(rounds):
        partner = rank ^ (1 << k)
        send_block = np.ascontiguousarray(data[owned_lo:owned_lo + owned_n])
        their_lo = owned_lo ^ (1 << k)
        recv_block = _alloc_rbuf(env, target, owned_n)
        with comm_p2p(env, sender=partner, receiver=partner,
                      sbuf=send_block, rbuf=recv_block, target=target):
            pass
        data[their_lo:their_lo + owned_n] = _contents(recv_block)
        owned_lo = min(owned_lo, their_lo)
        owned_n *= 2
    return data.tolist()


def _tally_checks(tally: dict | None, stats) -> None:
    """Accumulate one run's sanitizer counters into ``tally``."""
    if tally is not None:
        tally["sanitizer_checks"] = (tally.get("sanitizer_checks", 0)
                                     + stats.sanitizer_checks)
        tally["runs"] = tally.get("runs", 0) + 1


def _run_pattern(prog: Callable, nprocs: int, target: str,
                 plan: FaultPlan, watchdog: Watchdog | None,
                 sanitize: bool = False, tally: dict | None = None):
    model = gemini_model()
    eng = Engine(nprocs, faults=plan, watchdog=watchdog,
                 sanitize=sanitize)

    def main(env):
        mpi.init(env, model)  # fix the machine model for all targets
        return prog(env, target)

    try:
        return eng.run(main).values
    finally:
        _tally_checks(tally, eng.stats)


def _run_wllsms(target: str, plan: FaultPlan,
                watchdog: Watchdog | None,
                sanitize: bool = False, tally: dict | None = None):
    """WL-LSMS quick mode — the paper's application, end to end."""
    from repro.apps.wllsms import AppConfig, run_app
    cfg = AppConfig(variant="directive", target=target, n_lsms=2,
                    group_size=4, t=32, tc=4, wl_steps=2,
                    model=gemini_model())
    engines: list[Engine] = []

    def engine_cls(*args, **kwargs):
        eng = Engine(*args, faults=plan, watchdog=watchdog,
                     sanitize=sanitize, **kwargs)
        engines.append(eng)
        return eng

    try:
        res = run_app(cfg, engine_cls=engine_cls)
    finally:
        for eng in engines:
            _tally_checks(tally, eng.stats)
    return [res.group_energies, res.wang_landau.ln_g.tolist()]


@dataclass(frozen=True)
class FuzzCase:
    """One pattern the fuzzer knows how to run on any target."""

    name: str
    run: Callable  # (target, plan, watchdog, sanitize, tally) -> result

    def baseline(self, target: str,
                 watchdog: Watchdog | None = FUZZ_WATCHDOG,
                 sanitize: bool = False, tally: dict | None = None):
        """The reference result for one target: an *unfaulted* run with
        immediate delivery. Deliberately not a neutral FaultPlan —
        deferred delivery must be compared against the semantics the
        translation claims, or an under-synchronizing plan would leave
        the same stale bytes in both runs and cancel out."""
        return self.run(target, None, watchdog, sanitize, tally)


CASES = (
    FuzzCase("ring",
             lambda t, p, w, s=False, y=None:
             _run_pattern(_ring_prog, 5, t, p, w, s, y)),
    FuzzCase("evenodd",
             lambda t, p, w, s=False, y=None:
             _run_pattern(_evenodd_prog, 6, t, p, w, s, y)),
    FuzzCase("halo2d",
             lambda t, p, w, s=False, y=None:
             _run_pattern(_halo2d_prog, 6, t, p, w, s, y)),
    FuzzCase("butterfly",
             lambda t, p, w, s=False, y=None:
             _run_pattern(_butterfly_prog, 4, t, p, w, s, y)),
    FuzzCase("wllsms", _run_wllsms),
)

CASE_NAMES = tuple(c.name for c in CASES)


@dataclass(frozen=True)
class FuzzFailure:
    """One divergence, addressable for replay by (pattern, target, seed)."""

    pattern: str
    target: str
    seed: int
    detail: str

    def __str__(self) -> str:
        return (f"FAIL {self.pattern} on {self.target} at seed "
                f"{self.seed}: {self.detail}\n  replay: fuzz_one("
                f"{self.pattern!r}, {self.target!r}, seed={self.seed})")


def _diff(expected, got) -> str | None:
    """None when bit-identical, else a one-line description.

    Both sides are plain nested lists of Python floats (every program
    returns ``.tolist()`` data), so ``==`` is an exact bitwise check.
    """
    if expected == got:
        return None
    for rank, (e, g) in enumerate(zip(expected, got)):
        if e != g:
            return f"rank {rank}: expected {e!r}, got {g!r}"
    return f"expected {expected!r}, got {got!r}"


def fuzz_one(pattern: str, target: str, seed: int,
             plan: FaultPlan | None = None,
             watchdog: Watchdog | None = FUZZ_WATCHDOG,
             baseline=None, sanitize: bool = False,
             tally: dict | None = None) -> FuzzFailure | None:
    """Run one (pattern, target, seed) triple; None means it passed.

    ``plan`` defaults to the stock jitter plan for ``seed`` — pass an
    explicit plan to replay a custom schedule. ``baseline`` short-cuts
    recomputing the reference when sweeping many seeds. With
    ``sanitize=True`` every run is executed under the access sanitizer:
    a :class:`repro.errors.RaceError` is a failure like any divergence,
    so a statically race-free pattern must also sanitize clean.
    """
    case = next(c for c in CASES if c.name == pattern)
    if plan is None:
        plan = FaultPlan.jitter(seed)
    if baseline is None:
        baseline = case.baseline(target, watchdog, sanitize, tally)
    try:
        got = case.run(target, plan, watchdog, sanitize, tally)
    except Exception as exc:
        return FuzzFailure(pattern, target, seed,
                           f"raised {type(exc).__name__}: {exc}")
    detail = _diff(baseline, got)
    if detail is None:
        return None
    return FuzzFailure(pattern, target, seed, detail)


def fuzz_program(program, nprocs: int = 8, *, target: str,
                 seeds=range(10),
                 extra_vars: dict[str, int] | None = None,
                 baseline=None, name: str = "generated",
                 tally: dict | None = None,
                 ignore=frozenset()) -> list[FuzzFailure]:
    """Payload-differential fuzz of one parsed directive *program*.

    The generated-program twin of :func:`fuzz`: instead of a hand-coded
    pattern, the program simulator replays the IR
    (:func:`repro.core.analysis.progsim.simulate_program`) with
    ``capture=True``, and the captured per-rank buffer contents of each
    jittered schedule are compared bit-for-bit against the unfaulted
    baseline. ``baseline`` short-cuts recomputation when the caller
    already holds the reference payloads (the differential oracle runs
    the unfaulted capture anyway for its cross-target check).

    ``ignore`` is a set of ``(rank, buffer name)`` pairs excluded from
    the comparison — buffers whose final contents the directive
    contract leaves undefined (unreceived deliveries; see
    :func:`repro.core.analysis.verify.undefined_payload_buffers`).
    """
    from repro.core.analysis.progsim import simulate_program

    if baseline is None:
        baseline = simulate_program(
            program, nprocs, target=target, extra_vars=extra_vars,
            capture=True).payloads
    baseline = mask_payloads(baseline, ignore)
    failures: list[FuzzFailure] = []
    for seed in seeds:
        try:
            outcome = simulate_program(
                program, nprocs, target=target, extra_vars=extra_vars,
                capture=True, faults=FaultPlan.jitter(seed))
        except Exception as exc:
            failures.append(FuzzFailure(
                name, target, seed,
                f"raised {type(exc).__name__}: {exc}"))
            continue
        if tally is not None and outcome.stats is not None:
            _tally_checks(tally, outcome.stats)
        detail = _diff_payloads(baseline,
                                mask_payloads(outcome.payloads, ignore))
        if detail is not None:
            failures.append(FuzzFailure(name, target, seed, detail))
    return failures


def mask_payloads(payloads, ignore):
    """Drop ``(rank, buffer)`` entries from a per-rank payload tuple.

    The masked buffers are contract-undefined (no synchronization ever
    guarantees their delivery), so bit-for-bit comparisons must not
    key on them.
    """
    if payloads is None or not ignore:
        return payloads
    return tuple(
        {buf: vals for buf, vals in bufs.items()
         if (rank, buf) not in ignore}
        for rank, bufs in enumerate(payloads))


def _diff_payloads(expected, got) -> str | None:
    """None when the per-rank payload dicts are bit-identical."""
    if expected == got:
        return None
    for rank, (e, g) in enumerate(zip(expected or (), got or ())):
        if e == g:
            continue
        for buf in sorted(set(e) | set(g)):
            if e.get(buf) != g.get(buf):
                return (f"rank {rank} buffer {buf!r}: expected "
                        f"{e.get(buf)!r}, got {g.get(buf)!r}")
    return f"expected {expected!r}, got {got!r}"


# -- sync-plan weakenings (shared with the static verifier) ----------------
#
# The static verifier (repro.core.analysis.verify) applies the same
# three mutations symbolically; tests/faults/test_fuzz.py cross-checks
# that every weakened plan the dynamic side catches is also refuted
# statically. Names must match verify.WEAKENINGS.

@contextlib.contextmanager
def weaken_pending_sync(name: str) -> Iterator[None]:
    """Monkeypatch ``PendingComm.sync`` with one named weakening.

    * ``drop-last-recv`` — every sync silently pops its last pending
      receive handle before synchronizing;
    * ``drop-all-recvs`` — every sync completes sends only;
    * ``skip-first-sync`` — each rank's first *non-empty* sync call is
      elided entirely (handles discarded, nothing waited on).

    The weakenings mirror realistic consolidation bugs: an off-by-one
    over the handle list, a send-only flush, and a dropped sync point.
    """
    original = _region.PendingComm.sync
    skipped: set[int] = set()

    def weakened(self: "_region.PendingComm", env) -> None:
        if name == "drop-last-recv":
            if self.recvs:
                self.recvs.pop()
        elif name == "drop-all-recvs":
            self.recvs.clear()
        elif name == "skip-first-sync":
            if self and env.rank not in skipped:
                skipped.add(env.rank)
                self.sends.clear()
                self.recvs.clear()
                self.buffers.clear()
                return
        else:
            raise ValueError(f"unknown weakening {name!r}")
        original(self, env)

    _region.PendingComm.sync = weakened
    try:
        yield
    finally:
        _region.PendingComm.sync = original


# -- static twins ----------------------------------------------------------
#
# Pragma-source doubles of the runtime fuzz CASES: same pattern, same
# world size, expressed in the directive IR so the static verifier can
# unroll them. The twins are approximations of the runtime programs
# (the cross-check only requires: dynamically caught => statically
# flagged), but each preserves the communication structure that makes
# the weakenings observable.

@dataclass(frozen=True)
class StaticTwin:
    """A fuzz pattern as pragma source for the static verifier."""

    name: str
    source: str
    nprocs: int
    extra_vars: dict[str, int] = field(default_factory=dict)


_RING_TWIN = """
double out[8];
double inb[8];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(out) rbuf(inb)
{
}
consume(inb);
"""

_EVENODD_TWIN = """
double out[6];
double inb[6];
int rank, nprocs;
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) receivewhen(rank%2==1) sbuf(out) rbuf(inb)
{
#pragma comm_p2p
{
}
}
consume(inb);
"""

_HALO2D_TWIN = """
double edge_n[4]; double halo_n[4];
double edge_s[4]; double halo_s[4];
double edge_w[3]; double halo_w[3];
double edge_e[3]; double halo_e[3];
int rank, nprocs, px;
#pragma comm_parameters
{
#pragma comm_p2p sender(rank-px) receiver(rank-px) sendwhen(rank>=px) receivewhen(rank>=px) sbuf(edge_n) rbuf(halo_n)
#pragma comm_p2p sender(rank+px) receiver(rank+px) sendwhen(rank+px<nprocs) receivewhen(rank+px<nprocs) sbuf(edge_s) rbuf(halo_s)
#pragma comm_p2p sender(rank-1) receiver(rank-1) sendwhen(rank%px>0) receivewhen(rank%px>0) sbuf(edge_w) rbuf(halo_w)
#pragma comm_p2p sender(rank+1) receiver(rank+1) sendwhen(rank%px<px-1) receivewhen(rank%px<px-1) sbuf(edge_e) rbuf(halo_e)
}
stencil(halo_n, halo_s, halo_w, halo_e);
"""

_BUTTERFLY_TWIN = """
double blk0[1]; double got0[1];
double blk1[2]; double got1[2];
int rank, nprocs;
#pragma comm_p2p sender(rank^1) receiver(rank^1) sbuf(blk0) rbuf(got0)
{
}
merge_round0(got0);
#pragma comm_p2p sender(rank^2) receiver(rank^2) sbuf(blk1) rbuf(got1)
{
}
merge_round1(got1);
"""

STATIC_TWINS: dict[str, StaticTwin] = {
    "ring": StaticTwin("ring", _RING_TWIN, nprocs=5),
    "evenodd": StaticTwin("evenodd", _EVENODD_TWIN, nprocs=6),
    "halo2d": StaticTwin("halo2d", _HALO2D_TWIN, nprocs=6,
                         extra_vars={"px": grid_shape(6)[1]}),
    "butterfly": StaticTwin("butterfly", _BUTTERFLY_TWIN, nprocs=4),
    # wllsms quick mode moves the Listing-5 atom payload between the
    # window master and group members; the annotated listing *is* the
    # published static form of that transfer.
    "wllsms": StaticTwin("wllsms", "", nprocs=8,
                         extra_vars={"from_rank": 1, "to_rank": 0,
                                     "size1": 1024, "size2": 16}),
}


def static_twin_program(name: str):
    """Parse the twin for one fuzz pattern -> (Program, nprocs, vars)."""
    from repro.core.pragma import parse_program

    twin = STATIC_TWINS[name]
    source = twin.source
    if not source:  # wllsms: the annotated Listing 5 itself
        from repro.bench.listings import LISTING5_ANNOTATED
        source = LISTING5_ANNOTATED
    return (parse_program(source), twin.nprocs, dict(twin.extra_vars))


def fuzz(patterns=CASE_NAMES, targets=FUZZ_TARGETS, seeds=range(50),
         watchdog: Watchdog | None = FUZZ_WATCHDOG,
         progress: Callable[[str], None] | None = None,
         sanitize: bool = False,
         tally: dict | None = None) -> list[FuzzFailure]:
    """Sweep seeds over every (pattern, target); returns all failures.

    The baseline for each (pattern, target) is computed once and reused
    across the whole seed sweep. With ``sanitize=True`` every run also
    arms the access sanitizer (differential soundness: a pattern the
    static race pass accepts must never raise ``RaceError`` under any
    schedule); ``tally`` accumulates ``sanitizer_checks`` across runs
    for the CI stats artifact.
    """
    failures: list[FuzzFailure] = []
    for pattern in patterns:
        case = next(c for c in CASES if c.name == pattern)
        for target in targets:
            baseline = case.baseline(target, watchdog, sanitize, tally)
            bad = 0
            for seed in seeds:
                failure = fuzz_one(pattern, target, seed,
                                   watchdog=watchdog, baseline=baseline,
                                   sanitize=sanitize, tally=tally)
                if failure is not None:
                    failures.append(failure)
                    bad += 1
            if progress is not None:
                n = len(list(seeds))
                progress(f"{pattern:>9s} x {target:<22s} "
                         f"{n - bad}/{n} seeds ok")
    return failures
