"""Runtime fault injector — the compiled form of a FaultPlan.

One injector is bound to one :class:`repro.sim.engine.Engine` run. The
engine consults it at two points:

* ``message_delay(tp, src, dst, nbytes)`` — called by the simulated
  communication libraries when a message's delivery time is computed
  (MPI match completion, one-sided put, SHMEM put). Returns extra
  delivery latency derived from the plan's jitter / reorder / drop
  knobs. Delay only: queue order is never permuted, so MPI's
  same-``(source, dest, tag)`` non-overtaking rule holds by
  construction.

* ``on_dispatch(engine, proc)`` — called by the scheduler just before
  a READY process is handed the baton. May answer ``("stall", d)`` or
  ``("crash",)`` per the plan's scheduled rank events. Crashing only
  ever happens to a READY process: a BLOCKED process always has a
  pending wake, so killing at dispatch leaves no orphaned waiters.

Determinism: every random draw comes from a per-``(src, dst)``
:func:`repro.util.rng.stream_rng` stream keyed by the plan seed, so a
message's perturbation depends only on the seed and its position in its
channel's history — never on host thread scheduling. Replaying a seed
replays the run bit-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.rng import stream_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.netmodel.base import TransportParams
    from repro.sim.engine import Engine, Proc


class FaultInjector:
    """Per-run state machine consulted by the engine (see module docs)."""

    def __init__(self, plan: "FaultPlan") -> None:
        self.plan = plan
        self.deferred_delivery = plan.deferred_delivery
        self._perturbs_timing = plan.perturbs_timing
        self._engine: "Engine | None" = None
        self._rngs: dict[tuple[int, int], object] = {}
        self._stall_fired: set[int] = set()
        self._crash_fired: set[int] = set()

    # -- lifecycle ----------------------------------------------------------

    def bind(self, engine: "Engine") -> None:
        """Reset per-run state and record the seed for replay."""
        self._engine = engine
        self._rngs.clear()
        self._stall_fired.clear()
        self._crash_fired.clear()
        engine.stats.fault_seed = self.plan.seed

    def _rng(self, src: int, dst: int):
        rng = self._rngs.get((src, dst))
        if rng is None:
            rng = stream_rng(self.plan.seed, src, dst)
            self._rngs[(src, dst)] = rng
        return rng

    # -- message-timing perturbation ---------------------------------------

    def message_delay(self, tp: "TransportParams", src: int, dst: int,
                      nbytes: int) -> float:
        """Extra delivery latency for one message on channel src->dst."""
        if not self._perturbs_timing:
            return 0.0
        plan = self.plan
        rng = self._rng(src, dst)
        stats = self._engine.stats if self._engine is not None else None
        extra = 0.0
        if plan.delay_jitter > 0:
            jitter = rng.random() * plan.delay_jitter
            if jitter > 0:
                extra += jitter
                if stats is not None:
                    stats.count_fault("jitter")
        if plan.reorder_prob > 0 and rng.random() < plan.reorder_prob:
            extra += plan.reorder_factor * tp.wire_time(nbytes)
            if stats is not None:
                stats.count_fault("reorder")
        if plan.drop_prob > 0:
            extra += self._drop_delay(tp, src, dst, nbytes, rng, stats)
        return extra

    def _drop_delay(self, tp: "TransportParams", src: int, dst: int,
                    nbytes: int, rng, stats) -> float:
        """Total retransmission delay for one message's drop attempts.

        Without a recovery context the plan's flat
        ``max_retransmits`` × ``retransmit_cost`` model applies. With
        one, the per-target :class:`repro.recovery.RetryPolicy` owns
        delivery: bounded retries with exponential backoff plus
        deterministic jitter, each retry counted in
        ``SimStats.retries`` and recorded as a ``retry`` span so
        recovery work is visible in the trace.
        """
        engine = self._engine
        ctx = engine.recovery if engine is not None else None
        policy = ctx.retry_for(tp) if ctx is not None else None
        plan = self.plan
        extra = 0.0
        if policy is None:
            for _ in range(plan.max_retransmits):
                if rng.random() >= plan.drop_prob:
                    break
                extra += tp.retransmit_cost(nbytes)
                if stats is not None:
                    stats.count_fault("drop")
            return extra
        profile = engine.profile if engine is not None else None
        now = engine._current.now if engine._current is not None else 0.0
        for attempt in range(policy.max_retries):
            if rng.random() >= plan.drop_prob:
                break
            cost = policy.attempt_cost(tp, nbytes, attempt, rng)
            if profile is not None:
                profile.add(dst, "retry", now + extra, now + extra + cost,
                            src=src, dst=dst, attempt=attempt,
                            nbytes=nbytes, transport=tp.name)
            extra += cost
            if stats is not None:
                stats.count_fault("drop")
                stats.retries += 1
        return extra

    # -- scheduled rank events ---------------------------------------------

    def on_dispatch(self, engine: "Engine",
                    proc: "Proc") -> tuple | None:
        """Rank-event decision for a READY process about to run.

        Returns ``("crash",)``, ``("stall", duration)`` or ``None``.
        Each scheduled event fires at most once, the first time its rank
        is dispatched at or after the event's virtual time.
        """
        plan = self.plan
        for crash in plan.crashes:
            if (crash.rank == proc.rank and proc.rank not in self._crash_fired
                    and proc.now >= crash.at):
                self._crash_fired.add(proc.rank)
                return ("crash",)
        for i, stall in enumerate(plan.stalls):
            if (stall.rank == proc.rank and i not in self._stall_fired
                    and proc.now >= stall.at):
                self._stall_fired.add(i)
                return ("stall", stall.duration)
        return None
