"""Progress watchdog configuration.

The engine accepts a :class:`Watchdog` and converts two kinds of
non-progress into rich, raise-early reports instead of silent hangs:

* **wall-clock hang** — no scheduling activity (context switches,
  fast yields or heap operations) for ``wall_timeout`` real seconds.
  This catches bugs *in the simulator or its libraries themselves*
  (e.g. a lost baton handoff): virtual time cannot advance because the
  host threads are wedged. Raises :class:`repro.errors.SimHangError`
  carrying a per-rank progress report.

* **virtual-time stall** — a single rank spins ``stall_events``
  consecutive ``yield_()`` calls without the run making any progress
  (no wake, no compute/advance). This catches livelock in *modelled*
  programs: everyone is runnable, nobody gets anywhere. Also raises
  :class:`repro.errors.SimHangError`.

Both limits are optional; ``None`` disables that check. The default
engine has no watchdog at all — it is opt-in, aimed at fault-injection
runs and CI fuzzing where a hang would otherwise eat the job timeout.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Watchdog:
    """Progress-watchdog limits (``None`` disables a check)."""

    #: Real seconds without any scheduling activity before the run is
    #: declared wall-hung.
    wall_timeout: float | None = 30.0
    #: Consecutive no-progress ``yield_()`` events on one rank before
    #: the run is declared livelocked. The default is deliberately huge:
    #: polling loops legitimately spin, just not a million times with
    #: nothing else happening.
    stall_events: int | None = 1_000_000

    def __post_init__(self) -> None:
        if self.wall_timeout is not None and self.wall_timeout <= 0:
            raise ValueError("wall_timeout must be positive or None")
        if self.stall_events is not None and self.stall_events <= 0:
            raise ValueError("stall_events must be positive or None")
