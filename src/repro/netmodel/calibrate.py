"""Calibration fitting: solve model parameters from target ratios.

The Gemini model's software costs were hand-derived from the paper's
published speedups (see :mod:`repro.netmodel.gemini`). This module
automates that derivation: given target ratios for the Figure-4
experiment, fit the per-message software costs by least squares over
the closed-form cost model, so the calibration is reproducible (and
re-runnable against different target papers/machines).

Closed-form per-message sender costs (bytes ``m`` small):

* original:  ``o_send + request_alloc + wait_overhead``
* ablation:  ``o_send + request_alloc + waitall_per_req``
* directive: ``o_send + waitall_per_req``
* shmem:     ``shmem_o_send``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares


@dataclass(frozen=True)
class CalibrationTargets:
    """The ratios a calibration must reproduce."""

    ablation_speedup: float = 2.6     # original / waitall-ablation
    mpi_speedup: float = 4.0          # original / directive-MPI
    shmem_speedup: float = 38.0       # original / directive-SHMEM

    def residuals(self, costs: "FittedCosts") -> np.ndarray:
        """Deviations of the fitted ratios from these targets."""
        return np.array([
            costs.original / costs.ablation - self.ablation_speedup,
            costs.original / costs.directive - self.mpi_speedup,
            costs.original / costs.shmem - self.shmem_speedup,
        ])


@dataclass(frozen=True)
class FittedCosts:
    """Per-message sender-side costs (seconds)."""

    o_send: float
    request_alloc: float
    wait_overhead: float
    waitall_per_req: float
    shmem_o_send: float

    @property
    def original(self) -> float:
        """Per-message cost of the original wait-loop code."""
        return self.o_send + self.request_alloc + self.wait_overhead

    @property
    def ablation(self) -> float:
        """Per-message cost with a consolidated Waitall."""
        return self.o_send + self.request_alloc + self.waitall_per_req

    @property
    def directive(self) -> float:
        """Per-message cost of the directive-generated MPI."""
        return self.o_send + self.waitall_per_req

    @property
    def shmem(self) -> float:
        """Per-message cost of the SHMEM translation."""
        return self.shmem_o_send

    def speedups(self) -> dict[str, float]:
        """The three headline ratios of this cost set."""
        return {
            "ablation": self.original / self.ablation,
            "directive_mpi": self.original / self.directive,
            "directive_shmem": self.original / self.shmem,
        }


def fit_costs(targets: CalibrationTargets, *,
              o_send: float = 1.0e-6,
              bounds_scale: float = 20.0) -> FittedCosts:
    """Fit the free software costs to the target ratios.

    ``o_send`` (the baseline Isend software cost) is pinned — ratios
    alone cannot fix the absolute scale; everything else is fitted
    within ``[o_send / bounds_scale, o_send * bounds_scale]``.
    """
    if o_send <= 0:
        raise ValueError("o_send must be positive")

    def unpack(x: np.ndarray) -> FittedCosts:
        request_alloc, wait_overhead, waitall_per_req, shmem_o = x
        return FittedCosts(o_send, request_alloc, wait_overhead,
                           waitall_per_req, shmem_o)

    def objective(x: np.ndarray) -> np.ndarray:
        return targets.residuals(unpack(x))

    x0 = np.array([0.5 * o_send, 2.0 * o_send, 0.1 * o_send,
                   0.1 * o_send])
    lo = o_send / bounds_scale
    hi = o_send * bounds_scale
    result = least_squares(objective, x0, bounds=(lo, hi))
    fitted = unpack(result.x)
    return fitted


def verify_fit(fitted: FittedCosts, targets: CalibrationTargets,
               rel_tol: float = 0.15) -> list[str]:
    """Human-readable discrepancies beyond ``rel_tol`` (empty = good)."""
    issues = []
    got = fitted.speedups()
    want = {
        "ablation": targets.ablation_speedup,
        "directive_mpi": targets.mpi_speedup,
        "directive_shmem": targets.shmem_speedup,
    }
    for key, target in want.items():
        rel = abs(got[key] - target) / target
        if rel > rel_tol:
            issues.append(
                f"{key}: fitted {got[key]:.2f}x vs target {target:.2f}x "
                f"({rel:.0%} off)")
    return issues
