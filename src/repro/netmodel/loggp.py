"""LogGP model: latency, overhead, gap, per-byte Gap.

LogGP (Alexandrov et al.) refines Hockney by separating the CPU-side
overhead ``o`` from the wire latency ``L``, adding a minimum inter-
message gap ``g`` and a per-byte gap ``G`` for long messages. We map it
onto :class:`~repro.netmodel.base.TransportParams`:

* ``o``  → per-message send/recv software overhead,
* ``L``  → wire latency ``alpha``,
* ``G``  → ``1 / bandwidth``,
* ``g``  → folded into ``o_send`` (the issue rate of back-to-back small
  messages is limited by ``max(o, g)``; for the NIC-offloaded transports
  we model, the initiator is busy for ``max(o, g)`` per message).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.base import TransportParams


@dataclass(frozen=True)
class LogGPParams:
    """Raw LogGP parameters, all in seconds (G in seconds/byte)."""

    L: float   # wire latency
    o: float   # per-message CPU overhead (send and recv)
    g: float   # minimum gap between consecutive messages
    G: float   # per-byte gap (inverse bandwidth)

    def __post_init__(self) -> None:
        for attr in ("L", "o", "g", "G"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if self.G <= 0:
            raise ValueError("G must be positive")


def from_loggp(name: str, params: LogGPParams, *,
               eager_threshold: int = 4096) -> TransportParams:
    """Build :class:`TransportParams` from LogGP parameters."""
    issue = max(params.o, params.g)
    return TransportParams(
        name=name,
        alpha=params.L,
        bandwidth=1.0 / params.G,
        o_send=issue,
        o_recv=params.o,
        eager_threshold=eager_threshold,
        rendezvous_rtt=2.0 * params.L + 2.0 * params.o,
    )
