"""Piecewise-linear lookup tables keyed by message size.

Published latency curves (e.g. the MPI-vs-SHMEM comparisons the paper
cites [13], [14]) are size-dependent in ways a single ``alpha + beta*m``
line cannot capture — protocol switches put visible knees in the curve.
:class:`PiecewiseTable` interpolates between measured (size, value)
points and clamps outside the measured range.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable


class PiecewiseTable:
    """Monotone-x piecewise-linear interpolation with end clamping.

    >>> t = PiecewiseTable([(8, 1.0), (256, 2.0)])
    >>> t(8), t(132), t(256)
    (1.0, 1.5, 2.0)
    >>> t(1), t(10_000)   # clamped
    (1.0, 2.0)
    """

    def __init__(self, points: Iterable[tuple[float, float]]):
        pts = sorted(points)
        if not pts:
            raise ValueError("PiecewiseTable needs at least one point")
        xs = [p[0] for p in pts]
        if len(set(xs)) != len(xs):
            raise ValueError(f"duplicate x values in table: {xs}")
        self.xs = xs
        self.ys = [p[1] for p in pts]

    def __call__(self, x: float) -> float:
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        i = bisect.bisect_right(xs, x)
        x0, x1 = xs[i - 1], xs[i]
        y0, y1 = ys[i - 1], ys[i]
        frac = (x - x0) / (x1 - x0)
        return y0 + frac * (y1 - y0)

    def __repr__(self) -> str:
        pts = ", ".join(f"({x:g}, {y:g})" for x, y in zip(self.xs, self.ys))
        return f"PiecewiseTable([{pts}])"
