"""Network and software cost models for the simulated communication stack.

The simulator charges virtual time for every communication action using a
:class:`MachineModel`: per-transport wire parameters (latency, bandwidth,
per-message software overheads, eager/rendezvous threshold) plus the
library-level costs the paper's evaluation turns on — ``MPI_Wait`` loop
overhead vs a single ``MPI_Waitall``, ``shmem_quiet``, barrier scaling,
and derived-datatype creation/packing costs.

Three ready-made models:

* :func:`zero_model` — all costs zero; for semantics-only tests.
* :func:`uniform_model` — simple round numbers; for timing-logic tests.
* :func:`gemini_model` — calibrated to a Cray XK7 "Gemini"-class
  interconnect, the paper's testbed (Section IV-B): SHMEM beats MPI
  most prominently for 8–256-byte messages.
"""

from repro.netmodel.base import MachineModel, TransportParams
from repro.netmodel.tables import PiecewiseTable
from repro.netmodel.hockney import from_hockney
from repro.netmodel.loggp import LogGPParams, from_loggp
from repro.netmodel.gemini import gemini_model, uniform_model, zero_model

__all__ = [
    "MachineModel",
    "TransportParams",
    "PiecewiseTable",
    "from_hockney",
    "LogGPParams",
    "from_loggp",
    "gemini_model",
    "uniform_model",
    "zero_model",
]
