"""Ready-made machine models, including the calibrated XK7/Gemini model.

``gemini_model()`` is the reproduction's stand-in for the paper's
testbed (Cray XK7, Gemini interconnect, Section IV-B). Wire parameters
are set to the published Gemini ballpark (~1.4 us MPI small-message
latency, sub-microsecond SHMEM put visibility, ~5 GB/s per-link
bandwidth, ~0.1 us SHMEM FMA issue rate), and the *software* costs are
calibrated so the
model reproduces the paper's internal performance ratios for the
Figure 4 experiment:

* loop-of-``MPI_Wait``  →  single ``MPI_Waitall``: ~2.6x  (the paper's
  ablation of the original code);
* directive-generated MPI vs the Waitall ablation: ~1.4x (the directive
  backend batches request bookkeeping that user-level non-blocking calls
  pay per call);
* directive-generated SHMEM vs original MPI: ~38x for small (24-byte)
  messages, dominated by the FMA put issue rate vs the two-sided
  per-message software path.

Derivation, per small message on the bottleneck (sender) rank:

====================  =========================================  =======
variant               cost model                                 us/msg
====================  =========================================  =======
original MPI          o_send + request_alloc + wait_overhead     4.16
original + Waitall    o_send + request_alloc + waitall_per_req   1.50
directive MPI         o_send + waitall_per_req                   1.05
directive SHMEM       shmem o_send (FMA issue)                   0.10
====================  =========================================  =======

giving 4.16/1.50 = 2.8, 1.50/1.05 = 1.43, 4.16/0.10 = 41.6 on the raw
per-message path; measured end-to-end (with waitall base cost, quiet
and notification included) this lands at ~2.7x / ~1.4x / ~35x against
the paper's ~2.6x / ~1.4x / ~38x.
"""

from __future__ import annotations

from repro.netmodel.base import (
    MPI_1SIDED,
    MPI_2SIDED,
    SHMEM,
    MachineModel,
    TransportParams,
)
from repro.netmodel.tables import PiecewiseTable
from repro.util.units import GiB, usec

#: Extra per-call cost of user-level non-blocking calls (request
#: allocation and tracking). Directive-generated plans use the library's
#: pooled-request path and do not pay this; see module docstring.
REQUEST_ALLOC_OVERHEAD = 0.45 * usec


def gemini_model() -> MachineModel:
    """The calibrated Cray XK7 "Gemini"-class machine model."""
    mpi2s = TransportParams(
        name=MPI_2SIDED,
        alpha=1.4 * usec,
        # Measured MPI latency curves on Gemini rise gently through the
        # eager range and jump at the rendezvous switch.
        alpha_table=PiecewiseTable([
            (8, 1.4 * usec),
            (256, 1.5 * usec),
            (1024, 1.7 * usec),
            (8192, 2.3 * usec),
            (65536, 4.5 * usec),
        ]),
        bandwidth=5.0 * GiB,
        o_send=1.0 * usec,
        o_send_per_byte=0.15e-9,  # eager-copy at ~6.7 GB/s
        o_recv=0.8 * usec,
        eager_threshold=8192,
        rendezvous_rtt=3.0 * usec,
    )
    mpi1s = TransportParams(
        name=MPI_1SIDED,
        alpha=1.0 * usec,
        bandwidth=5.0 * GiB,
        o_send=0.6 * usec,
        o_send_per_byte=0.1e-9,
        o_recv=0.0,
        eager_threshold=1 << 62,  # RMA puts never rendezvous
        rendezvous_rtt=0.0,
    )
    shmem = TransportParams(
        name=SHMEM,
        alpha=0.3 * usec,
        bandwidth=5.0 * GiB,
        o_send=0.1 * usec,  # Gemini FMA put issue rate
        o_send_per_byte=0.1e-9,
        o_recv=0.0,
        eager_threshold=1 << 62,
        rendezvous_rtt=0.0,
    )
    return MachineModel(
        name="cray-xk7-gemini",
        transports={MPI_2SIDED: mpi2s, MPI_1SIDED: mpi1s, SHMEM: shmem},
        request_alloc_overhead=REQUEST_ALLOC_OVERHEAD,
        wait_overhead=2.71 * usec,
        waitall_base=1.0 * usec,
        waitall_per_req=0.05 * usec,
        quiet_overhead=0.1 * usec,
        fence_overhead=0.8 * usec,
        barrier_stage=0.4 * usec,
        struct_create_base=0.5 * usec,
        struct_create_per_field=0.05 * usec,
        struct_commit=0.3 * usec,
        pack_per_byte=0.1e-9,  # ~10 GB/s memcpy
        pack_base=0.2 * usec,
    )


def uniform_model() -> MachineModel:
    """Round-number model for timing-logic tests.

    Every transport: 1 us latency, 1 GB/s, 1 us software overhead per
    side, eager below 1024 bytes; 1 us per sync stage. Timings under
    this model are easy to compute by hand in tests.
    """
    def tp(name: str, eager: int = 1024) -> TransportParams:
        return TransportParams(
            name=name, alpha=1.0 * usec, bandwidth=1e9,
            o_send=1.0 * usec, o_recv=1.0 * usec,
            eager_threshold=eager, rendezvous_rtt=2.0 * usec,
        )

    return MachineModel(
        name="uniform",
        transports={
            MPI_2SIDED: tp(MPI_2SIDED),
            MPI_1SIDED: tp(MPI_1SIDED, eager=1 << 62),
            SHMEM: tp(SHMEM, eager=1 << 62),
        },
        wait_overhead=1.0 * usec,
        waitall_base=1.0 * usec,
        waitall_per_req=0.1 * usec,
        quiet_overhead=1.0 * usec,
        fence_overhead=1.0 * usec,
        barrier_stage=1.0 * usec,
        struct_create_base=1.0 * usec,
        struct_create_per_field=0.1 * usec,
        struct_commit=1.0 * usec,
        pack_per_byte=1e-9,
        pack_base=0.1 * usec,
    )


def zero_model() -> MachineModel:
    """All costs zero; for pure-semantics tests.

    The eager threshold is unbounded so blocking sends never rendezvous
    (i.e. ``Send`` behaves as buffered) — semantics tests should not
    depend on protocol-induced blocking.
    """
    def tp(name: str) -> TransportParams:
        return TransportParams(
            name=name, alpha=0.0, bandwidth=1e30,
            eager_threshold=1 << 62,
        )

    return MachineModel(
        name="zero",
        transports={
            MPI_2SIDED: tp(MPI_2SIDED),
            MPI_1SIDED: tp(MPI_1SIDED),
            SHMEM: tp(SHMEM),
        },
    )
