"""Hockney (postal) model: ``T(m) = alpha + beta * m``.

The simplest classical point-to-point model — a fixed startup latency
``alpha`` plus a per-byte time ``beta`` (the inverse bandwidth). Useful
for quick analytical cross-checks of simulated timings.
"""

from __future__ import annotations

from repro.netmodel.base import TransportParams


def from_hockney(name: str, alpha: float, beta: float, *,
                 o_send: float = 0.0, o_recv: float = 0.0,
                 eager_threshold: int = 4096,
                 rendezvous_rtt: float | None = None) -> TransportParams:
    """Build a :class:`TransportParams` from Hockney parameters.

    ``beta`` is seconds/byte (so bandwidth = 1/beta). The rendezvous
    handshake defaults to one extra round trip (``2 * alpha``).
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    return TransportParams(
        name=name,
        alpha=alpha,
        bandwidth=1.0 / beta,
        o_send=o_send,
        o_recv=o_recv,
        eager_threshold=eager_threshold,
        rendezvous_rtt=2.0 * alpha if rendezvous_rtt is None else rendezvous_rtt,
    )
