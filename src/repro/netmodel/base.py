"""Core cost-model types.

A :class:`TransportParams` describes one transfer mechanism's wire and
software costs; a :class:`MachineModel` groups the transports available
on a machine with the library-level costs (wait/waitall/quiet/barrier,
datatype handling) that the directive translation trades between.

Timing conventions (all seconds, all message sizes in bytes):

* ``send_overhead(m)`` — CPU time the *initiator* is busy per message
  (descriptor setup plus, for eager sends, the local buffer copy).
* ``recv_overhead(m)`` — CPU time the receiver spends matching and
  delivering a message.
* ``latency(m)`` — wire/NIC first-byte latency; may be a measured
  piecewise table (protocol knees).
* ``wire_time(m)`` — ``latency(m) + m / bandwidth``: post-to-delivery
  time for the payload.
* messages at or below ``eager_threshold`` are sent eagerly (sender
  buffers and proceeds); larger ones rendezvous (sender and receiver
  handshake before the payload moves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import NetModelError
from repro.netmodel.tables import PiecewiseTable


@dataclass(frozen=True)
class TransportParams:
    """Wire and per-message software costs of one transfer mechanism."""

    name: str
    #: Base first-byte latency in seconds (used when ``alpha_table`` is None).
    alpha: float
    #: Asymptotic bandwidth in bytes/second.
    bandwidth: float
    #: Per-message initiator software overhead (seconds).
    o_send: float = 0.0
    #: Per-byte initiator cost (eager-copy / FMA issue), seconds per byte.
    o_send_per_byte: float = 0.0
    #: Per-message receiver matching/delivery overhead (seconds).
    o_recv: float = 0.0
    #: Messages strictly larger than this rendezvous; others are eager.
    eager_threshold: int = 4096
    #: Extra handshake cost paid once per rendezvous transfer (seconds).
    rendezvous_rtt: float = 0.0
    #: Retransmission timeout: dead time before a dropped message is
    #: resent (seconds). Only exercised under fault injection.
    retransmit_rto: float = 1e-4
    #: Optional measured latency curve; overrides ``alpha`` when present.
    alpha_table: PiecewiseTable | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        for attr in ("alpha", "o_send", "o_send_per_byte", "o_recv",
                     "rendezvous_rtt", "retransmit_rto"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")

    def latency(self, nbytes: int) -> float:
        """First-byte latency for an ``nbytes`` message."""
        if self.alpha_table is not None:
            return self.alpha_table(nbytes)
        return self.alpha

    def gap(self) -> float:
        """Per-byte serialization time (``1 / bandwidth``)."""
        return 1.0 / self.bandwidth

    def wire_time(self, nbytes: int) -> float:
        """Post-to-delivery time for the payload."""
        return self.latency(nbytes) + nbytes * self.gap()

    def send_overhead(self, nbytes: int) -> float:
        """Initiator CPU time per message."""
        return self.o_send + nbytes * self.o_send_per_byte

    def recv_overhead(self, nbytes: int) -> float:
        """Receiver CPU time per message."""
        return self.o_recv

    def is_eager(self, nbytes: int) -> bool:
        """True when a message of this size is sent eagerly."""
        return nbytes <= self.eager_threshold

    def retransmit_cost(self, nbytes: int, attempt: int = 0,
                        backoff: float = 1.0) -> float:
        """Extra delivery delay for one dropped-and-resent message.

        The payload waits out the retransmission timeout and then
        crosses the wire again. ``attempt`` (0-based) and ``backoff``
        model an exponential-backoff retry policy: attempt ``k`` waits
        ``retransmit_rto * backoff**k`` before resending — the virtual-
        time cost the reliable transport of :mod:`repro.recovery`
        charges per bounded retry.
        """
        return (self.retransmit_rto * (backoff ** attempt)
                + self.wire_time(nbytes))


#: Transport kind names used throughout the library.
MPI_2SIDED = "mpi2s"
MPI_1SIDED = "mpi1s"
SHMEM = "shmem"


@dataclass(frozen=True)
class MachineModel:
    """A machine: its transports plus library-level software costs."""

    name: str
    transports: dict[str, TransportParams]

    # -- completion / synchronization costs -----------------------------
    #: Extra per-call cost of *user-level* non-blocking calls (request
    #: allocation and tracking in application code). Directive-generated
    #: plans use the library's pooled-request path and do not pay this.
    request_alloc_overhead: float = 0.0
    #: CPU cost of one MPI_Wait call (request bookkeeping + progress poll).
    wait_overhead: float = 0.0
    #: Base CPU cost of one MPI_Waitall call.
    waitall_base: float = 0.0
    #: Marginal CPU cost per request inside MPI_Waitall.
    waitall_per_req: float = 0.0
    #: CPU cost of shmem_quiet / shmem_fence (excluding actual waiting).
    quiet_overhead: float = 0.0
    #: Base CPU cost of an RMA fence (excluding the implied barrier).
    fence_overhead: float = 0.0
    #: Cost of one barrier stage; barrier(P) = this * ceil(log2 P).
    barrier_stage: float = 0.0

    # -- datatype engine costs ------------------------------------------
    #: Base cost of MPI_Type_create_struct.
    struct_create_base: float = 0.0
    #: Marginal cost per struct field during type creation.
    struct_create_per_field: float = 0.0
    #: Cost of MPI_Type_commit.
    struct_commit: float = 0.0
    #: Per-byte cost of MPI_Pack / MPI_Unpack (memcpy + bookkeeping).
    pack_per_byte: float = 0.0
    #: Base per-call cost of MPI_Pack / MPI_Unpack.
    pack_base: float = 0.0

    def __post_init__(self) -> None:
        if not self.transports:
            raise ValueError("MachineModel needs at least one transport")

    def transport(self, kind: str) -> TransportParams:
        """Look up a transport by kind name (e.g. ``"mpi2s"``).

        Raises :class:`repro.errors.NetModelError` — a ``ReproError``
        that is also a ``KeyError`` for backwards compatibility.
        """
        try:
            return self.transports[kind]
        except KeyError:
            raise NetModelError(
                f"machine {self.name!r} has no transport {kind!r}; "
                f"available: {sorted(self.transports)}") from None

    def barrier_cost(self, nprocs: int) -> float:
        """Dissemination-barrier cost for ``nprocs`` participants."""
        if nprocs <= 1:
            return 0.0
        return self.barrier_stage * math.ceil(math.log2(nprocs))

    def waitall_cost(self, nreqs: int) -> float:
        """CPU cost of one MPI_Waitall over ``nreqs`` requests."""
        return self.waitall_base + self.waitall_per_req * nreqs

    def struct_create_cost(self, nfields: int) -> float:
        """Cost of creating+committing an ``nfields``-field MPI struct."""
        return (self.struct_create_base
                + self.struct_create_per_field * nfields
                + self.struct_commit)

    def pack_cost(self, nbytes: int) -> float:
        """Cost of one MPI_Pack/MPI_Unpack call over ``nbytes``."""
        return self.pack_base + self.pack_per_byte * nbytes
