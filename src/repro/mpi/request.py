"""Send/receive operation records and user-visible requests.

A :class:`SendOp`/:class:`RecvOp` is the library-internal record of one
pending transfer; a :class:`Request` is the user-visible handle returned
by non-blocking calls (``MPI_Request``). Completion *times* are virtual:
they are computed when the two sides match (see
:mod:`repro.mpi.matching`) and consumed by ``Wait``/``Waitall``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Waiter


class SendOp:
    """One posted send."""

    __slots__ = ("gid", "channel", "src", "dst", "tag", "data", "nbytes",
                 "post_time", "eager", "matched", "completion", "waiter",
                 "kind")

    def __init__(self, *, gid: int, channel: str, src: int, dst: int,
                 tag: int, data: bytes, post_time: float, eager: bool,
                 kind: str):
        self.gid = gid
        self.channel = channel
        self.src = src          # global rank
        self.dst = dst          # global rank
        self.tag = tag
        self.data = data
        self.nbytes = len(data)
        self.post_time = post_time
        self.eager = eager
        self.matched = False
        #: Virtual time the *sender* may reuse its buffer / consider the
        #: operation complete. Known immediately for eager sends.
        self.completion: float | None = None
        #: The sender's waiter, when it is blocked on this op.
        self.waiter: "Waiter | None" = None
        self.kind = kind        # transport kind, for stats

    def wake_waiter(self, env, time: float) -> None:
        """Wake the blocked owner of this op, if any, and detach it.

        The engine's :meth:`~repro.sim.engine.Engine.wake` requires the
        waiter's owner to actually be blocked; an op's waiter satisfies
        that by construction (it is installed immediately before
        ``block()`` and only another, running rank can reach this op to
        complete it). Detaching keeps the single-use waiter from being
        woken twice if the op is revisited.
        """
        if self.waiter is not None:
            env.engine.wake(self.waiter, time)
            self.waiter = None

    def __repr__(self) -> str:
        proto = "eager" if self.eager else "rndv"
        return (f"<SendOp {self.src}->{self.dst} tag={self.tag} "
                f"{self.nbytes}B {proto}>")


class RecvOp:
    """One posted receive."""

    __slots__ = ("gid", "channel", "dst", "source", "tag", "buf",
                 "post_time", "matched", "completion", "waiter",
                 "status_source", "status_tag", "status_nbytes", "staged")

    def __init__(self, *, gid: int, channel: str, dst: int, source: int,
                 tag: int, buf: np.ndarray, post_time: float):
        self.gid = gid
        self.channel = channel
        self.dst = dst          # global rank (receiver)
        self.source = source    # global rank or ANY_SOURCE
        self.tag = tag          # or ANY_TAG
        self.buf = buf
        self.post_time = post_time
        self.matched = False
        self.completion: float | None = None
        self.waiter: "Waiter | None" = None
        self.status_source: int | None = None
        self.status_tag: int | None = None
        self.status_nbytes: int = 0
        #: Payload parked at match time under deferred delivery (fault
        #: injection); ``commit()`` lands it in the user buffer.
        self.staged: bytes | None = None

    wake_waiter = SendOp.wake_waiter

    def commit(self) -> None:
        """Land a staged payload in the user buffer (idempotent).

        Under deferred delivery (fault injection) this is called by the
        completion call that guarantees the receive — ``Wait`` and
        friends, a blocking ``Recv``, a successful ``Test`` — which is
        exactly when MPI makes the buffer valid. Without a staged
        payload it is a no-op, so callers need no mode checks.
        """
        if self.staged is None:
            return
        data, self.staged = self.staged, None
        if data:
            flat = self.buf.reshape(-1).view(np.uint8)
            flat[:len(data)] = np.frombuffer(data, dtype=np.uint8)

    def __repr__(self) -> str:
        return (f"<RecvOp dst={self.dst} source={self.source} "
                f"tag={self.tag}>")


class Request:
    """User handle for a non-blocking operation (``MPI_Request``)."""

    __slots__ = ("op", "side", "done")

    def __init__(self, op: SendOp | RecvOp, side: str):
        if side not in ("send", "recv"):
            raise MPIError(f"invalid request side {side!r}")
        self.op = op
        self.side = side
        #: Set once Wait/Waitall/successful Test has consumed this request.
        self.done = False

    @property
    def completion(self) -> float | None:
        """The operation's virtual completion time, once known."""
        return self.op.completion

    def __repr__(self) -> str:
        state = "done" if self.done else (
            "complete" if self.op.completion is not None else "pending")
        return f"<Request {self.side} {state} {self.op!r}>"


class PersistentRequest:
    """A persistent communication request (``MPI_Send_init`` family).

    Created inactive; each :meth:`repro.mpi.comm.Comm.Start` posts a
    fresh operation with the stored arguments, and the usual
    ``Wait``/``Waitall`` completes it. Persistent requests amortize the
    per-call setup cost — the same effect the directive backend's
    pooled path models — and are the natural lowering for a
    ``comm_p2p`` inside a ``max_comm_iter`` loop.
    """

    __slots__ = ("comm", "side", "buf", "peer", "tag", "active")

    def __init__(self, comm, side: str, buf, peer: int, tag: int):
        if side not in ("send", "recv"):
            raise MPIError(f"invalid persistent side {side!r}")
        self.comm = comm
        self.side = side
        self.buf = buf
        self.peer = peer
        self.tag = tag
        #: The in-flight Request of the current episode, if any.
        self.active: Request | None = None

    def __repr__(self) -> str:
        state = "active" if self.active and not self.active.done \
            else "inactive"
        return (f"<PersistentRequest {self.side} peer={self.peer} "
                f"tag={self.tag} {state}>")


#: Request for a send/recv involving MPI_PROC_NULL: complete at creation.
class NullRequest(Request):
    __slots__ = ()

    def __init__(self, side: str, time: float):
        op = SendOp(gid=-1, channel="p2p", src=-2, dst=-2, tag=0,
                    data=b"", post_time=time, eager=True, kind="null")
        op.completion = time
        op.matched = True
        super().__init__(op, side)
