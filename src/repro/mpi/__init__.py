"""A simulated MPI library with faithful two-sided semantics.

This is the message-passing substrate the directives translate to. It
follows the real MPI surface closely enough that code transcribed from
the paper's listings (``MPI_Pack``/``MPI_Isend``/``MPI_Wait`` loops...)
maps line-for-line:

* tag/source matching with posted-receive and unexpected-message queues,
  non-overtaking per (source, destination) pair;
* eager vs rendezvous protocols by message size (a blocking ``Send`` of
  a large message really blocks until the receive is posted);
* non-blocking operations with :class:`Request` objects, ``Wait``,
  ``Waitall``, ``Test``;
* basic and derived datatypes (``Type_create_struct`` + ``Commit``);
* ``Pack``/``Unpack``;
* one-sided RMA windows (``Win``, ``Put``, ``Get``, ``Fence``,
  ``Lock``/``Unlock``);
* the collectives the WL-LSMS mini-app needs (``Barrier``, ``Bcast``,
  ``Reduce``, ``Gather``, ``Allreduce``), implemented as real
  point-to-point trees so their cost emerges from the p2p model.

Entry point: each simulated rank calls :func:`init` with its
:class:`repro.sim.Env` to obtain its ``COMM_WORLD``.

Usage::

    from repro import mpi

    def program(env):
        comm = mpi.init(env)
        if comm.rank == 0:
            comm.Send(np.arange(4.0), dest=1, tag=7)
        elif comm.rank == 1:
            buf = np.zeros(4)
            comm.Recv(buf, source=0, tag=7)
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED
from repro.mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PACKED,
    Datatype,
    Type_create_struct,
    type_from_buffer,
)
from repro.mpi.status import Status
from repro.mpi.request import Request
from repro.mpi.comm import Comm, World, init
from repro.mpi.pack import Pack, Unpack, pack_size
from repro.mpi.rma import Win
from repro.mpi.cart import Cart_create, CartComm, dims_create

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "BYTE",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "PACKED",
    "Datatype",
    "Type_create_struct",
    "type_from_buffer",
    "Status",
    "Request",
    "Comm",
    "World",
    "init",
    "Pack",
    "Unpack",
    "pack_size",
    "Win",
    "Cart_create",
    "CartComm",
    "dims_create",
]
