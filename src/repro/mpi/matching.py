"""Message matching and transfer timing.

This module is the heart of the simulated MPI: it keeps the classic
*posted-receive* and *unexpected-message* queues per (communicator,
destination) pair, enforces MPI's matching rules (first-match in posting
order; non-overtaking between a given source/destination pair), and
computes virtual completion times from the machine model:

Eager protocol (``nbytes <= eager_threshold``):

* the sender is busy for ``send_overhead(m)`` and its buffer is then
  free (buffered send) — the send completes locally;
* the payload arrives at ``post + wire_time(m)``;
* the receive completes at ``max(arrival, recv post) + recv_overhead``.

Rendezvous protocol (larger messages):

* the transfer starts at ``max(send post, recv post) + rendezvous_rtt``;
* both sides complete at ``start + wire_time(m)`` (receiver pays its
  matching overhead on top);
* a *blocking* send therefore genuinely blocks until the receive is
  posted — unmatched large blocking sends deadlock, as on a real
  machine.

Data moves at match time (receives see real bytes); *times* are what
``Wait`` consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TruncationError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import RecvOp, SendOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import World
    from repro.sim.process import Env


def _key(op: SendOp | RecvOp) -> tuple[int, str, int]:
    return (op.gid, op.channel, op.dst)


def _recv_accepts(r: RecvOp, s: SendOp) -> bool:
    return ((r.source == ANY_SOURCE or r.source == s.src)
            and (r.tag == ANY_TAG or r.tag == s.tag))


def post_send(world: "World", env: "Env", op: SendOp) -> None:
    """Register a send; match it against posted receives if possible."""
    posted = world.posted_recvs.setdefault(_key(op), [])
    for i, r in enumerate(posted):
        if _recv_accepts(r, op):
            del posted[i]
            _complete_match(world, env, op, r)
            return
    world.unexpected.setdefault(_key(op), []).append(op)
    _wake_probers(world, env, op)


def _wake_probers(world: "World", env: "Env", op: SendOp) -> None:
    """Wake blocking probes whose pattern this unexpected send matches."""
    probers = world.probe_waiters.get(_key(op))
    if not probers:
        return
    tp = world.model.transport(op.kind)
    arrival = op.post_time + tp.wire_time(op.nbytes)
    still_waiting = []
    for source, tag, waiter in probers:
        if waiter.woken:
            # Stale registration: this waiter was already woken by an
            # earlier send. Its owner has resumed (or will resume) and,
            # if still probing, re-registers a *fresh* waiter — so the
            # dead entry is discarded here rather than kept (it could
            # never be woken again) or re-woken (waiters are single-use).
            continue
        pattern = RecvOp(gid=op.gid, channel=op.channel, dst=op.dst,
                         source=source, tag=tag,
                         buf=np.empty(0, dtype=np.uint8), post_time=0.0)
        if _recv_accepts(pattern, op):
            env.engine.wake(waiter, arrival, payload=op)
        else:
            still_waiting.append((source, tag, waiter))
    if still_waiting:
        world.probe_waiters[_key(op)] = still_waiting
    else:
        world.probe_waiters.pop(_key(op), None)


def post_recv(world: "World", env: "Env", op: RecvOp) -> None:
    """Register a receive; match the oldest acceptable unexpected send."""
    unexpected = world.unexpected.setdefault(_key(op), [])
    for i, s in enumerate(unexpected):
        if _recv_accepts(op, s):
            del unexpected[i]
            _complete_match(world, env, s, op)
            return
    world.posted_recvs.setdefault(_key(op), []).append(op)


def probe_unexpected(world: "World", gid: int, channel: str, dst: int,
                     source: int, tag: int) -> SendOp | None:
    """First unexpected send matching (source, tag), or None (Iprobe)."""
    probe = RecvOp(gid=gid, channel=channel, dst=dst, source=source,
                   tag=tag, buf=np.empty(0, dtype=np.uint8), post_time=0.0)
    for s in world.unexpected.get((gid, channel, dst), []):
        if _recv_accepts(probe, s):
            return s
    return None


def _complete_match(world: "World", env: "Env", s: SendOp, r: RecvOp) -> None:
    """Compute completion times, deliver the payload, wake blocked sides."""
    tp = world.model.transport(s.kind)
    faults = env.engine.faults
    # Adversarial extra wire delay (jitter / reorder / drop-retransmit).
    # Modelled as added delivery latency, never as queue permutation, so
    # MPI's same-(src, dst, tag) non-overtaking rule is preserved.
    extra = (faults.message_delay(tp, s.src, s.dst, s.nbytes)
             if faults is not None else 0.0)
    if s.eager:
        arrival = s.post_time + tp.wire_time(s.nbytes) + extra
        r.completion = max(arrival, r.post_time) + tp.recv_overhead(s.nbytes)
        # s.completion was already set at post time (buffered).
    else:
        start = max(s.post_time, r.post_time) + tp.rendezvous_rtt
        finish = start + tp.wire_time(s.nbytes) + extra
        s.completion = finish
        r.completion = finish + tp.recv_overhead(s.nbytes)

    if faults is not None and faults.deferred_delivery:
        # The payload is staged and lands in the user buffer only when
        # the receiver's completion call commits it — so a missing
        # Wait/Waitall leaves stale data the fuzzer can detect.
        _stage(s, r)
    else:
        _deliver(s, r)
    s.matched = True
    r.matched = True
    world.stats.count_message(s.kind, s.nbytes)
    profile = env.engine.profile
    if profile is not None:
        # One span per delivered message, attributed to the receiving
        # rank: from the send post to the receive completion. The
        # (src, dst, tag) identity is what a consolidated sync's
        # recv_keys refer to for directive traffic (tag == seq there).
        profile.add(s.dst, "message", s.post_time, r.completion,
                    src=s.src, dst=s.dst, seq=s.tag, nbytes=s.nbytes,
                    transport=s.kind, channel=s.channel, eager=s.eager)

    # The deterministic wake order (receiver before sender) is part of
    # the engine's (virtual time, rank) dispatch contract: both wakes
    # enqueue into the ready heap, and dispatch order then depends only
    # on the wake times and ranks, not on queue insertion order.
    r.wake_waiter(env, r.completion)
    s.wake_waiter(env, s.completion)


def _check_and_fill_status(s: SendOp, r: RecvOp) -> None:
    """Truncation check + status fields, common to both delivery modes."""
    if s.nbytes > r.buf.nbytes:
        raise TruncationError(
            f"message of {s.nbytes} bytes from rank {s.src} (tag {s.tag}) "
            f"truncated: receive buffer holds only {r.buf.nbytes} bytes")
    r.status_source = s.src
    r.status_tag = s.tag
    r.status_nbytes = s.nbytes


def _deliver(s: SendOp, r: RecvOp) -> None:
    """Copy the payload into the receive buffer (truncation-checked)."""
    _check_and_fill_status(s, r)
    if s.nbytes > 0:
        flat = r.buf.reshape(-1).view(np.uint8)
        flat[:s.nbytes] = np.frombuffer(s.data, dtype=np.uint8)


def _stage(s: SendOp, r: RecvOp) -> None:
    """Park the payload on the RecvOp; ``RecvOp.commit`` lands it."""
    _check_and_fill_status(s, r)
    r.staged = s.data
