"""MPI wildcard and sentinel constants."""

from __future__ import annotations

#: Match a message from any source rank.
ANY_SOURCE: int = -1
#: Match a message with any tag.
ANY_TAG: int = -1
#: The null process: sends/receives to it complete immediately, no data.
PROC_NULL: int = -2
#: Returned where MPI would return MPI_UNDEFINED.
UNDEFINED: int = -3

#: Highest tag value guaranteed to be usable (MPI guarantees >= 32767).
TAG_UB: int = 2**30
