"""Collectives built from real point-to-point trees.

Rather than charging an opaque analytic cost, each collective executes
an actual algorithm (binomial trees, pairwise exchange) over the
two-sided machinery, so its virtual cost *emerges* from the p2p model —
and its data movement is real and testable. Collective traffic flows on
a separate matching channel (``"coll"``) so it can never match user
wildcard receives, with per-(group, rank) sequence numbers as tags
(legal because MPI requires all members to call collectives in the same
order).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import MPIError
from repro.mpi.comm import Comm

_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


def _as_array(buf: Any, what: str) -> np.ndarray:
    if not isinstance(buf, np.ndarray):
        raise MPIError(f"{what} must be a numpy array, "
                       f"got {type(buf).__name__}")
    return buf


def _coll_send(comm: Comm, buf: np.ndarray, dest: int, tag: int):
    return comm._post_send(buf, dest, tag, pooled=True, channel="coll")


def _coll_recv_blocking(comm: Comm, buf: np.ndarray, source: int,
                        tag: int) -> None:
    op = comm._post_recv(buf, source, tag, pooled=True, channel="coll")
    if op.completion is None:
        op.waiter = comm.env.make_waiter(
            f"collective recv from {source} tag {tag}")
        comm.env.block("mpi.coll.recv")
    else:
        comm.env.advance_to(op.completion)
    op.commit()


def _coll_send_blocking(comm: Comm, buf: np.ndarray, dest: int,
                        tag: int) -> None:
    op = _coll_send(comm, buf, dest, tag)
    if op.completion is None:
        op.waiter = comm.env.make_waiter(
            f"collective send to {dest} tag {tag}")
        comm.env.block("mpi.coll.send")
    else:
        comm.env.advance_to(op.completion)


def barrier(comm: Comm) -> None:
    """Synchronize all members (dissemination-barrier cost model)."""
    comm.world.stats.count_sync("barrier")
    comm.world.barrier_for(comm.group).join(comm.env)


def bcast(comm: Comm, buf: np.ndarray, root: int = 0) -> None:
    """Binomial-tree broadcast of ``buf`` from ``root``, in place."""
    buf = _as_array(buf, "bcast buffer")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    # Rotate so the root is virtual rank 0, then run the standard
    # binomial tree: receive once from the parent (the lowest set bit),
    # forward to children at every lower bit position.
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank ^ mask) + root) % size
            _coll_recv_blocking(comm, buf, parent, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = (vrank + mask + root) % size
            _coll_send_blocking(comm, buf, child, tag)
        mask >>= 1


def reduce(comm: Comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
           op: str = "sum", root: int = 0) -> None:
    """Binomial-tree reduction to ``root``.

    ``recvbuf`` is required (and written) only at the root.
    """
    sendbuf = _as_array(sendbuf, "reduce send buffer")
    if op not in _OPS:
        raise MPIError(f"unknown reduction op {op!r}; "
                       f"choose from {sorted(_OPS)}")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    vrank = (rank - root) % size
    acc = sendbuf.copy()
    tmp = np.empty_like(sendbuf)
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            _coll_send_blocking(comm, acc, parent, tag)
            break
        child = vrank | mask
        if child < size:
            _coll_recv_blocking(comm, tmp, (child + root) % size, tag)
            acc = _OPS[op](acc, tmp)
        mask <<= 1
    if rank == root:
        if recvbuf is None:
            raise MPIError("reduce root needs a recvbuf")
        recvbuf = _as_array(recvbuf, "reduce recv buffer")
        recvbuf[...] = acc.reshape(recvbuf.shape)


def allreduce(comm: Comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
              op: str = "sum") -> None:
    """Reduce to rank 0 then broadcast (reduce+bcast composition)."""
    recvbuf = _as_array(recvbuf, "allreduce recv buffer")
    if comm.rank == 0:
        reduce(comm, sendbuf, recvbuf, op, root=0)
    else:
        reduce(comm, sendbuf, None, op, root=0)
    bcast(comm, recvbuf, root=0)


def gather(comm: Comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
           root: int = 0) -> None:
    """Linear gather: each rank's contribution lands at its slot of the
    root's ``recvbuf`` (shape ``(size,) + sendbuf.shape``)."""
    sendbuf = _as_array(sendbuf, "gather send buffer")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    if rank == root:
        if recvbuf is None:
            raise MPIError("gather root needs a recvbuf")
        recvbuf = _as_array(recvbuf, "gather recv buffer")
        if recvbuf.shape[0] != size:
            raise MPIError(
                f"gather recvbuf first dimension must be {size}, "
                f"got {recvbuf.shape}")
        recvbuf[root][...] = sendbuf.reshape(recvbuf[root].shape)
        for peer in range(size):
            if peer != root:
                _coll_recv_blocking(comm, recvbuf[peer], peer, tag)
    else:
        _coll_send_blocking(comm, sendbuf, root, tag)


def scatter(comm: Comm, sendbuf: np.ndarray | None, recvbuf: np.ndarray,
            root: int = 0) -> None:
    """Linear scatter: slot ``i`` of the root's ``sendbuf`` to rank i."""
    recvbuf = _as_array(recvbuf, "scatter recv buffer")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    if rank == root:
        if sendbuf is None:
            raise MPIError("scatter root needs a sendbuf")
        sendbuf = _as_array(sendbuf, "scatter send buffer")
        if sendbuf.shape[0] != size:
            raise MPIError(
                f"scatter sendbuf first dimension must be {size}, "
                f"got {sendbuf.shape}")
        recvbuf[...] = sendbuf[root].reshape(recvbuf.shape)
        for peer in range(size):
            if peer != root:
                _coll_send_blocking(comm, sendbuf[peer], peer, tag)
    else:
        _coll_recv_blocking(comm, recvbuf, root, tag)


def gatherv(comm: Comm, sendbuf: np.ndarray,
            recvbuf: np.ndarray | None, counts: list[int] | None,
            root: int = 0) -> None:
    """Variable-count gather (``MPI_Gatherv``).

    Rank ``i`` contributes ``counts[i]`` elements; the root's flat
    ``recvbuf`` receives them back-to-back at the standard
    displacements (prefix sums of ``counts``).
    """
    sendbuf = _as_array(sendbuf, "gatherv send buffer")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    if rank == root:
        if recvbuf is None or counts is None:
            raise MPIError("gatherv root needs recvbuf and counts")
        recvbuf = _as_array(recvbuf, "gatherv recv buffer")
        if len(counts) != size:
            raise MPIError(
                f"gatherv needs {size} counts, got {len(counts)}")
        if sum(counts) > recvbuf.size:
            raise MPIError(
                f"gatherv counts sum to {sum(counts)}, recvbuf holds "
                f"{recvbuf.size}")
        flat = recvbuf.reshape(-1)
        offset = 0
        for peer in range(size):
            n = counts[peer]
            if peer == root:
                flat[offset:offset + n] = sendbuf.reshape(-1)[:n]
            elif n > 0:
                _coll_recv_blocking(comm, flat[offset:offset + n],
                                    peer, tag)
            offset += n
    else:
        if sendbuf.size > 0:
            _coll_send_blocking(comm, np.ascontiguousarray(
                sendbuf.reshape(-1)), root, tag)


def scatterv(comm: Comm, sendbuf: np.ndarray | None,
             counts: list[int] | None, recvbuf: np.ndarray,
             root: int = 0) -> None:
    """Variable-count scatter (``MPI_Scatterv``)."""
    recvbuf = _as_array(recvbuf, "scatterv recv buffer")
    size, rank = comm.size, comm.rank
    if not 0 <= root < size:
        raise MPIError(f"invalid root {root}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    if rank == root:
        if sendbuf is None or counts is None:
            raise MPIError("scatterv root needs sendbuf and counts")
        sendbuf = _as_array(sendbuf, "scatterv send buffer")
        if len(counts) != size:
            raise MPIError(
                f"scatterv needs {size} counts, got {len(counts)}")
        flat = sendbuf.reshape(-1)
        offset = 0
        for peer in range(size):
            n = counts[peer]
            chunk = flat[offset:offset + n]
            if peer == root:
                recvbuf.reshape(-1)[:n] = chunk
            elif n > 0:
                _coll_send_blocking(comm, np.ascontiguousarray(chunk),
                                    peer, tag)
            offset += n
    else:
        if recvbuf.size > 0:
            _coll_recv_blocking(comm, recvbuf.reshape(-1), root, tag)


def allgather(comm: Comm, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
    """Gather to rank 0, then broadcast the assembled buffer."""
    recvbuf = _as_array(recvbuf, "allgather recv buffer")
    gather(comm, sendbuf, recvbuf if comm.rank == 0 else None, root=0)
    bcast(comm, recvbuf, root=0)


def alltoall(comm: Comm, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
    """Pairwise-exchange all-to-all.

    ``sendbuf``/``recvbuf`` have shape ``(size,) + block``; slot ``j`` of
    this rank's sendbuf goes to slot ``rank`` of rank ``j``'s recvbuf.
    """
    sendbuf = _as_array(sendbuf, "alltoall send buffer")
    recvbuf = _as_array(recvbuf, "alltoall recv buffer")
    size, rank = comm.size, comm.rank
    if sendbuf.shape[0] != size or recvbuf.shape[0] != size:
        raise MPIError(
            f"alltoall buffers must have first dimension {size}")
    tag = comm.world.next_coll_tag(comm.group.gid, comm.env.rank)
    recvbuf[rank][...] = sendbuf[rank]
    reqs = []
    for peer in range(size):
        if peer == rank:
            continue
        op = comm._post_recv(recvbuf[peer], peer, tag, pooled=True,
                             channel="coll")
        reqs.append(op)
    for shift in range(1, size):
        peer = (rank + shift) % size
        sop = _coll_send(comm, sendbuf[peer], peer, tag)
        if sop.completion is None:
            sop.waiter = comm.env.make_waiter(f"alltoall send to {peer}")
            comm.env.block("mpi.alltoall.send")
        else:
            comm.env.advance_to(sop.completion)
    for op in reqs:
        if op.completion is None:
            op.waiter = comm.env.make_waiter("alltoall recv")
            comm.env.block("mpi.alltoall.recv")
        else:
            comm.env.advance_to(op.completion)
