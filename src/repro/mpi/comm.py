"""Communicators and the per-engine MPI world.

Each simulated rank calls :func:`init` once to obtain its ``COMM_WORLD``
handle. A :class:`Comm` is a per-rank view of a :class:`CommGroup`
(ordered member list with a group id); the :class:`World` holds the
shared state — matching queues, the machine model, group registry and
collective helpers — in ``engine.services``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import MPIError
from repro.mpi import matching
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.datatypes import Datatype, type_from_buffer
from repro.mpi.request import NullRequest, RecvOp, Request, SendOp
from repro.mpi.status import Status
from repro.netmodel.base import MPI_2SIDED, MachineModel
from repro.netmodel.gemini import gemini_model
from repro.sim.engine import Engine
from repro.sim.process import Env
from repro.sim.sync import Rendezvous

_SERVICE_KEY = "mpi_world"


class CommGroup:
    """An ordered set of global ranks with a group id."""

    def __init__(self, gid: int, members: Sequence[int]):
        self.gid = gid
        self.members = tuple(members)
        self._local = {g: i for i, g in enumerate(self.members)}
        if len(self._local) != len(self.members):
            raise MPIError(f"duplicate ranks in group: {members}")

    def local_rank(self, global_rank: int) -> int:
        """Translate a global rank into this group."""
        try:
            return self._local[global_rank]
        except KeyError:
            raise MPIError(
                f"rank {global_rank} is not in group {self.gid}") from None

    def global_rank(self, local_rank: int) -> int:
        """Translate a group-local rank to its global rank."""
        if not 0 <= local_rank < len(self.members):
            raise MPIError(
                f"local rank {local_rank} out of range for group of size "
                f"{len(self.members)}")
        return self.members[local_rank]

    @property
    def size(self) -> int:
        """Number of group members."""
        return len(self.members)


class World:
    """Shared MPI state for one engine."""

    def __init__(self, engine: Engine, model: MachineModel):
        self.engine = engine
        self.model = model
        self.stats = engine.stats
        # Matching queues keyed by (gid, channel, destination global rank).
        self.posted_recvs: dict[tuple[int, str, int], list[RecvOp]] = {}
        self.unexpected: dict[tuple[int, str, int], list[SendOp]] = {}
        # Blocking probes parked until a matching send arrives:
        # key -> list of (source, tag, waiter).
        self.probe_waiters: dict[tuple[int, str, int], list] = {}
        self._gid_counter = itertools.count(1)
        self.world_group = CommGroup(0, range(engine.nprocs))
        # Collective machinery, lazily created per group.
        self._barriers: dict[int, Rendezvous] = {}
        # Split/dup coordination: contributions keyed by (gid, episode).
        self._split_contrib: dict[tuple[int, int], dict[int, tuple]] = {}
        self._split_result: dict[tuple[int, int], dict[int, CommGroup]] = {}
        self._split_seq: dict[tuple[int, int], int] = {}
        # Per-(gid, rank) collective sequence numbers (tags for trees).
        self.coll_seq: dict[tuple[int, int], int] = {}
        # Member-tuple -> CommGroup registry (non-collective groups).
        self._member_groups: dict[tuple[int, ...], CommGroup] = {}

    @classmethod
    def attach(cls, engine: Engine, model: MachineModel | None) -> "World":
        """The engine's world (created by the first caller)."""
        world = engine.services.get(_SERVICE_KEY)
        if world is None:
            world = cls(engine, model or gemini_model())
            engine.services[_SERVICE_KEY] = world
        elif model is not None and model is not world.model:
            raise MPIError(
                "mpi.init called with a different model than the one the "
                "world was created with; pass the model on every rank or "
                "on none")
        return world

    def new_gid(self) -> int:
        """Allocate a fresh group id."""
        return next(self._gid_counter)

    def group_for(self, members: tuple[int, ...]) -> CommGroup:
        """A deterministic group for a fixed member tuple.

        Unlike ``Split`` this is not collective: any member may resolve
        the group at any time (the registry is engine-global, so every
        rank sees the same gid for the same member tuple). Used by the
        collective-directive lowering, where only group members reach
        the directive.
        """
        registry = self._member_groups
        group = registry.get(members)
        if group is None:
            group = CommGroup(self.new_gid(), members)
            registry[members] = group
        return group

    def barrier_for(self, group: CommGroup) -> Rendezvous:
        """The group's reusable barrier (created on first use)."""
        bar = self._barriers.get(group.gid)
        if bar is None:
            bar = Rendezvous(group.members, cost_fn=self.model.barrier_cost,
                             name=f"mpi-barrier-gid{group.gid}")
            self._barriers[group.gid] = bar
        return bar

    def next_coll_tag(self, gid: int, global_rank: int) -> int:
        """Per-rank collective sequence number; equal across ranks when
        collectives are called in the same order (MPI's requirement)."""
        key = (gid, global_rank)
        seq = self.coll_seq.get(key, 0)
        self.coll_seq[key] = seq + 1
        return seq


def init(env: Env, model: MachineModel | None = None) -> "Comm":
    """Return this rank's ``COMM_WORLD`` (creating the world if needed).

    The first caller fixes the machine model (default: the calibrated
    :func:`~repro.netmodel.gemini_model`).
    """
    world = World.attach(env.engine, model)
    return Comm(world, world.world_group, env)


class Comm:
    """A per-rank communicator handle (mpi4py-flavoured API).

    Buffer arguments are numpy arrays, optionally wrapped as
    ``(array, count)`` or ``(array, count, datatype)`` to send a prefix
    or to attach an explicit (e.g. derived) datatype.
    """

    def __init__(self, world: World, group: CommGroup, env: Env):
        self.world = world
        self.group = group
        self.env = env
        self.rank = group.local_rank(env.rank)
        self.size = group.size

    # ------------------------------------------------------------------
    # Helpers

    def _global(self, local_rank: int) -> int:
        return self.group.global_rank(local_rank)

    def _resolve_buffer(self, buf: Any) -> tuple[np.ndarray, int, Datatype]:
        """Normalize a buffer spec to (array, nbytes, datatype)."""
        datatype: Datatype | None = None
        count: int | None = None
        if isinstance(buf, tuple):
            if len(buf) == 2:
                buf, count = buf
            elif len(buf) == 3:
                buf, count, datatype = buf
            else:
                raise MPIError(
                    f"buffer spec must be array, (array, count) or "
                    f"(array, count, datatype); got tuple of {len(buf)}")
        if np.isscalar(buf):
            raise MPIError(
                "buffers must be numpy arrays (scalars are immutable; "
                "wrap them in a 0-d or 1-element array)")
        if not isinstance(buf, np.ndarray):
            raise MPIError(
                f"buffers must be numpy arrays, got {type(buf).__name__}")
        if datatype is None:
            datatype = type_from_buffer(buf)
        datatype.check_usable()
        if count is None:
            nbytes = buf.nbytes
        else:
            if count < 0:
                raise MPIError(f"count must be >= 0, got {count}")
            nbytes = count * datatype.size
            if nbytes > buf.nbytes:
                raise MPIError(
                    f"count {count} x {datatype.size}B exceeds the "
                    f"{buf.nbytes}-byte buffer")
        return np.ascontiguousarray(buf), nbytes, datatype

    def _check_peer(self, rank: int, what: str) -> None:
        if rank != PROC_NULL and not 0 <= rank < self.size:
            raise MPIError(
                f"{what} rank {rank} out of range for communicator of "
                f"size {self.size}")

    def _check_tag(self, tag: int, *, wildcard_ok: bool) -> None:
        if tag == ANY_TAG and wildcard_ok:
            return
        if tag < 0:
            raise MPIError(f"invalid tag {tag}")

    def _fill_status(self, status: Status | None, op: RecvOp) -> None:
        if status is None:
            return
        status.source = self.group.local_rank(op.status_source)
        status.tag = op.status_tag
        status.nbytes = op.status_nbytes

    # ------------------------------------------------------------------
    # Point-to-point: posting

    def _post_send(self, buf: Any, dest: int, tag: int, *,
                   pooled: bool, channel: str = "p2p") -> SendOp | None:
        self._check_peer(dest, "destination")
        self._check_tag(tag, wildcard_ok=False)
        if dest == PROC_NULL:
            return None
        self.env.engine.check_peer_alive(self._global(dest))
        arr, nbytes, _ = self._resolve_buffer(buf)
        data = arr.tobytes()[:nbytes]
        tp = self.world.model.transport(MPI_2SIDED)
        eager = tp.is_eager(nbytes)
        # Sender-side software overhead.
        self.env.advance(tp.send_overhead(nbytes) if eager else tp.o_send)
        if not pooled:
            self.env.advance(self.world.model.request_alloc_overhead)
        op = SendOp(gid=self.group.gid, channel=channel, src=self.env.rank,
                    dst=self._global(dest), tag=tag, data=data,
                    post_time=self.env.now, eager=eager, kind=MPI_2SIDED)
        if eager:
            op.completion = self.env.now  # buffered; sender is done
        matching.post_send(self.world, self.env, op)
        self.env.trace("mpi.send_post", dest=op.dst, tag=tag,
                       nbytes=nbytes, eager=eager)
        return op

    def _post_recv(self, buf: Any, source: int, tag: int, *,
                   pooled: bool, channel: str = "p2p") -> RecvOp | None:
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        self._check_tag(tag, wildcard_ok=True)
        if source == PROC_NULL:
            return None
        if source != ANY_SOURCE:
            self.env.engine.check_peer_alive(self._global(source))
        raw = buf[0] if isinstance(buf, tuple) else buf
        if not (isinstance(raw, np.ndarray) and raw.flags.c_contiguous
                and raw.flags.writeable):
            raise MPIError(
                "receive buffers must be writeable C-contiguous numpy "
                "arrays (delivery is in place)")
        arr, nbytes, _ = self._resolve_buffer(buf)
        if not pooled:
            self.env.advance(self.world.model.request_alloc_overhead)
        src_global = (ANY_SOURCE if source == ANY_SOURCE
                      else self._global(source))
        op = RecvOp(gid=self.group.gid, channel=channel,
                    dst=self.env.rank, source=src_global, tag=tag,
                    buf=arr, post_time=self.env.now)
        matching.post_recv(self.world, self.env, op)
        self.env.trace("mpi.recv_post", source=source, tag=tag)
        return op

    # ------------------------------------------------------------------
    # Point-to-point: blocking

    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking send. Eager messages return once buffered; larger
        (rendezvous) messages block until the matching receive is posted
        and the transfer completes."""
        op = self._post_send(buf, dest, tag, pooled=True)
        if op is None:
            return
        if op.completion is None:
            op.waiter = self.env.make_waiter(
                f"MPI_Send to rank {dest} tag {tag} "
                f"({op.nbytes}B, rendezvous)")
            self.env.block("mpi.send")
        else:
            self.env.advance_to(op.completion)

    def Recv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> None:
        """Blocking receive into ``buf``."""
        op = self._post_recv(buf, source, tag, pooled=True)
        if op is None:
            return
        if op.completion is None:
            op.waiter = self.env.make_waiter(
                f"MPI_Recv from "
                f"{'ANY' if source == ANY_SOURCE else source} tag "
                f"{'ANY' if tag == ANY_TAG else tag}")
            self.env.block("mpi.recv")
        else:
            self.env.advance_to(op.completion)
        op.commit()
        self._fill_status(status, op)

    def Sendrecv_replace(self, buf: np.ndarray, dest: int, source: int,
                         sendtag: int = 0, recvtag: int = ANY_TAG,
                         status: Status | None = None) -> None:
        """Combined send+receive using one buffer (the outgoing data is
        staged internally, as ``MPI_Sendrecv_replace`` does)."""
        if not isinstance(buf, np.ndarray):
            raise MPIError("Sendrecv_replace needs a numpy array")
        staged = np.ascontiguousarray(buf).copy()
        self.Sendrecv(staged, dest, buf, source, sendtag, recvtag,
                      status)

    def Sendrecv(self, sendbuf: Any, dest: int, recvbuf: Any, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 status: Status | None = None) -> None:
        """Combined send+receive; deadlock-free like the real thing."""
        rop = self._post_recv(recvbuf, source, recvtag, pooled=True)
        sop = self._post_send(sendbuf, dest, sendtag, pooled=True)
        for op, what in ((sop, "sendrecv.send"), (rop, "sendrecv.recv")):
            if op is None:
                continue
            if op.completion is None:
                op.waiter = self.env.make_waiter(what)
                self.env.block(what)
            else:
                self.env.advance_to(op.completion)
        if rop is not None:
            rop.commit()
            self._fill_status(status, rop)

    # ------------------------------------------------------------------
    # Point-to-point: non-blocking

    def Isend(self, buf: Any, dest: int, tag: int = 0, *,
              pooled: bool = False) -> Request:
        """Non-blocking send. ``pooled=True`` is the directive backend's
        path: it skips the user-level request-allocation overhead."""
        op = self._post_send(buf, dest, tag, pooled=pooled)
        if op is None:
            return NullRequest("send", self.env.now)
        return Request(op, "send")

    def Irecv(self, buf: Any, source: int = ANY_SOURCE,
              tag: int = ANY_TAG, *, pooled: bool = False) -> Request:
        """Non-blocking receive."""
        op = self._post_recv(buf, source, tag, pooled=pooled)
        if op is None:
            return NullRequest("recv", self.env.now)
        return Request(op, "recv")

    # ------------------------------------------------------------------
    # Completion

    def _wait_quiet(self, request: Request) -> None:
        """Wait without charging per-call overhead (Waitall's inner loop)."""
        if request.done:
            return
        op = request.op
        if op.completion is None:
            op.waiter = self.env.make_waiter(
                f"completion of {request.side} {op!r}")
            self.env.block(f"mpi.wait.{request.side}")
        else:
            self.env.advance_to(op.completion)
        if isinstance(op, RecvOp):
            op.commit()
        request.done = True

    def Wait(self, request: Request, status: Status | None = None) -> None:
        """Wait for one request; charges the per-call MPI_Wait overhead."""
        self.env.advance(self.world.model.wait_overhead)
        self.world.stats.count_sync("wait")
        self._wait_quiet(request)
        if request.side == "recv" and isinstance(request.op, RecvOp):
            self._fill_status(status, request.op)

    def Waitall(self, requests: Sequence[Request],
                statuses: list[Status] | None = None) -> None:
        """Wait for all requests with one consolidated call.

        Cost: ``waitall_base + per_request * n`` — the synchronization
        the directive translation consolidates adjacent communication
        into (and the paper's Figure 4 ablation measures).
        """
        self.env.advance(self.world.model.waitall_cost(len(requests)))
        self.world.stats.count_sync("waitall")
        for i, req in enumerate(requests):
            self._wait_quiet(req)
            if statuses is not None and req.side == "recv" \
                    and isinstance(req.op, RecvOp):
                self._fill_status(statuses[i], req.op)

    # ------------------------------------------------------------------
    # Persistent operations (MPI_Send_init / MPI_Recv_init / MPI_Start)

    def Send_init(self, buf: Any, dest: int, tag: int = 0):
        """Create an inactive persistent send request.

        Pays the request-allocation overhead once, here; each
        :meth:`Start` is then on the pooled (cheap) path — the
        amortization persistent operations exist for.
        """
        from repro.mpi.request import PersistentRequest
        self._check_peer(dest, "destination")
        self._check_tag(tag, wildcard_ok=False)
        self.env.advance(self.world.model.request_alloc_overhead)
        return PersistentRequest(self, "send", buf, dest, tag)

    def Recv_init(self, buf: Any, source: int, tag: int = 0):
        """Create an inactive persistent receive request."""
        from repro.mpi.request import PersistentRequest
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        self._check_tag(tag, wildcard_ok=True)
        self.env.advance(self.world.model.request_alloc_overhead)
        return PersistentRequest(self, "recv", buf, source, tag)

    def Start(self, preq) -> Request:
        """Activate a persistent request; returns the episode's Request
        (also available as ``preq.active``)."""
        from repro.mpi.request import PersistentRequest
        if not isinstance(preq, PersistentRequest):
            raise MPIError("Start needs a persistent request")
        if preq.active is not None and not preq.active.done:
            raise MPIError(
                "persistent request started while still active")
        if preq.side == "send":
            req = self.Isend(preq.buf, preq.peer, preq.tag, pooled=True)
        else:
            req = self.Irecv(preq.buf, preq.peer, preq.tag, pooled=True)
        preq.active = req
        return req

    def Waitany(self, requests: Sequence[Request],
                status: Status | None = None) -> int:
        """Wait for (at least) one request; returns its index.

        Prefers an already-complete request; otherwise waits for the
        earliest completion among those already matched, else blocks on
        the first pending one (a deterministic simplification of MPI's
        "some request" semantics).
        """
        if not requests:
            raise MPIError("Waitany needs at least one request")
        self.env.advance(self.world.model.wait_overhead)
        self.world.stats.count_sync("waitany")
        live = [(i, r) for i, r in enumerate(requests) if not r.done]
        if not live:
            raise MPIError("Waitany: all requests already consumed")
        ready = [(r.op.completion, i) for i, r in live
                 if r.op.completion is not None]
        if ready:
            _, idx = min(ready)
        else:
            idx = live[0][0]
        req = requests[idx]
        self._wait_quiet(req)
        if req.side == "recv" and isinstance(req.op, RecvOp):
            self._fill_status(status, req.op)
        return idx

    def Testall(self, requests: Sequence[Request]) -> bool:
        """True (consuming the requests) iff all are complete now."""
        self.env.advance(self.world.model.wait_overhead)
        self.world.stats.count_sync("testall")
        now = self.env.now
        if all(r.done or (r.op.completion is not None
                          and r.op.completion <= now)
               for r in requests):
            for r in requests:
                self._wait_quiet(r)
            return True
        self.env.yield_()
        return False

    def Test(self, request: Request) -> bool:
        """Non-blocking completion check; polls cost the wait overhead."""
        self.env.advance(self.world.model.wait_overhead)
        self.world.stats.count_sync("test")
        op = request.op
        if op.completion is not None and op.completion <= self.env.now:
            if isinstance(op, RecvOp):
                op.commit()
            request.done = True
            return True
        self.env.yield_()
        return False

    # ------------------------------------------------------------------
    # Probe

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None) -> None:
        """Blocking probe: returns once a matching message is pending
        (without receiving it). The classic dynamic-size idiom::

            st = mpi.Status()
            comm.Probe(source, tag, st)
            buf = np.zeros(st.Get_count(mpi.DOUBLE))
            comm.Recv(buf, st.source, st.tag)
        """
        src_global = (ANY_SOURCE if source == ANY_SOURCE
                      else self._global(source))
        s = matching.probe_unexpected(
            self.world, self.group.gid, "p2p", self.env.rank,
            src_global, tag)
        if s is None:
            waiter = self.env.make_waiter(
                f"MPI_Probe source="
                f"{'ANY' if source == ANY_SOURCE else source} tag="
                f"{'ANY' if tag == ANY_TAG else tag}")
            key = (self.group.gid, "p2p", self.env.rank)
            self.world.probe_waiters.setdefault(key, []).append(
                (src_global, tag, waiter))
            got = self.env.block("mpi.probe")
            s = got.payload
        else:
            # Cover the message's arrival time: a probe cannot report a
            # message before it exists on the wire.
            tp = self.world.model.transport(MPI_2SIDED)
            self.env.advance_to(s.post_time + tp.wire_time(s.nbytes))
        if status is not None:
            status.source = self.group.local_rank(s.src)
            status.tag = s.tag
            status.nbytes = s.nbytes

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Status | None = None) -> bool:
        """True if a matching message is in the unexpected queue."""
        src_global = (ANY_SOURCE if source == ANY_SOURCE
                      else self._global(source))
        s = matching.probe_unexpected(
            self.world, self.group.gid, "p2p", self.env.rank,
            src_global, tag)
        if s is None:
            self.env.yield_()
            return False
        if status is not None:
            status.source = self.group.local_rank(s.src)
            status.tag = s.tag
            status.nbytes = s.nbytes
        return True

    # ------------------------------------------------------------------
    # Communicator management

    def Dup(self) -> "Comm":
        """Collective duplicate: same members, fresh matching space."""
        return self.Split(color=0, key=self.rank)

    def Split(self, color: int, key: int = 0) -> "Comm":
        """Collective split into sub-communicators by color, ordered by
        (key, rank). All members must call it (it synchronizes)."""
        world, group = self.world, self.group
        episode = world._split_seq.get((group.gid, self.env.rank), 0)
        world._split_seq[(group.gid, self.env.rank)] = episode + 1
        ckey = (group.gid, episode)
        contrib = world._split_contrib.setdefault(ckey, {})
        contrib[self.rank] = (color, key)
        world.barrier_for(group).join(self.env)
        if ckey not in world._split_result:
            # First rank past the barrier computes the partition once.
            by_color: dict[int, list[tuple[int, int, int]]] = {}
            for local, (c, k) in contrib.items():
                by_color.setdefault(c, []).append(
                    (k, local, group.global_rank(local)))
            result: dict[int, CommGroup] = {}
            for c in sorted(by_color):
                members = [g for _, _, g in sorted(by_color[c])]
                result[c] = CommGroup(world.new_gid(), members)
            world._split_result[ckey] = result
            del world._split_contrib[ckey]
        new_group = world._split_result[ckey][color]
        return Comm(world, new_group, self.env)

    # ------------------------------------------------------------------
    # Collectives live in collectives.py; bound here for a familiar API.

    def Barrier(self) -> None:
        """Synchronize all members (see :mod:`repro.mpi.collectives`)."""
        from repro.mpi.collectives import barrier
        barrier(self)

    def Bcast(self, buf: Any, root: int = 0) -> None:
        """Binomial-tree broadcast from ``root``, in place."""
        from repro.mpi.collectives import bcast
        bcast(self, buf, root)

    def Reduce(self, sendbuf: Any, recvbuf: Any, op: str = "sum",
               root: int = 0) -> None:
        """Binomial-tree reduction to ``root``."""
        from repro.mpi.collectives import reduce
        reduce(self, sendbuf, recvbuf, op, root)

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: str = "sum") -> None:
        """Reduction whose result lands on every member."""
        from repro.mpi.collectives import allreduce
        allreduce(self, sendbuf, recvbuf, op)

    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Collect each member's buffer into the root's slots."""
        from repro.mpi.collectives import gather
        gather(self, sendbuf, recvbuf, root)

    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Distribute slot ``i`` of the root's buffer to rank ``i``."""
        from repro.mpi.collectives import scatter
        scatter(self, sendbuf, recvbuf, root)

    def Gatherv(self, sendbuf: Any, recvbuf: Any,
                counts: list[int] | None, root: int = 0) -> None:
        """Variable-count gather (``MPI_Gatherv``)."""
        from repro.mpi.collectives import gatherv
        gatherv(self, sendbuf, recvbuf, counts, root)

    def Scatterv(self, sendbuf: Any, counts: list[int] | None,
                 recvbuf: Any, root: int = 0) -> None:
        """Variable-count scatter (``MPI_Scatterv``)."""
        from repro.mpi.collectives import scatterv
        scatterv(self, sendbuf, counts, recvbuf, root)

    def Allgather(self, sendbuf: Any, recvbuf: Any) -> None:
        """Gather whose result lands on every member."""
        from repro.mpi.collectives import allgather
        allgather(self, sendbuf, recvbuf)

    def Alltoall(self, sendbuf: Any, recvbuf: Any) -> None:
        """Pairwise block exchange among all members."""
        from repro.mpi.collectives import alltoall
        alltoall(self, sendbuf, recvbuf)

    def __repr__(self) -> str:
        return (f"<Comm gid={self.group.gid} rank={self.rank}/"
                f"{self.size}>")
