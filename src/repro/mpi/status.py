"""Receive-status objects (the ``MPI_Status`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.constants import UNDEFINED


@dataclass
class Status:
    """Filled in by receive operations.

    Mirrors ``MPI_Status``: who the message came from, its tag, and how
    big it was (queried per-datatype with :meth:`Get_count`).
    """

    source: int = UNDEFINED
    tag: int = UNDEFINED
    nbytes: int = 0

    def Get_count(self, datatype) -> int:
        """Number of ``datatype`` elements received.

        Returns :data:`~repro.mpi.constants.UNDEFINED` if the byte count
        is not a whole number of elements, as MPI does.
        """
        size = datatype.size
        if size <= 0 or self.nbytes % size != 0:
            return UNDEFINED
        return self.nbytes // size
