"""Cartesian process topologies (``MPI_Cart_create`` family).

Structured-grid applications — the halo-exchange patterns the paper's
cited studies find everywhere — address neighbours through a Cartesian
view of the communicator. :class:`CartComm` provides the essentials:
grid creation with optional periodicity, rank <-> coordinate
translation, and ``Shift`` for neighbour discovery.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import MPIError
from repro.mpi.comm import Comm
from repro.mpi.constants import PROC_NULL


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced dimensions for ``nnodes`` over ``ndims`` axes
    (``MPI_Dims_create``): factors as close to equal as possible,
    non-increasing."""
    if nnodes < 1 or ndims < 1:
        raise MPIError("dims_create needs positive nnodes and ndims")
    dims = [1] * ndims
    remaining = nnodes
    # Assign prime factors largest-first to the currently smallest dim.
    factors = _prime_factors(remaining)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    dims.sort(reverse=True)
    if math.prod(dims) != nnodes:
        raise MPIError(
            f"internal: dims {dims} do not cover {nnodes} nodes")
    return dims


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


class CartComm(Comm):
    """A communicator with Cartesian structure (row-major ranks)."""

    def __init__(self, comm: Comm, dims: Sequence[int],
                 periods: Sequence[bool] | None = None):
        super().__init__(comm.world, comm.group, comm.env)
        self.dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in self.dims):
            raise MPIError(f"invalid Cartesian dims {dims}")
        if math.prod(self.dims) != comm.size:
            raise MPIError(
                f"dims {dims} cover {math.prod(self.dims)} ranks, "
                f"communicator has {comm.size}")
        self.periods = tuple(bool(p) for p in (periods or
                                               [False] * len(dims)))
        if len(self.periods) != len(self.dims):
            raise MPIError("periods must match dims in length")

    # ------------------------------------------------------------------

    @property
    def ndims(self) -> int:
        """Number of grid dimensions."""
        return len(self.dims)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Row-major coordinates of a rank (``MPI_Cart_coords``)."""
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range")
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at given coordinates (``MPI_Cart_rank``), honouring
        periodicity; non-periodic out-of-range coordinates are an
        error (as in MPI)."""
        if len(coords) != self.ndims:
            raise MPIError(
                f"expected {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise MPIError(
                    f"coordinate {c} out of range for non-periodic "
                    f"dimension of extent {extent}")
            rank = rank * extent + c
        return rank

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's coordinates."""
        return self.coords_of(self.rank)

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for a shift along one dimension
        (``MPI_Cart_shift``); ``PROC_NULL`` at non-periodic edges."""
        if not 0 <= direction < self.ndims:
            raise MPIError(
                f"direction {direction} out of range for "
                f"{self.ndims}-D grid")
        me = list(self.coords)

        def neighbour(offset: int) -> int:
            c = list(me)
            c[direction] += offset
            extent = self.dims[direction]
            if self.periods[direction]:
                c[direction] %= extent
            elif not 0 <= c[direction] < extent:
                return PROC_NULL
            return self.rank_of(c)

        return neighbour(-disp), neighbour(disp)


def Cart_create(comm: Comm, dims: Sequence[int],
                periods: Sequence[bool] | None = None) -> CartComm:
    """Attach a Cartesian view to a communicator."""
    return CartComm(comm, dims, periods)
