"""One-sided communication: RMA windows (``MPI_Win``).

Supports the paper's ``TARGET_COMM_MPI_1SIDE`` translation: ``MPI_Put``
into a window plus fence (active-target) or lock/unlock (passive-target)
synchronization.

Modelling notes: a put's payload is written into the target memory at
call time, but its *completion time* (when the data is guaranteed
visible) is ``post + wire_time``; synchronization calls advance the
clock to cover all pending completions. Programs that read window
memory without an intervening synchronization would observe data
"early" — exactly the class of race that is erroneous under the MPI RMA
memory model, so correct programs cannot tell the difference.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import MPIError
from repro.mpi.comm import Comm
from repro.netmodel.base import MPI_1SIDED
from repro.sim.sync import Rendezvous


class Win:
    """An RMA window over one array per member rank.

    Create collectively with :meth:`create`; every member passes its
    local exposure array (same dtype; sizes may differ, as in MPI).
    """

    _SERVICE_KEY = "mpi_rma_windows"

    def __init__(self, comm: Comm, shared: dict[str, Any], wid: int):
        self.comm = comm
        self._shared = shared
        self.wid = wid
        self._lock_target: int | None = None
        self._lock_pending: list[float] = []
        # PSCW state (generalized active target).
        self._access_group: list[int] | None = None
        self._access_pending: dict[int, list[float]] = {}
        self._exposure_group: list[int] | None = None

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, comm: Comm, local: np.ndarray) -> "Win":
        """Collective window creation exposing ``local``."""
        if not isinstance(local, np.ndarray) or not local.flags.c_contiguous:
            raise MPIError("window memory must be a C-contiguous numpy array")
        engine = comm.env.engine
        registry = engine.services.setdefault(cls._SERVICE_KEY, {})
        # One shared record per (group, per-rank creation sequence).
        seq_key = ("winseq", comm.group.gid, comm.env.rank)
        seq = registry.get(seq_key, 0)
        registry[seq_key] = seq + 1
        key = ("win", comm.group.gid, seq)
        shared = registry.get(key)
        if shared is None:
            shared = {
                "memory": {},          # global rank -> exposure array
                "pending": [],         # completion times, current epoch
                "epoch_release": {},   # epoch -> release time
                "bar": Rendezvous(comm.group.members,
                                  cost_fn=comm.world.model.barrier_cost,
                                  name=f"win-fence-{key}"),
                "epoch_of": {},        # global rank -> local epoch counter
            }
            registry[key] = shared
        shared["memory"][comm.env.rank] = local
        win = cls(comm, shared, wid=seq)
        # Window creation is collective and synchronizing.
        shared["bar"].join(comm.env)
        return win

    # ------------------------------------------------------------------

    def _target_memory(self, target_rank: int) -> np.ndarray:
        g = self.comm.group.global_rank(target_rank)
        try:
            return self._shared["memory"][g]
        except KeyError:
            raise MPIError(
                f"rank {target_rank} exposed no memory in window "
                f"{self.wid}") from None

    def Put(self, origin: np.ndarray, target_rank: int,
            target_offset: int = 0) -> None:
        """One-sided put of ``origin`` into the target's window memory.

        ``target_offset`` is in elements of the target array's dtype.
        """
        if not isinstance(origin, np.ndarray):
            raise MPIError("Put origin must be a numpy array")
        mem = self._target_memory(target_rank)
        flat = mem.reshape(-1)
        n = origin.size
        if target_offset < 0 or target_offset + n > flat.size:
            raise MPIError(
                f"Put of {n} elements at offset {target_offset} exceeds "
                f"target window of {flat.size} elements")
        if origin.dtype != mem.dtype:
            raise MPIError(
                f"Put dtype mismatch: origin {origin.dtype}, "
                f"window {mem.dtype}")
        tp = self.comm.world.model.transport(MPI_1SIDED)
        env = self.comm.env
        env.advance(tp.send_overhead(origin.nbytes))
        flat[target_offset:target_offset + n] = origin.reshape(-1)
        completion = env.now + tp.wire_time(origin.nbytes)
        self._shared["pending"].append(completion)
        if self._lock_target is not None:
            self._lock_pending.append(completion)
        if self._access_group is not None:
            if target_rank not in self._access_group:
                raise MPIError(
                    f"Put to rank {target_rank} outside the Start "
                    f"access group {self._access_group}")
            self._access_pending.setdefault(target_rank,
                                            []).append(completion)
        self.comm.world.stats.count_message(MPI_1SIDED, origin.nbytes)
        env.trace("rma.put",
                  target=self.comm.group.global_rank(target_rank),
                  nbytes=origin.nbytes)

    def Get(self, origin: np.ndarray, target_rank: int,
            target_offset: int = 0) -> None:
        """One-sided get from the target's window memory into ``origin``."""
        if not isinstance(origin, np.ndarray) or not origin.flags.writeable:
            raise MPIError("Get origin must be a writeable numpy array")
        mem = self._target_memory(target_rank)
        flat = mem.reshape(-1)
        n = origin.size
        if target_offset < 0 or target_offset + n > flat.size:
            raise MPIError(
                f"Get of {n} elements at offset {target_offset} exceeds "
                f"target window of {flat.size} elements")
        tp = self.comm.world.model.transport(MPI_1SIDED)
        env = self.comm.env
        env.advance(tp.send_overhead(origin.nbytes))
        origin.reshape(-1)[...] = flat[target_offset:target_offset + n]
        # A get is a round trip: request out, payload back.
        completion = env.now + tp.latency(8) + tp.wire_time(origin.nbytes)
        self._shared["pending"].append(completion)
        if self._lock_target is not None:
            self._lock_pending.append(completion)
        self.comm.world.stats.count_message(MPI_1SIDED, origin.nbytes)
        env.trace("rma.get", target=target_rank, nbytes=origin.nbytes)

    # ------------------------------------------------------------------
    # Active-target synchronization

    def Fence(self) -> None:
        """Collective fence: all members' RMA in the closing epoch is
        complete everywhere when this returns."""
        comm, env = self.comm, self.comm.env
        env.advance(comm.world.model.fence_overhead)
        comm.world.stats.count_sync("fence")
        my_epoch = self._shared["epoch_of"].get(env.rank, 0)
        self._shared["epoch_of"][env.rank] = my_epoch + 1
        t = self._shared["bar"].join(env)
        releases = self._shared["epoch_release"]
        if my_epoch not in releases:
            # First member past the barrier settles the epoch: everything
            # posted before the barrier must be visible.
            pending = self._shared["pending"]
            releases[my_epoch] = max([t] + pending)
            self._shared["pending"] = []
        env.advance_to(releases[my_epoch])

    # ------------------------------------------------------------------
    # Generalized active target (PSCW: Post/Start/Complete/Wait)

    def _pscw(self) -> dict:
        return self._shared.setdefault("pscw", {
            "posted": {},            # (target, origin) -> post time
            "start_waiters": {},     # (target, origin) -> waiter
            "completed": {},         # (origin, target) -> flush time
            "wait_waiters": {},      # (origin, target) -> waiter
        })

    def Post(self, origins: list[int]) -> None:
        """Expose this rank's window to the listed origin ranks."""
        if self._exposure_group is not None:
            raise MPIError("window already has an exposure epoch open")
        state = self._pscw()
        env = self.comm.env
        me = self.comm.rank
        self._exposure_group = list(origins)
        for origin in origins:
            key = (me, origin)
            state["posted"][key] = env.now
            waiter = state["start_waiters"].pop(key, None)
            if waiter is not None:
                env.engine.wake(waiter, env.now)
        self.comm.world.stats.count_sync("win_post")

    def Start(self, targets: list[int]) -> None:
        """Open an access epoch to the listed targets; blocks until
        each has posted."""
        if self._access_group is not None:
            raise MPIError("window already has an access epoch open")
        state = self._pscw()
        env = self.comm.env
        me = self.comm.rank
        for target in targets:
            key = (target, me)
            if key not in state["posted"]:
                waiter = env.make_waiter(
                    f"MPI_Win_post by rank {target}")
                state["start_waiters"][key] = waiter
                env.block("rma.start")
            del state["posted"][key]
        self._access_group = list(targets)
        self._access_pending = {}
        self.comm.world.stats.count_sync("win_start")

    def Complete(self) -> None:
        """Close the access epoch: flush this origin's puts per target
        and notify the targets."""
        if self._access_group is None:
            raise MPIError("Complete without a matching Start")
        state = self._pscw()
        env = self.comm.env
        me = self.comm.rank
        env.advance(self.comm.world.model.fence_overhead)
        for target in self._access_group:
            pending = self._access_pending.get(target, [])
            flush = max(pending, default=env.now)
            flush = max(flush, env.now)
            key = (me, target)
            state["completed"][key] = flush
            waiter = state["wait_waiters"].pop(key, None)
            if waiter is not None:
                env.engine.wake(waiter, flush)
        self._access_group = None
        self._access_pending = {}
        self.comm.world.stats.count_sync("win_complete")

    def Wait(self) -> None:
        """Close the exposure epoch: block until every origin in the
        posted group completed; all their RMA is then visible here."""
        if self._exposure_group is None:
            raise MPIError("Wait without a matching Post")
        state = self._pscw()
        env = self.comm.env
        me = self.comm.rank
        for origin in self._exposure_group:
            key = (origin, me)
            t = state["completed"].pop(key, None)
            if t is None:
                waiter = env.make_waiter(
                    f"MPI_Win_complete by rank {origin}")
                state["wait_waiters"][key] = waiter
                env.block("rma.wait")
                del state["completed"][key]
            else:
                env.advance_to(t)
        self._exposure_group = None
        self.comm.world.stats.count_sync("win_wait")

    # ------------------------------------------------------------------
    # Passive-target synchronization

    def Lock(self, target_rank: int) -> None:
        """Begin a passive-target access epoch on one target."""
        if self._lock_target is not None:
            raise MPIError(
                f"window already locked on target {self._lock_target}")
        self._target_memory(target_rank)  # validates the rank
        self._lock_target = target_rank
        self._lock_pending = []

    def Unlock(self, target_rank: int) -> None:
        """End the passive epoch: local+remote completion of its RMA."""
        if self._lock_target != target_rank:
            raise MPIError(
                f"Unlock({target_rank}) without matching Lock "
                f"(locked: {self._lock_target})")
        env = self.comm.env
        env.advance(self.comm.world.model.fence_overhead)
        self.comm.world.stats.count_sync("unlock")
        if self._lock_pending:
            env.advance_to(max(self._lock_pending))
        self._lock_target = None
        self._lock_pending = []
