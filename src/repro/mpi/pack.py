"""``MPI_Pack`` / ``MPI_Unpack`` over contiguous byte buffers.

The original WL-LSMS single-atom-data transfer (paper Listing 4) is a
long sequence of ``MPI_Pack`` calls into one ``MPI_PACKED`` buffer; the
directive translation eliminates them. These functions let the mini-app
transcribe that code path faithfully, charging the machine model's
per-call and per-byte packing costs.

The C signature keeps a cursor (``&position``); here the cursor is the
return value::

    pos = Pack(comm, array, buf, pos)
    ...
    pos = Unpack(comm, buf, pos, out_array)
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIError
from repro.mpi.comm import Comm


def pack_size(nelems: int, datatype) -> int:
    """Upper bound on packed size (``MPI_Pack_size``)."""
    return nelems * datatype.size


def Pack(comm: Comm, inbuf: np.ndarray, outbuf: bytearray,
         position: int) -> int:
    """Append ``inbuf``'s bytes to ``outbuf`` at ``position``.

    Returns the new position. ``outbuf`` must be a pre-sized
    ``bytearray`` (the ``s``-byte staging buffer of Listing 4).
    """
    if not isinstance(inbuf, np.ndarray):
        raise MPIError(f"Pack input must be a numpy array, "
                       f"got {type(inbuf).__name__}")
    if not isinstance(outbuf, bytearray):
        raise MPIError("Pack output must be a bytearray")
    data = np.ascontiguousarray(inbuf).tobytes()
    end = position + len(data)
    if end > len(outbuf):
        raise MPIError(
            f"Pack overflow: position {position} + {len(data)} bytes "
            f"exceeds the {len(outbuf)}-byte buffer")
    outbuf[position:end] = data
    comm.env.advance(comm.world.model.pack_cost(len(data)))
    comm.world.stats.count_datatype("pack")
    return end


def Unpack(comm: Comm, inbuf: bytes | bytearray, position: int,
           outbuf: np.ndarray) -> int:
    """Extract ``outbuf.nbytes`` bytes at ``position`` into ``outbuf``.

    Returns the new position.
    """
    if not isinstance(outbuf, np.ndarray) or not outbuf.flags.c_contiguous \
            or not outbuf.flags.writeable:
        raise MPIError("Unpack output must be a writeable C-contiguous "
                       "numpy array")
    end = position + outbuf.nbytes
    if end > len(inbuf):
        raise MPIError(
            f"Unpack underflow: position {position} + {outbuf.nbytes} "
            f"bytes exceeds the {len(inbuf)}-byte buffer")
    chunk = np.frombuffer(bytes(inbuf[position:end]), dtype=outbuf.dtype)
    outbuf[...] = chunk.reshape(outbuf.shape)
    comm.env.advance(comm.world.model.pack_cost(outbuf.nbytes))
    comm.world.stats.count_datatype("unpack")
    return end
