"""MPI datatype objects: basic types and derived structs.

Basic types wrap the :mod:`repro.dtypes` primitives. Derived types are
created with :func:`Type_create_struct` (taking the same three parallel
arrays real MPI takes) and must be committed before use in
communication; creation and commit charge the machine model's datatype
costs, which is exactly the overhead the paper's directive translation
amortizes by caching one committed struct per function scope.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.dtypes.composite import CompositeType, StructTriples
from repro.dtypes.primitives import PrimitiveType, from_numpy_dtype
from repro.dtypes import primitives as _prims
from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm


class Datatype:
    """A basic or derived MPI datatype."""

    def __init__(self, name: str, size: int, *,
                 primitive: PrimitiveType | None = None,
                 triples: StructTriples | None = None,
                 committed: bool = True):
        if size < 0:
            raise MPIError(f"datatype size must be >= 0, got {size}")
        self.name = name
        #: Extent of one element in bytes.
        self.size = size
        #: The underlying primitive, for basic types.
        self.primitive = primitive
        #: The flattened struct description, for derived types.
        self.triples = triples
        self.committed = committed
        self.freed = False

    @property
    def is_derived(self) -> bool:
        """True for struct (non-basic) types."""
        return self.triples is not None

    def Commit(self, comm: "Comm") -> "Datatype":
        """Commit a derived type, charging the model's commit cost."""
        self._check_alive()
        if not self.is_derived:
            return self  # committing a basic type is a no-op, as in MPI
        if not self.committed:
            comm.env.advance(comm.world.model.struct_commit)
            comm.world.stats.count_datatype("struct_committed")
            self.committed = True
        return self

    def Free(self) -> None:
        """Mark a derived type freed; later communication use is an error."""
        if not self.is_derived:
            raise MPIError(f"cannot free basic type {self.name}")
        self.freed = True

    def check_usable(self) -> None:
        """Raise unless this type may appear in a communication call."""
        self._check_alive()
        if self.is_derived and not self.committed:
            raise MPIError(
                f"derived datatype {self.name!r} used before Commit")

    def _check_alive(self) -> None:
        if self.freed:
            raise MPIError(f"datatype {self.name!r} was freed")

    def __repr__(self) -> str:
        kind = "derived" if self.is_derived else "basic"
        return f"<Datatype {self.name} {kind} size={self.size}>"


def _basic(p: PrimitiveType) -> Datatype:
    return Datatype(p.mpi_name, p.size, primitive=p)


CHAR = _basic(_prims.CHAR)
INT = _basic(_prims.INT)
LONG = _basic(_prims.LONG)
FLOAT = _basic(_prims.FLOAT)
DOUBLE = _basic(_prims.DOUBLE)
#: Raw bytes (``MPI_BYTE``).
BYTE = Datatype("MPI_BYTE", 1, primitive=_prims.UNSIGNED_CHAR)
#: The type of `Pack`ed buffers (``MPI_PACKED``).
PACKED = Datatype("MPI_PACKED", 1, primitive=_prims.UNSIGNED_CHAR)

_BASIC_BY_NAME = {t.name: t for t in (CHAR, INT, LONG, FLOAT, DOUBLE, BYTE,
                                      PACKED)}


def basic(name: str) -> Datatype:
    """Look up a basic type by MPI name (``"MPI_DOUBLE"``)."""
    try:
        return _BASIC_BY_NAME[name]
    except KeyError:
        raise MPIError(f"unknown basic datatype {name!r}") from None


def type_from_buffer(buf: np.ndarray) -> Datatype:
    """Infer the MPI datatype of a numpy buffer.

    Primitive dtypes map to the corresponding basic type; structured
    dtypes get an anonymous committed derived type sized to the dtype
    (this is the automatic inference path — explicit
    :func:`Type_create_struct` is what the original hand-written code
    must do).
    """
    if buf.dtype.fields is None:
        return _basic(from_numpy_dtype(buf.dtype))
    return Datatype(f"struct<{buf.dtype}>", buf.dtype.itemsize,
                    triples=None, committed=True)


def Type_create_struct(comm: "Comm",
                       blocklengths: Sequence[int],
                       displacements: Sequence[int],
                       types: Sequence[Datatype]) -> Datatype:
    """Create an (uncommitted) MPI struct type from parallel arrays.

    Mirrors ``MPI_Type_create_struct``; charges the model's creation
    cost. The resulting extent is ``max(disp + block * size)`` rounded
    up to the widest member alignment (C struct extent).
    """
    if not (len(blocklengths) == len(displacements) == len(types)):
        raise MPIError(
            "blocklengths, displacements and types must have equal length "
            f"(got {len(blocklengths)}, {len(displacements)}, {len(types)})")
    if len(types) == 0:
        raise MPIError("struct type needs at least one member")
    prims = []
    for t in types:
        if t.is_derived:
            raise MPIError(
                "nested derived types are not supported (the paper "
                "prohibits recursively nested composite types)")
        prims.append(t.primitive)
    for b in blocklengths:
        if b < 1:
            raise MPIError(f"blocklength must be >= 1, got {b}")
    for d in displacements:
        if d < 0:
            raise MPIError(f"displacement must be >= 0, got {d}")
    end = max(d + b * p.size
              for d, b, p in zip(displacements, blocklengths, prims))
    align = max(p.alignment for p in prims)
    extent = (end + align - 1) // align * align
    triples = StructTriples(tuple(displacements), tuple(blocklengths),
                            tuple(prims))
    model = comm.world.model
    comm.env.advance(model.struct_create_base
                     + model.struct_create_per_field * len(types))
    comm.world.stats.count_datatype("struct_created")
    return Datatype(f"struct[{len(types)}]", extent, triples=triples,
                    committed=False)


def type_for_composite(comm: "Comm", ctype: CompositeType) -> Datatype:
    """Create an uncommitted MPI struct type from a composite type.

    This is the directive compiler's path: the composite's flattened
    triples become the struct arrays (paper Section III-A).
    """
    t = ctype.triples()
    dt = Type_create_struct(
        comm,
        blocklengths=list(t.blocklengths),
        displacements=list(t.displacements),
        types=[_basic(p) for p in t.mpi_types],
    )
    dt.name = f"struct {ctype.name}"
    # The committed extent must equal the composite's C size so arrays
    # of the struct have the right stride.
    dt.size = ctype.size
    return dt
