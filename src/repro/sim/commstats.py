"""Communication-pattern analysis over run traces.

The paper motivates directives partly as fuel for "automated analysis"
of an application's communication. This module provides the dynamic
side of that story: given a traced run, build the communication matrix
(who sent how much to whom), message-size histograms, and per-phase
message counts — the quantities the characterization studies the paper
cites ([1] Vetter & Mueller, [2] Kim & Lilja) report for real codes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.sim.tracing import Trace

#: Trace kinds that represent one initiated transfer, with the field
#: carrying the destination rank.
_SEND_KINDS = {
    "mpi.send_post": "dest",
    "shmem.put": "pe",
    "dir.mpi1s.put": "dest",
    "rma.put": "target",
}


@dataclass
class CommMatrix:
    """Aggregated communication of one traced run."""

    nprocs: int
    #: messages[src][dst] — message counts.
    messages: np.ndarray = field(default=None)
    #: volume[src][dst] — payload bytes.
    volume: np.ndarray = field(default=None)
    #: Histogram of message sizes (bucketed by power of two).
    size_histogram: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if self.messages is None:
            self.messages = np.zeros((self.nprocs, self.nprocs),
                                     dtype=np.int64)
        if self.volume is None:
            self.volume = np.zeros((self.nprocs, self.nprocs),
                                   dtype=np.int64)

    # -- queries -----------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """All messages in the matrix."""
        return int(self.messages.sum())

    @property
    def total_bytes(self) -> int:
        """All payload bytes in the matrix."""
        return int(self.volume.sum())

    def hotspots(self, k: int = 3) -> list[tuple[int, int, int]]:
        """The ``k`` heaviest (src, dst, bytes) pairs."""
        flat = self.volume.reshape(-1)
        order = np.argsort(flat)[::-1][:k]
        out = []
        for idx in order:
            if flat[idx] == 0:
                break
            out.append((int(idx) // self.nprocs,
                        int(idx) % self.nprocs, int(flat[idx])))
        return out

    def degree(self, rank: int) -> tuple[int, int]:
        """(number of distinct destinations, distinct sources)."""
        return (int((self.messages[rank] > 0).sum()),
                int((self.messages[:, rank] > 0).sum()))

    def small_message_fraction(self, threshold: int = 256) -> float:
        """Fraction of messages at or under ``threshold`` bytes — the
        regime where the paper's SHMEM translation wins most."""
        total = sum(self.size_histogram.values())
        if total == 0:
            return 0.0
        small = sum(c for b, c in self.size_histogram.items()
                    if b <= threshold)
        return small / total

    def render(self) -> str:
        """Human-readable summary."""
        lines = [f"communication matrix ({self.nprocs} ranks): "
                 f"{self.total_messages} messages, "
                 f"{self.total_bytes} bytes"]
        for src, dst, nbytes in self.hotspots():
            lines.append(f"  hotspot: {src} -> {dst}: {nbytes} bytes "
                         f"({int(self.messages[src, dst])} messages)")
        lines.append(f"  small-message (<=256B) fraction: "
                     f"{self.small_message_fraction():.0%}")
        return "\n".join(lines)


def _bucket(nbytes: int) -> int:
    """Power-of-two size bucket (8, 16, ..., capped below at 8)."""
    b = 8
    while b < nbytes:
        b <<= 1
    return b


def comm_matrix(trace: Trace, nprocs: int) -> CommMatrix:
    """Build the communication matrix from a traced run."""
    m = CommMatrix(nprocs)
    for event in trace:
        dest_field = _SEND_KINDS.get(event.kind)
        if dest_field is None:
            continue
        dst = event.fields.get(dest_field)
        nbytes = event.fields.get("nbytes", 0)
        if dst is None:
            continue
        m.messages[event.rank, dst] += 1
        m.volume[event.rank, dst] += nbytes
        m.size_histogram[_bucket(nbytes)] += 1
    return m
