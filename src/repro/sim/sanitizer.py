"""Byte-interval access sanitizer (the dynamic half of CI04x).

The static race pass (:mod:`repro.core.analysis.races`) *proves* the
absence of buffer-aliasing races over the directive IR; this module
*observes* the same property at run time. Armed with
``Engine(..., sanitize=True)``, the directive backends record every
communication access as a byte interval on a concrete array — the read
of a posted send buffer, the delivery write of a receive or put — and
raw compute writes are recorded by the program simulator. Each access
carries a vector-clock snapshot; two accesses to overlapping bytes, at
least one of them a write, with no happens-before edge between them
raise a structured :class:`repro.errors.RaceError` (TSan's FastTrack
discipline, specialized to the directive runtime's sync shapes).

Happens-before is built from the synchronization the translation
actually executes, so a weakened sync plan (see
:func:`repro.faults.fuzz.weaken_pending_sync`) weakens the ordering the
sanitizer sees — a window whose guaranteeing sync is dropped simply
never closes, and later conflicting accesses are flagged:

* a *window* opens when communication is posted and closes at the sync
  call that guarantees it (``Waitall``, flush, quiet) — the interval
  during which the runtime may touch the bytes;
* *point* accesses (modeled compute writes, immediate put reads) open
  and close at one instant;
* cross-rank edges come from publish/acquire pairs at the exposure,
  post and notify handshakes of the backends, and from the all-member
  join of :class:`repro.sim.sync.Rendezvous` (barriers).

Ordering rule: access ``a`` happens-before access ``b`` iff ``a`` is
closed and ``b``'s snapshot covers the closing rank's epoch at close
(``b.vc[a.close_rank] >= a.close_epoch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import RaceError

__all__ = ["AccessSanitizer", "Access"]


def _address_range(arr: np.ndarray, lo: int, hi: int) -> tuple[int, int]:
    """Absolute byte addresses of ``arr``'s ``[lo, hi)`` byte range."""
    base = int(arr.__array_interface__["data"][0])
    return base + lo, base + hi


@dataclass
class Access:
    """One recorded byte-interval access."""

    #: Absolute byte addresses (half-open).
    lo: int
    hi: int
    #: ``"read"`` or ``"write"``.
    kind: str
    #: Rank that performs the access.
    rank: int
    #: Human-readable description used in race reports.
    label: str
    #: Buffer-relative byte offsets, for the evidence text.
    rel_lo: int
    rel_hi: int
    #: The accessor's vector-clock snapshot at open time.
    vc: list[int]
    #: Strong reference to the base array: while a record is live its
    #: address range cannot be recycled by a new allocation, so
    #: absolute-address overlap is never a false aliasing.
    array: Any = None
    #: Close state: a window closes at its guaranteeing sync; a point
    #: access is born closed. An open window conflicts with everything
    #: concurrent — including all of the future.
    closed: bool = False
    close_rank: int = -1
    close_epoch: int = 0

    def overlaps(self, other: "Access") -> bool:
        """True when the two absolute byte intervals intersect."""
        return self.lo < other.hi and other.lo < self.hi


@dataclass
class _Published:
    """A published vector-clock snapshot awaiting acquisition."""

    vc: list[int] = field(default_factory=list)


class AccessSanitizer:
    """Engine-wide dynamic race detector over byte-interval accesses.

    One instance per :class:`repro.sim.Engine` run (created by
    ``Engine(..., sanitize=True)``). All methods run on simulated rank
    threads; the engine's one-rank-at-a-time discipline makes the
    shared state race-free on the host side.
    """

    def __init__(self, engine: Any) -> None:
        self.engine = engine
        self.nprocs: int = engine.nprocs
        #: Collect mode: when True, :meth:`_race` records the
        #: :class:`~repro.errors.RaceError` on :attr:`races` and the
        #: run continues — the differential oracle wants every race in
        #: the schedule, not an abort at the first one.
        self.collect = False
        #: Race reports accumulated in collect mode, in detection order.
        self.races: list[RaceError] = []
        #: Per-rank vector clocks; ``vc[r][r]`` is rank r's own epoch.
        self._vc: dict[int, list[int]] = {}
        #: Every recorded access, open windows included.
        self.records: list[Access] = []
        #: Open windows by key (handle identity). A key collision after
        #: a leaked handle is garbage-collected only drops the *key*;
        #: the stale record stays in :attr:`records`, open forever —
        #: exactly the semantics of a sync that never ran.
        self.windows: dict[Any, Access] = {}
        #: Published snapshots keyed by handshake identity.
        self._published: dict[Any, list[int]] = {}

    # -- vector clocks -----------------------------------------------------

    def _clock(self, rank: int) -> list[int]:
        vc = self._vc.get(rank)
        if vc is None:
            vc = [0] * self.nprocs
            self._vc[rank] = vc
        return vc

    def _tick(self, rank: int) -> int:
        vc = self._clock(rank)
        vc[rank] += 1
        return vc[rank]

    def publish(self, key: Any, rank: int) -> None:
        """Record ``rank``'s snapshot for a later :meth:`acquire`."""
        self._published[key] = list(self._clock(rank))

    def acquire(self, key: Any, rank: int) -> None:
        """Join a published snapshot into ``rank``'s clock."""
        snap = self._published.pop(key, None)
        if snap is None:
            return
        vc = self._clock(rank)
        for i, v in enumerate(snap):
            if v > vc[i]:
                vc[i] = v

    def barrier_join(self, members: Any) -> None:
        """All-member clock join (a barrier orders everything across it)."""
        ranks = sorted(members)
        joined = [0] * self.nprocs
        for r in ranks:
            for i, v in enumerate(self._clock(r)):
                if v > joined[i]:
                    joined[i] = v
        for r in ranks:
            vc = list(joined)
            vc[r] += 1
            self._vc[r] = vc

    # -- recording ---------------------------------------------------------

    def read(self, rank: int, arr: np.ndarray, lo: int, hi: int,
             label: str) -> None:
        """Record one instantaneous read of ``arr``'s bytes [lo, hi)."""
        self._point(rank, arr, lo, hi, "read", label)

    def write(self, rank: int, arr: np.ndarray, lo: int, hi: int,
              label: str) -> None:
        """Record one instantaneous write of ``arr``'s bytes [lo, hi)."""
        self._point(rank, arr, lo, hi, "write", label)

    def _point(self, rank: int, arr: np.ndarray, lo: int, hi: int,
               kind: str, label: str) -> None:
        epoch = self._tick(rank)
        alo, ahi = _address_range(arr, lo, hi)
        rec = Access(lo=alo, hi=ahi, kind=kind, rank=rank, label=label,
                     rel_lo=lo, rel_hi=hi, vc=list(self._clock(rank)),
                     array=arr, closed=True, close_rank=rank,
                     close_epoch=epoch)
        self._insert(rec)

    def open_window(self, key: Any, rank: int, arr: np.ndarray,
                    lo: int, hi: int, kind: str, label: str) -> None:
        """Open an access window that a later sync will close."""
        self._tick(rank)
        alo, ahi = _address_range(arr, lo, hi)
        rec = Access(lo=alo, hi=ahi, kind=kind, rank=rank, label=label,
                     rel_lo=lo, rel_hi=hi, vc=list(self._clock(rank)),
                     array=arr)
        self.windows[key] = rec
        self._insert(rec)

    def close_window(self, key: Any, rank: int) -> None:
        """Close a window at ``rank``'s current sync point (no-op when
        the key is unknown — e.g. a window a weakened sync dropped)."""
        rec = self.windows.pop(key, None)
        if rec is None:
            return
        rec.closed = True
        rec.close_rank = rank
        rec.close_epoch = self._tick(rank)

    # -- the check ---------------------------------------------------------

    @staticmethod
    def _ordered(a: Access, b: Access) -> bool:
        """True when ``a`` happens-before ``b``."""
        return a.closed and b.vc[a.close_rank] >= a.close_epoch

    def _insert(self, rec: Access) -> None:
        stats = self.engine.stats
        for other in self.records:
            stats.sanitizer_checks += 1
            if not rec.overlaps(other):
                continue
            if rec.kind == "read" and other.kind == "read":
                continue
            if self._ordered(other, rec) or self._ordered(rec, other):
                continue
            self._race(other, rec)
        self.records.append(rec)

    def _race(self, first: Access, second: Access) -> None:
        kind = ("write-write"
                if first.kind == "write" and second.kind == "write"
                else "read-write")
        olo = max(first.lo, second.lo)
        ohi = min(first.hi, second.hi)
        error = RaceError(
            f"access sanitizer: {kind} race — {second.label} (rank "
            f"{second.rank}, {second.kind} of bytes [{second.rel_lo}, "
            f"{second.rel_hi})) is unordered against {first.label} "
            f"(rank {first.rank}, {first.kind} of bytes "
            f"[{first.rel_lo}, {first.rel_hi})); {ohi - olo} byte(s) "
            f"overlap",
            kind=kind, ranks=(first.rank, second.rank),
            labels=(first.label, second.label),
            overlap_nbytes=ohi - olo)
        if self.collect:
            self.races.append(error)
            return
        raise error
