"""The cooperative virtual-time scheduler.

One host thread is created per simulated rank, but *exactly one* thread
ever runs at a time: control is handed as a baton to the runnable rank
with the smallest ``(virtual time, rank)``. Host threads are used purely
as resumable stacks (coroutine carriers); there is no true concurrency,
which is what makes the simulation deterministic.

Scheduling machinery (this module's hot path):

* **Ready min-heap** — runnable ranks live in a binary heap keyed by
  ``(virtual time, rank)``, maintained incrementally by
  :meth:`Engine.wake` / :meth:`Engine.yield_` / :meth:`Engine.block`.
  Selecting the next rank is ``O(log P)`` instead of the ``O(P)``
  ready-list rebuild a linear scan would cost per dispatch.
* **Run-to-block batching** — a rank keeps its OS thread across any
  number of yields while it remains the earliest runnable rank (the
  *fast yield* path), and when it genuinely stops (blocks, yields
  behind an earlier rank, or finishes) it hands the baton *directly* to
  the next runnable rank without bouncing through the scheduler thread.
  A scheduled slice therefore costs one OS-thread switch, not two; the
  scheduler thread only wakes when no rank is runnable (run end,
  deadlock, abort).

Virtual time is per-rank. It advances only through
:meth:`repro.sim.process.Env.compute`/:meth:`~repro.sim.process.Env.advance`
(explicitly modelled work) and through wake-ups at message-completion
times computed by the communication libraries' cost models. Causality is
preserved because every wake time is ``max(waiter's clock, cause's
completion time)`` — clocks are monotone per rank.

The pre-heap seed scheduler is preserved as
:class:`repro.sim.legacy.SeedEngine`; determinism regression tests and
``benchmarks/bench_engine_scaling.py`` run both and assert identical
virtual-time results.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time as _time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    RankFailedError,
    SimAbortError,
    SimDeadlockError,
    SimHangError,
    SimProcessError,
    SimStateError,
)
from repro.sim.process import Env
from repro.sim.stats import SimStats
from repro.sim.tracing import Trace


class ProcState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    #: Killed by fault injection; the rank's thread is parked and will
    #: be unwound at shutdown, and its rank is in ``Engine.failed_ranks``.
    CRASHED = "crashed"


class _Poisoned(BaseException):
    """Raised inside a simulated rank's thread to unwind it during abort.

    Derives from ``BaseException`` so user ``except Exception`` handlers
    cannot swallow it.
    """


class Waiter:
    """One pending block by one rank.

    A library that needs to block a rank creates a ``Waiter``, registers
    it wherever the waking party will find it (e.g. a message queue), and
    calls :meth:`Engine.block`. The waking party later calls
    :meth:`Engine.wake` with the virtual completion time and an optional
    payload, which the blocked rank receives as ``block()``'s return.
    """

    __slots__ = ("proc", "reason", "woken", "wake_time", "payload")

    def __init__(self, proc: "Proc", reason: str):
        self.proc = proc
        self.reason = reason
        self.woken = False
        self.wake_time: float | None = None
        self.payload: Any = None

    def __repr__(self) -> str:
        state = "woken" if self.woken else "pending"
        return f"<Waiter rank={self.proc.rank} reason={self.reason!r} {state}>"


class Proc:
    """Scheduler-side record of one simulated rank."""

    def __init__(self, engine: "Engine", rank: int,
                 fn: Callable[[Env], Any]):
        self.engine = engine
        self.rank = rank
        self.fn = fn
        self.now: float = 0.0
        self.state = ProcState.NEW
        #: The baton is a pre-acquired ``Lock`` used as a binary
        #: semaphore: ``_wait_baton`` blocks in ``acquire()`` until the
        #: scheduling party ``release()``s it. A raw lock is markedly
        #: cheaper per handoff than ``threading.Event`` (no Condition
        #: machinery), which matters at thousands of slices per run.
        self.baton = threading.Lock()
        self.baton.acquire()
        self.env = Env(engine, self)
        self.waiter: Waiter | None = None
        self.error: BaseException | None = None
        self.result: Any = None
        self.thread = threading.Thread(
            target=self._thread_main, name=f"sim-rank-{rank}", daemon=True
        )

    # Runs on the rank's own host thread.
    def _thread_main(self) -> None:
        try:
            self._wait_baton()
            self.result = self.fn(self.env)
            self.state = ProcState.DONE
        except _Poisoned:
            # Shutdown unwind: the scheduler is not waiting on us and the
            # baton chain must not continue. A crashed rank keeps its
            # CRASHED state (it is a modelled fault, not a host failure).
            if self.state is not ProcState.CRASHED:
                self.state = ProcState.FAILED
            return
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            self.error = exc
            self.state = ProcState.FAILED
        self.engine._on_proc_exit(self)

    def _wait_baton(self) -> None:
        self.baton.acquire()
        if self.engine._poison:
            raise _Poisoned()

    def __repr__(self) -> str:
        return f"<Proc rank={self.rank} t={self.now:.9f} {self.state.value}>"


@dataclass(frozen=True)
class FailureEvent:
    """One rank failure, as structured data for reports and recovery."""

    #: The rank that was killed.
    rank: int
    #: Virtual time it was killed.
    time: float
    #: Rank that detected the failure (eager detection), or ``None``
    #: when the engine found it at quiescence / run end.
    detected_by: int | None = None

    def __str__(self) -> str:
        by = ("engine" if self.detected_by is None
              else f"rank {self.detected_by}")
        return (f"rank {self.rank} failed at t={self.time:.9f} "
                f"(detected by {by})")


@dataclass
class RunResult:
    """Outcome of one simulated SPMD run."""

    nprocs: int
    #: Per-rank virtual finish times.
    finish_times: list[float]
    #: Per-rank return values of the SPMD callable.
    values: list[Any]
    stats: SimStats
    trace: Trace | None = None
    #: Ranks killed by fault injection. Non-empty only for a *degraded*
    #: run: every surviving rank finished without touching a dead peer.
    #: Crashed ranks contribute their crash time to ``finish_times`` and
    #: ``None`` to ``values``.
    failed_ranks: tuple[int, ...] = ()
    #: Span profile of the run (``Engine(profile=True)``); feed it to
    #: :mod:`repro.profiling` for metrics, Chrome export and
    #: critical-path extraction.
    profile: Any = None
    #: Structured record of every injected rank failure (degraded runs).
    failures: tuple[FailureEvent, ...] = ()
    #: :class:`repro.recovery.RecoveryStats` when the run was produced
    #: by :func:`repro.recovery.run_with_recovery`; ``None`` otherwise.
    recovery: Any = None

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished."""
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def degraded(self) -> bool:
        """True when the run completed despite losing ranks."""
        return bool(self.failed_ranks)

    def failure_report(self) -> str:
        """Human-readable account of a degraded run's casualties."""
        if not self.failures:
            return "no rank failures"
        lines = [str(ev) for ev in self.failures]
        lines.append(f"{self.nprocs - len(self.failures)} of "
                     f"{self.nprocs} ranks finished")
        return "\n".join(lines)

    def __repr__(self) -> str:
        degraded = (f" failed_ranks={list(self.failed_ranks)}"
                    if self.failed_ranks else "")
        return (f"<RunResult nprocs={self.nprocs} "
                f"makespan={self.makespan:.9f}{degraded}>")


class Engine:
    """Runs SPMD callables over ``nprocs`` simulated ranks.

    Parameters
    ----------
    nprocs:
        Number of simulated ranks.
    trace:
        If true, collect a :class:`~repro.sim.tracing.Trace` of engine and
        library events (bounded by ``trace_maxlen``).
    max_time:
        Safety limit on virtual time; a rank advancing past it aborts the
        run (guards against accidental infinite loops in modelled time).
    faults:
        Optional :class:`repro.faults.FaultPlan` (or a pre-compiled
        injector) of adversarial perturbations — message jitter,
        reordering, drops, rank stalls and crashes — consulted at
        message-post and dispatch time. ``None`` (default) runs the
        benign schedule.
    watchdog:
        Optional :class:`repro.faults.Watchdog` configuration. When set,
        wall-clock hangs and virtual-time stalls abort the run with a
        :class:`repro.errors.SimHangError` carrying a per-rank progress
        report instead of hanging silently.
    profile:
        If true, collect a :class:`repro.profiling.Profile` of span
        events (compute, post, sync, message delivery, barriers,
        faults); available as ``RunResult.profile`` after the run.
    recovery:
        Optional :class:`repro.recovery.RecoveryContext` binding this
        run to the fault-tolerance runtime: per-target bounded-retry
        policies for dropped messages, deadline-based failure
        detection, and coordinated checkpointing at sync boundaries.
    sanitize:
        If true, arm the byte-interval access sanitizer
        (:class:`repro.sim.sanitizer.AccessSanitizer`): the directive
        backends record communication accesses with happens-before from
        the executed synchronization, and two unordered conflicting
        accesses abort the run with :class:`repro.errors.RaceError` —
        the dynamic cross-check of the static CI04x race findings.
    """

    def __init__(self, nprocs: int, *, trace: bool = False,
                 trace_maxlen: int | None = 200_000,
                 max_time: float | None = None,
                 faults: Any = None,
                 watchdog: Any = None,
                 profile: bool = False,
                 recovery: Any = None,
                 sanitize: bool = False):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.max_time = max_time
        #: The bound fault injector (``None`` on the benign schedule).
        #: Communication libraries consult ``faults.message_delay`` and
        #: ``faults.deferred_delivery``; the engine itself consults
        #: ``faults.on_dispatch``.
        self.faults = faults.compile() if hasattr(faults, "compile") else faults
        self.watchdog = watchdog
        #: The bound recovery context (``None`` = no fault tolerance).
        self.recovery = recovery
        #: Ranks killed by fault injection, in crash order.
        self.failed_ranks: set[int] = set()
        #: Virtual crash time per killed rank.
        self.crash_times: dict[int, float] = {}
        self.stats = SimStats()
        self.trace: Trace | None = Trace(trace_maxlen) if trace else None
        if profile:
            from repro.profiling.spans import Profile
            self.profile: Any = Profile()
        else:
            self.profile = None
        if sanitize:
            from repro.sim.sanitizer import AccessSanitizer
            #: The armed access sanitizer, consulted by the directive
            #: backends (``None`` = not sanitizing).
            self.sanitizer: Any = AccessSanitizer(self)
        else:
            self.sanitizer = None
        self.procs: list[Proc] = []
        #: Runnable ranks as a ``(virtual time, rank)`` min-heap. Keys are
        #: stable while a proc stays READY (only a RUNNING rank can move
        #: its own clock, and ``wake`` refuses non-BLOCKED targets), so
        #: every proc appears at most once and entries only go stale when
        #: a run is abandoned mid-flight.
        self._ready_heap: list[tuple[float, int]] = []
        self._sched_evt = threading.Event()
        self._poison = False
        self._running = False
        self._current: Proc | None = None
        #: Engine-level abort raised on a rank's thread during a direct
        #: handoff (e.g. the max_time guard); surfaced by the scheduler.
        self._abort_error: SimAbortError | None = None
        #: Consecutive scheduling events without virtual-time progress
        #: (watchdog stall detector; reset by wake()/advance()).
        self._stall_events = 0
        #: True once the wall-clock watchdog tripped: rank threads may be
        #: genuinely hung, so shutdown must not wait long for them.
        self._wall_hang = False
        #: True once an abort (any :class:`SimAbortError` or user error)
        #: is in flight; disarms both watchdog checks so a
        #: ``SimHangError`` can never race or mask the real verdict.
        self._aborting = False
        #: Free slot for cross-cutting services (communicators, symmetric
        #: heaps) to stash per-world state, keyed by service name.
        self.services: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Public API

    def run(self, fn: Callable[[Env], Any] | Sequence[Callable[[Env], Any]],
            ) -> RunResult:
        """Execute ``fn`` once per rank and return the collected result.

        ``fn`` may be a single callable (classic SPMD: every rank runs the
        same program, branching on ``env.rank``) or a sequence of exactly
        ``nprocs`` callables (MPMD).
        """
        if self._running:
            raise SimStateError("engine is already running")
        if callable(fn):
            fns = [fn] * self.nprocs
        else:
            fns = list(fn)
            if len(fns) != self.nprocs:
                raise ValueError(
                    f"got {len(fns)} callables for {self.nprocs} ranks")
        self.procs = [Proc(self, r, fns[r]) for r in range(self.nprocs)]
        self._running = True
        self._ready_heap = []
        self._abort_error = None
        self._stall_events = 0
        self._wall_hang = False
        self._aborting = False
        self.failed_ranks = set()
        self.crash_times = {}
        if self.faults is not None:
            self.faults.bind(self)
        if self.recovery is not None:
            self.recovery.bind(self)
        t0 = _time.perf_counter()
        try:
            for p in self.procs:
                self._make_ready(p)
                p.thread.start()
            self._schedule_loop()
        finally:
            self.stats.dispatch_wall_seconds += _time.perf_counter() - t0
            self._shutdown_threads()
            self._running = False
        failed = [p for p in self.procs if p.error is not None]
        if failed:
            first = min(failed, key=lambda p: p.rank)
            if isinstance(first.error, SimAbortError):
                # Engine-level abort (deadlock shape, watchdog, rank
                # failure), not a user bug: surface it unwrapped.
                raise first.error
            raise SimProcessError(first.rank, first.error) from first.error
        finish_times = [p.now for p in self.procs]
        if self.profile is not None:
            self.profile.finish(finish_times)
        return RunResult(
            nprocs=self.nprocs,
            finish_times=finish_times,
            values=[p.result for p in self.procs],
            stats=self.stats,
            trace=self.trace,
            failed_ranks=tuple(sorted(self.failed_ranks)),
            profile=self.profile,
            failures=self.failure_events(),
        )

    def failure_events(self) -> tuple[FailureEvent, ...]:
        """Structured record of every injected crash, in rank order."""
        return tuple(FailureEvent(rank=r, time=self.crash_times.get(r, 0.0))
                     for r in sorted(self.failed_ranks))

    # ------------------------------------------------------------------
    # Primitives used by Env and the communication libraries.
    # All of these run on the *current rank's* host thread; single-threaded
    # execution makes the shared-state mutation safe without locks.

    @property
    def current(self) -> Proc:
        """The proc whose thread is executing right now."""
        if self._current is None:
            raise SimStateError("no simulated rank is currently running")
        return self._current

    def block(self, proc: Proc, reason: str) -> Waiter:
        """Block ``proc`` until some party wakes its waiter; returns it.

        Must be called from ``proc``'s own thread. The waiter should have
        been registered with the waking party *before* calling this —
        but because only one rank runs at a time, registering it after
        creation and before this call is race-free either way.
        """
        if proc is not self._current:
            raise SimStateError("a rank may only block itself")
        waiter = proc.waiter
        if waiter is None or waiter.woken:
            raise SimStateError("block() requires a fresh waiter; "
                                "use make_waiter() first")
        proc.state = ProcState.BLOCKED
        self._trace(proc, "block", reason=reason)
        self._switch_from(proc)
        # We only get here after wake() marked the waiter woken and the
        # scheduler picked us again.
        proc.waiter = None
        self._trace(proc, "unblock", reason=reason)
        return waiter

    def make_waiter(self, proc: Proc, reason: str) -> Waiter:
        """Create and install the waiter ``proc`` will block on next."""
        if proc.waiter is not None and not proc.waiter.woken:
            raise SimStateError(f"rank {proc.rank} already has a pending waiter")
        waiter = Waiter(proc, reason)
        proc.waiter = waiter
        return waiter

    def wake(self, waiter: Waiter, time: float, payload: Any = None) -> None:
        """Mark ``waiter`` complete at virtual ``time`` with ``payload``.

        The blocked rank resumes with its clock advanced to
        ``max(its clock, time)``. Waking an already-woken waiter is an
        error (each waiter is single-use), as is waking a waiter whose
        owner has not actually blocked on it yet: a rank that is still
        RUNNING (it created the waiter via ``make_waiter`` but has not
        called ``block()``) or already READY must not be re-queued, or
        the ready heap would hold it twice and its state machine would be
        corrupted. Libraries must register a waiter and wake it only from
        *another* rank's execution — which, since exactly one rank runs
        at a time, guarantees the owner reached ``block()`` first.
        """
        if waiter.woken:
            raise SimStateError("waiter was already woken")
        proc = waiter.proc
        if proc.state is not ProcState.BLOCKED:
            raise SimStateError(
                f"cannot wake rank {proc.rank}: it is {proc.state.value}, "
                "not blocked — wake() may only target a rank that has "
                "called block() on this waiter")
        waiter.woken = True
        waiter.wake_time = time
        waiter.payload = payload
        proc.now = max(proc.now, time)
        self._stall_events = 0  # a completion is progress (watchdog)
        self._make_ready(proc)

    def check_time(self, proc: Proc) -> None:
        """Abort if ``proc`` ran past ``max_time`` (runaway-loop guard)."""
        if self._past_max_time(proc):
            raise self._max_time_error(proc)

    def yield_(self, proc: Proc) -> None:
        """Cooperatively reschedule; other ranks at earlier times run first."""
        if proc is not self._current:
            raise SimStateError("a rank may only yield itself")
        self.check_time(proc)
        self._note_stall_event()
        # Fast path: if this rank is still the earliest runnable one, no
        # other rank could be scheduled before it, so skip the context
        # switch entirely. BLOCKED ranks resume only via wake() calls
        # made by *running* ranks, so they cannot be starved by this.
        if not self._ready_before(proc):
            self.stats.fast_yields += 1
            return
        self._make_ready(proc)
        self._switch_from(proc)

    def note_progress(self) -> None:
        """Reset the virtual-stall watchdog: some clock advanced."""
        self._stall_events = 0

    def check_peer_alive(self, peer: int) -> None:
        """Raise :class:`RankFailedError` if ``peer`` was crashed.

        Communication libraries call this as a rank initiates
        communication naming a peer, converting a would-be hang on a
        dead rank into an eager, diagnosable failure. With a recovery
        context bound, the detecting rank first waits out the failure
        detector's deadline (modelled virtual time — a real detector
        cannot distinguish dead from slow before its timeout) and the
        detection is counted and recorded as a ``detect`` span.
        """
        if peer not in self.failed_ranks:
            return
        cur = self._current
        who = f"rank {cur.rank}" if cur is not None else "a rank"
        detected_by = cur.rank if cur is not None else None
        ctx = self.recovery
        if ctx is not None and cur is not None:
            deadline = ctx.detect_deadline
            if deadline > 0:
                if self.profile is not None:
                    self.profile.add(cur.rank, "detect", cur.now,
                                     cur.now + deadline, peer=peer)
                self.trace_event("recovery.detect", peer=peer,
                                 deadline=deadline)
                cur.now += deadline
            self.stats.failures_detected += 1
            self.stats.recovery_wall_s += deadline
        failed = tuple(sorted(self.failed_ranks))
        raise RankFailedError(
            f"{who} attempted communication with rank {peer}, which "
            f"was killed by fault injection; failed ranks: "
            f"{list(failed)}", failed=failed, failed_rank=peer,
            failure_time=self.crash_times.get(peer),
            detected_by=detected_by)

    def progress_report(self) -> str:
        """Per-rank snapshot used in watchdog and failure reports."""
        lines = []
        for p in self.procs:
            desc = f"  rank {p.rank}: {p.state.value} t={p.now:.9f}"
            if p.state is ProcState.BLOCKED and p.waiter is not None:
                desc += f", waiting on {p.waiter.reason}"
            if self.trace is not None:
                events = self.trace.by_rank(p.rank)
                if events:
                    desc += f", last event: {events[-1]}"
            lines.append(desc)
        return "\n".join(lines)

    def _note_stall_event(self) -> None:
        """Count one scheduling event toward the virtual-stall watchdog."""
        wd = self.watchdog
        if wd is None or wd.stall_events is None or self._aborting:
            return
        self._stall_events += 1
        if self._stall_events > wd.stall_events:
            self._stall_events = 0
            raise SimHangError(
                f"no virtual-time progress in {wd.stall_events} "
                "scheduling events (virtual-stall watchdog): the run is "
                "spinning without any clock advancing",
                report=self.progress_report())

    def _trace(self, proc: Proc, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.record(proc.now, proc.rank, kind, **fields)

    def trace_event(self, kind: str, **fields: Any) -> None:
        """Record a trace event attributed to the current rank."""
        if self.trace is not None and self._current is not None:
            self.trace.record(self._current.now, self._current.rank,
                              kind, **fields)

    # ------------------------------------------------------------------
    # Ready-queue maintenance

    def _make_ready(self, proc: Proc) -> None:
        """Transition ``proc`` to READY and enqueue it for dispatch."""
        proc.state = ProcState.READY
        heapq.heappush(self._ready_heap, (proc.now, proc.rank))
        self.stats.heap_ops += 1

    def _pop_next_ready(self) -> Proc | None:
        """Remove and return the earliest runnable proc, or ``None``."""
        heap = self._ready_heap
        while heap:
            now, rank = heapq.heappop(heap)
            self.stats.heap_ops += 1
            proc = self.procs[rank]
            if proc.state is ProcState.READY and proc.now == now:
                return proc
            # Stale entry (abandoned after an abort): drop and continue.
        return None

    def _next_runnable(self) -> Proc | None:
        """Pop the next proc to dispatch, applying dispatch-time faults.

        A stalled proc has its clock bumped and is re-queued (selection
        continues, possibly re-picking it at its new time); a crashed
        proc is removed from the run permanently.
        """
        while True:
            proc = self._pop_next_ready()
            if proc is None or self.faults is None:
                return proc
            action = self.faults.on_dispatch(self, proc)
            if action is None:
                return proc
            if action[0] == "stall":
                duration = action[1]
                self._trace(proc, "fault_stall", duration=duration)
                if self.profile is not None:
                    self.profile.add(proc.rank, "stall", proc.now,
                                     proc.now + duration, cause="fault")
                self.stats.count_fault("stall")
                proc.now += duration
                self._make_ready(proc)
            elif action[0] == "crash":
                self._crash(proc)
            else:
                raise SimStateError(f"unknown fault action {action!r}")

    def _crash(self, proc: Proc) -> None:
        """Kill ``proc`` by injected fault: it never runs again.

        The proc was just popped from the ready heap, so it appears
        nowhere else; its host thread stays parked on its baton and is
        unwound (state preserved) at shutdown. Messages it posted before
        dying remain in flight and may still be delivered to survivors.
        """
        proc.state = ProcState.CRASHED
        self.failed_ranks.add(proc.rank)
        self.crash_times[proc.rank] = proc.now
        self.stats.count_fault("crash")
        self._trace(proc, "fault_crash")
        if self.profile is not None:
            self.profile.instant(proc.rank, "crash", proc.now,
                                 cause="fault")

    def _ready_before(self, proc: Proc) -> bool:
        """True if some READY rank orders strictly before ``proc``."""
        heap = self._ready_heap
        while heap:
            now, rank = heap[0]
            p = self.procs[rank]
            if p.state is ProcState.READY and p.now == now:
                return (now, rank) < (proc.now, proc.rank)
            heapq.heappop(heap)
            self.stats.heap_ops += 1
        return False

    # ------------------------------------------------------------------
    # Control transfer (run-to-block batching)

    def _switch_from(self, proc: Proc) -> None:
        """Give up ``proc``'s slice; returns when it is scheduled again.

        Runs on ``proc``'s own thread: the next runnable rank receives
        the baton directly (one OS-thread switch), and only when nothing
        is runnable does control return to the scheduler thread.
        """
        self._handoff(proc)
        proc._wait_baton()

    def _on_proc_exit(self, proc: Proc) -> None:
        """Called on ``proc``'s own thread as its program ends."""
        if proc.state is ProcState.FAILED:
            # Let the scheduler thread abort the run. Disarm the
            # watchdog first: the abort is the verdict, and a hang
            # report must never race or mask it.
            self._aborting = True
            self._current = None
            self._sched_evt.set()
            return
        self._handoff(proc)

    def _handoff(self, proc: Proc) -> None:
        """Pass the baton to the next runnable rank, or end the chain."""
        nxt = self._next_runnable()
        if nxt is None:
            self._current = None
            self._sched_evt.set()
            return
        if self._past_max_time(nxt):
            # Same abort as the scheduler-side guard, surfaced through
            # the scheduler thread so it unwinds the run.
            self._abort_error = self._max_time_error(nxt)
            self._aborting = True
            self._current = None
            self._sched_evt.set()
            return
        nxt.state = ProcState.RUNNING
        self._current = nxt
        self.stats.switches += 1
        self.stats.direct_handoffs += 1
        nxt.baton.release()

    # ------------------------------------------------------------------
    # Scheduler internals

    def _past_max_time(self, proc: Proc) -> bool:
        return self.max_time is not None and proc.now > self.max_time

    def _max_time_error(self, proc: Proc) -> SimDeadlockError:
        # The single constructor for the max_time abort: every pathway
        # (rank-thread check_time, scheduler dispatch, direct handoff)
        # raises this exact shape.
        return SimDeadlockError(
            f"virtual time {proc.now} exceeded max_time "
            f"{self.max_time} on rank {proc.rank}")

    def _schedule_loop(self) -> None:
        while True:
            proc = self._next_runnable()
            if proc is None:
                blocked = [p for p in self.procs
                           if p.state is ProcState.BLOCKED]
                if blocked:
                    self._raise_deadlock(blocked)
                # All surviving ranks DONE (FAILED is handled by the
                # caller; CRASHED-only losses are a degraded completion).
                return
            if self._past_max_time(proc):
                raise self._max_time_error(proc)
            self._dispatch(proc)
            if self._abort_error is not None:
                err, self._abort_error = self._abort_error, None
                raise err
            failed = [p for p in self.procs if p.error is not None]
            if failed:
                # Abort: remaining ranks are unwound in _shutdown_threads.
                first = min(failed, key=lambda p: p.rank)
                if isinstance(first.error, SimAbortError):
                    # Engine-level abort (max_time guard, watchdog, rank
                    # failure), not a user bug: surface it unwrapped.
                    raise first.error
                raise SimProcessError(first.rank, first.error) \
                    from first.error

    def _dispatch(self, proc: Proc) -> None:
        """Start a baton chain at ``proc``; returns when the chain ends."""
        proc.state = ProcState.RUNNING
        self._current = proc
        self.stats.switches += 1
        self._sched_evt.clear()
        proc.baton.release()
        timeout = None if self.watchdog is None else self.watchdog.wall_timeout
        if timeout is None:
            self._sched_evt.wait()
        else:
            # Wall-clock watchdog: wake periodically and compare the
            # activity counters. A full timeout window with no scheduling
            # activity at all means some rank is hung in *host* code
            # (e.g. an infinite Python loop that never reaches a
            # scheduling point) — abort with a report instead of hanging.
            last_activity = -1
            while not self._sched_evt.wait(timeout):
                if self._aborting:
                    # An abort is already in flight on a rank thread;
                    # it will set the event. The hang watchdog is
                    # disarmed so it cannot mask the real verdict.
                    continue
                activity = (self.stats.switches + self.stats.fast_yields
                            + self.stats.heap_ops)
                if activity == last_activity:
                    self._wall_hang = True
                    self._current = None
                    raise SimHangError(
                        f"no scheduling activity for {timeout:.3g}s of "
                        "host wall-clock (wall watchdog): a rank is hung "
                        "in host code and cannot be unwound",
                        report=self.progress_report())
                last_activity = activity
        self._current = None

    def _raise_deadlock(self, blocked: list[Proc]) -> None:
        self._aborting = True
        blocked = sorted(blocked, key=lambda p: p.rank)
        detail = {
            p.rank: (p.waiter.reason if p.waiter else "unknown")
            for p in blocked
        }
        lines = [f"  rank {p.rank} (t={p.now:.9f}): waiting on "
                 f"{detail[p.rank]}" for p in blocked]
        done = sum(1 for p in self.procs if p.state is ProcState.DONE)
        if self.failed_ranks:
            # Not a plain deadlock: injected crashes took ranks out and
            # the survivors are blocked on communication those ranks
            # will never perform.
            failed = tuple(sorted(self.failed_ranks))
            if self.recovery is not None:
                self.stats.failures_detected += len(failed)
            msg = (f"rank(s) {', '.join(map(str, failed))} crashed "
                   f"(injected fault); {len(blocked)} surviving rank(s) "
                   f"blocked on communication that will never complete, "
                   f"{done} finished\n" + "\n".join(lines))
            raise RankFailedError(
                msg, failed=failed, blocked=detail,
                failure_time=self.crash_times.get(failed[0]))
        msg = (f"deadlock: {len(blocked)} rank(s) blocked, {done} finished, "
               f"none runnable\n" + "\n".join(lines))
        raise SimDeadlockError(msg, blocked=detail)

    def _shutdown_threads(self) -> None:
        self._poison = True
        for p in self.procs:
            if p.thread.is_alive():
                try:
                    p.baton.release()
                except RuntimeError:
                    # Baton already released (the thread is mid-exit and
                    # never re-acquired): nothing to unblock.
                    pass
        # After a wall-clock hang abort the stuck rank thread cannot be
        # poisoned out of host code — don't wait for it (it is a daemon
        # thread, and the engine must not be reused after a wall hang).
        join_timeout = 0.2 if self._wall_hang else 5.0
        for p in self.procs:
            if p.thread.is_alive():
                p.thread.join(timeout=join_timeout)
        self._poison = False
