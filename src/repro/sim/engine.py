"""The cooperative virtual-time scheduler.

One host thread is created per simulated rank, but *exactly one* thread
ever runs at a time: the scheduler (on the caller's thread) hands a baton
to the runnable rank with the smallest ``(virtual time, rank)`` and waits
for it to come back — either because the rank finished, blocked on a
communication condition, or yielded after advancing its clock. Host
threads are used purely as resumable stacks (coroutine carriers); there
is no true concurrency, which is what makes the simulation deterministic.

Virtual time is per-rank. It advances only through
:meth:`repro.sim.process.Env.compute`/:meth:`~repro.sim.process.Env.advance`
(explicitly modelled work) and through wake-ups at message-completion
times computed by the communication libraries' cost models. Causality is
preserved because every wake time is ``max(waiter's clock, cause's
completion time)`` — clocks are monotone per rank.
"""

from __future__ import annotations

import enum
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimDeadlockError, SimProcessError, SimStateError
from repro.sim.process import Env
from repro.sim.stats import SimStats
from repro.sim.tracing import Trace


class ProcState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class _Poisoned(BaseException):
    """Raised inside a simulated rank's thread to unwind it during abort.

    Derives from ``BaseException`` so user ``except Exception`` handlers
    cannot swallow it.
    """


class Waiter:
    """One pending block by one rank.

    A library that needs to block a rank creates a ``Waiter``, registers
    it wherever the waking party will find it (e.g. a message queue), and
    calls :meth:`Engine.block`. The waking party later calls
    :meth:`Engine.wake` with the virtual completion time and an optional
    payload, which the blocked rank receives as ``block()``'s return.
    """

    __slots__ = ("proc", "reason", "woken", "wake_time", "payload")

    def __init__(self, proc: "Proc", reason: str):
        self.proc = proc
        self.reason = reason
        self.woken = False
        self.wake_time: float | None = None
        self.payload: Any = None

    def __repr__(self) -> str:
        state = "woken" if self.woken else "pending"
        return f"<Waiter rank={self.proc.rank} reason={self.reason!r} {state}>"


class Proc:
    """Scheduler-side record of one simulated rank."""

    def __init__(self, engine: "Engine", rank: int,
                 fn: Callable[[Env], Any]):
        self.engine = engine
        self.rank = rank
        self.fn = fn
        self.now: float = 0.0
        self.state = ProcState.NEW
        self.baton = threading.Event()
        self.env = Env(engine, self)
        self.waiter: Waiter | None = None
        self.error: BaseException | None = None
        self.result: Any = None
        self.thread = threading.Thread(
            target=self._thread_main, name=f"sim-rank-{rank}", daemon=True
        )

    # Runs on the rank's own host thread.
    def _thread_main(self) -> None:
        try:
            self._wait_baton()
            self.result = self.fn(self.env)
            self.state = ProcState.DONE
        except _Poisoned:
            self.state = ProcState.FAILED
        except BaseException as exc:  # noqa: BLE001 - reported to the scheduler
            self.error = exc
            self.state = ProcState.FAILED
        self.engine._sched_evt.set()

    def _wait_baton(self) -> None:
        self.baton.wait()
        self.baton.clear()
        if self.engine._poison:
            raise _Poisoned()

    def _switch_to_scheduler(self) -> None:
        """Hand control back; returns when this rank is scheduled again."""
        self.engine._sched_evt.set()
        self._wait_baton()

    def __repr__(self) -> str:
        return f"<Proc rank={self.rank} t={self.now:.9f} {self.state.value}>"


@dataclass
class RunResult:
    """Outcome of one simulated SPMD run."""

    nprocs: int
    #: Per-rank virtual finish times.
    finish_times: list[float]
    #: Per-rank return values of the SPMD callable.
    values: list[Any]
    stats: SimStats
    trace: Trace | None = None

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished."""
        return max(self.finish_times) if self.finish_times else 0.0

    def __repr__(self) -> str:
        return (f"<RunResult nprocs={self.nprocs} "
                f"makespan={self.makespan:.9f}>")


class Engine:
    """Runs SPMD callables over ``nprocs`` simulated ranks.

    Parameters
    ----------
    nprocs:
        Number of simulated ranks.
    trace:
        If true, collect a :class:`~repro.sim.tracing.Trace` of engine and
        library events (bounded by ``trace_maxlen``).
    max_time:
        Safety limit on virtual time; a rank advancing past it aborts the
        run (guards against accidental infinite loops in modelled time).
    """

    def __init__(self, nprocs: int, *, trace: bool = False,
                 trace_maxlen: int | None = 200_000,
                 max_time: float | None = None):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.max_time = max_time
        self.stats = SimStats()
        self.trace: Trace | None = Trace(trace_maxlen) if trace else None
        self.procs: list[Proc] = []
        self._sched_evt = threading.Event()
        self._poison = False
        self._running = False
        self._current: Proc | None = None
        #: Free slot for cross-cutting services (communicators, symmetric
        #: heaps) to stash per-world state, keyed by service name.
        self.services: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Public API

    def run(self, fn: Callable[[Env], Any] | Sequence[Callable[[Env], Any]],
            ) -> RunResult:
        """Execute ``fn`` once per rank and return the collected result.

        ``fn`` may be a single callable (classic SPMD: every rank runs the
        same program, branching on ``env.rank``) or a sequence of exactly
        ``nprocs`` callables (MPMD).
        """
        if self._running:
            raise SimStateError("engine is already running")
        if callable(fn):
            fns = [fn] * self.nprocs
        else:
            fns = list(fn)
            if len(fns) != self.nprocs:
                raise ValueError(
                    f"got {len(fns)} callables for {self.nprocs} ranks")
        self.procs = [Proc(self, r, fns[r]) for r in range(self.nprocs)]
        self._running = True
        try:
            for p in self.procs:
                p.state = ProcState.READY
                p.thread.start()
            self._schedule_loop()
        finally:
            self._shutdown_threads()
            self._running = False
        failed = [p for p in self.procs if p.error is not None]
        if failed:
            first = min(failed, key=lambda p: p.rank)
            raise SimProcessError(first.rank, first.error) from first.error
        return RunResult(
            nprocs=self.nprocs,
            finish_times=[p.now for p in self.procs],
            values=[p.result for p in self.procs],
            stats=self.stats,
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    # Primitives used by Env and the communication libraries.
    # All of these run on the *current rank's* host thread; single-threaded
    # execution makes the shared-state mutation safe without locks.

    @property
    def current(self) -> Proc:
        """The proc whose thread is executing right now."""
        if self._current is None:
            raise SimStateError("no simulated rank is currently running")
        return self._current

    def block(self, proc: Proc, reason: str) -> Waiter:
        """Block ``proc`` until some party wakes its waiter; returns it.

        Must be called from ``proc``'s own thread. The waiter should have
        been registered with the waking party *before* calling this —
        but because only one rank runs at a time, registering it after
        creation and before this call is race-free either way.
        """
        if proc is not self._current:
            raise SimStateError("a rank may only block itself")
        waiter = proc.waiter
        if waiter is None or waiter.woken:
            raise SimStateError("block() requires a fresh waiter; "
                                "use make_waiter() first")
        proc.state = ProcState.BLOCKED
        self._trace(proc, "block", reason=reason)
        proc._switch_to_scheduler()
        # We only get here after wake() marked the waiter woken and the
        # scheduler picked us again.
        proc.waiter = None
        self._trace(proc, "unblock", reason=reason)
        return waiter

    def make_waiter(self, proc: Proc, reason: str) -> Waiter:
        """Create and install the waiter ``proc`` will block on next."""
        if proc.waiter is not None and not proc.waiter.woken:
            raise SimStateError(f"rank {proc.rank} already has a pending waiter")
        waiter = Waiter(proc, reason)
        proc.waiter = waiter
        return waiter

    def wake(self, waiter: Waiter, time: float, payload: Any = None) -> None:
        """Mark ``waiter`` complete at virtual ``time`` with ``payload``.

        The blocked rank resumes with its clock advanced to
        ``max(its clock, time)``. Waking an already-woken waiter is an
        error (each waiter is single-use).
        """
        if waiter.woken:
            raise SimStateError("waiter was already woken")
        waiter.woken = True
        waiter.wake_time = time
        waiter.payload = payload
        proc = waiter.proc
        proc.now = max(proc.now, time)
        proc.state = ProcState.READY

    def check_time(self, proc: Proc) -> None:
        """Abort if ``proc`` ran past ``max_time`` (runaway-loop guard)."""
        if self.max_time is not None and proc.now > self.max_time:
            raise SimDeadlockError(
                f"virtual time {proc.now} exceeded max_time "
                f"{self.max_time} on rank {proc.rank}")

    def yield_(self, proc: Proc) -> None:
        """Cooperatively reschedule; other ranks at earlier times run first."""
        if proc is not self._current:
            raise SimStateError("a rank may only yield itself")
        self.check_time(proc)
        # Fast path: if this rank is still the earliest runnable one, no
        # other rank could be scheduled before it, so skip the two context
        # switches entirely. BLOCKED ranks resume only via wake() calls
        # made by *running* ranks, so they cannot be starved by this.
        if not self._someone_ready_before(proc):
            return
        proc.state = ProcState.READY
        proc._switch_to_scheduler()

    def _someone_ready_before(self, proc: Proc) -> bool:
        for p in self.procs:
            if p is proc or p.state is not ProcState.READY:
                continue
            if (p.now, p.rank) < (proc.now, proc.rank):
                return True
        return False

    def _trace(self, proc: Proc, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.record(proc.now, proc.rank, kind, **fields)

    def trace_event(self, kind: str, **fields: Any) -> None:
        """Record a trace event attributed to the current rank."""
        if self.trace is not None and self._current is not None:
            self.trace.record(self._current.now, self._current.rank,
                              kind, **fields)

    # ------------------------------------------------------------------
    # Scheduler internals

    def _schedule_loop(self) -> None:
        while True:
            ready = [p for p in self.procs if p.state is ProcState.READY]
            if not ready:
                blocked = [p for p in self.procs
                           if p.state is ProcState.BLOCKED]
                if blocked:
                    self._raise_deadlock(blocked)
                return  # all ranks DONE (or FAILED: handled by caller)
            proc = min(ready, key=lambda p: (p.now, p.rank))
            if self.max_time is not None and proc.now > self.max_time:
                raise SimDeadlockError(
                    f"virtual time {proc.now} exceeded max_time "
                    f"{self.max_time} on rank {proc.rank}")
            self._dispatch(proc)
            if proc.error is not None:
                # Abort: remaining ranks are unwound in _shutdown_threads.
                if isinstance(proc.error, SimDeadlockError):
                    # Engine-level abort (e.g. max_time guard), not a user
                    # bug: surface it unwrapped.
                    raise proc.error
                raise SimProcessError(proc.rank, proc.error) from proc.error

    def _dispatch(self, proc: Proc) -> None:
        proc.state = ProcState.RUNNING
        self._current = proc
        self.stats.switches += 1
        self._sched_evt.clear()
        proc.baton.set()
        self._sched_evt.wait()
        self._current = None

    def _raise_deadlock(self, blocked: list[Proc]) -> None:
        blocked = sorted(blocked, key=lambda p: p.rank)
        detail = {
            p.rank: (p.waiter.reason if p.waiter else "unknown")
            for p in blocked
        }
        lines = [f"  rank {p.rank} (t={p.now:.9f}): waiting on "
                 f"{detail[p.rank]}" for p in blocked]
        done = sum(1 for p in self.procs if p.state is ProcState.DONE)
        msg = (f"deadlock: {len(blocked)} rank(s) blocked, {done} finished, "
               f"none runnable\n" + "\n".join(lines))
        raise SimDeadlockError(msg, blocked=detail)

    def _shutdown_threads(self) -> None:
        self._poison = True
        for p in self.procs:
            if p.thread.is_alive():
                p.baton.set()
        for p in self.procs:
            if p.thread.is_alive():
                p.thread.join(timeout=5.0)
        self._poison = False
