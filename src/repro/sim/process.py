"""Per-rank execution context (the ``env`` handle SPMD code receives).

``Env`` is the only object application code needs: it identifies the
rank, exposes the virtual clock, and models computation. Communication
libraries take an ``Env`` as their first argument and build on its
blocking primitives.

Scheduling cost model (see ``docs/SCHEDULER.md``): a yield — explicit
or via :meth:`Env.compute` — is free while this rank remains the
earliest runnable one (the engine's fast path batches the whole
run-to-block stretch onto one OS-thread slice); only a yield that
actually reorders ranks, or a genuine :meth:`Env.block`, costs a
context switch. Libraries should therefore prefer ``advance`` for
small local overheads and reserve ``compute``/``yield_`` for points
where other ranks may legitimately need to run first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SimStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc, Waiter


class Env:
    """The world as seen by one simulated rank."""

    def __init__(self, engine: "Engine", proc: "Proc"):
        self._engine = engine
        self._proc = proc

    # ------------------------------------------------------------------
    # Identity & time

    @property
    def rank(self) -> int:
        """This rank's id, ``0 <= rank < size``."""
        return self._proc.rank

    @property
    def size(self) -> int:
        """Total number of simulated ranks."""
        return self._engine.nprocs

    @property
    def now(self) -> float:
        """This rank's current virtual time, in seconds."""
        return self._proc.now

    @property
    def engine(self) -> "Engine":
        """The owning engine (libraries use this; apps rarely need it)."""
        return self._engine

    # ------------------------------------------------------------------
    # Modelling work

    def compute(self, seconds: float, label: str | None = None) -> None:
        """Model ``seconds`` of local computation.

        Advances this rank's clock and yields so that ranks now earlier
        in virtual time can run. This is how application kernels (e.g.
        WL-LSMS's ``calculateCoreStates``) charge their cost.
        """
        if seconds < 0:
            raise ValueError(f"compute() needs seconds >= 0, got {seconds}")
        self._check_current()
        if self._engine.profile is not None and seconds > 0:
            self._engine.profile.add(
                self._proc.rank, "compute", self._proc.now,
                self._proc.now + seconds,
                **({} if label is None else {"label": label}))
        self._proc.now += seconds
        if seconds > 0:
            self._engine.note_progress()
        self._engine.stats.compute_seconds += seconds
        if label is not None:
            self._engine.trace_event("compute", seconds=seconds, label=label)
        self._engine.yield_(self._proc)

    def advance(self, seconds: float) -> None:
        """Advance the clock without yielding (small local overheads).

        Used by communication libraries for per-call software overheads
        where a scheduling point would add nothing but simulation cost.
        """
        if seconds < 0:
            raise ValueError(f"advance() needs seconds >= 0, got {seconds}")
        self._proc.now += seconds
        if seconds > 0:
            self._engine.note_progress()

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``max(now, time)`` without yielding."""
        if time > self._proc.now:
            self._proc.now = time
            self._engine.note_progress()

    def yield_(self) -> None:
        """Give ranks at earlier virtual times a chance to run."""
        self._check_current()
        self._engine.yield_(self._proc)

    # ------------------------------------------------------------------
    # Blocking primitives (for communication libraries)

    def make_waiter(self, reason: str) -> "Waiter":
        """Create the waiter this rank will block on next."""
        return self._engine.make_waiter(self._proc, reason)

    def block(self, reason: str) -> "Waiter":
        """Block until the installed waiter is woken; returns it.

        The rank's clock is already advanced to the wake time when this
        returns; the waiter carries the wake payload.
        """
        self._check_current()
        return self._engine.block(self._proc, reason)

    # ------------------------------------------------------------------
    # Introspection

    def trace(self, kind: str, **fields: Any) -> None:
        """Emit a trace event attributed to this rank at its clock."""
        self._engine.trace_event(kind, **fields)

    def _check_current(self) -> None:
        if self._engine._current is not self._proc:
            raise SimStateError(
                f"Env for rank {self._proc.rank} used while not scheduled; "
                "Env objects must not be shared across ranks")

    def __repr__(self) -> str:
        return f"<Env rank={self.rank}/{self.size} t={self.now:.9f}>"
