"""Generic collective synchronization over the engine primitives.

:class:`Rendezvous` is a reusable "everyone arrives, everyone leaves
together" point with a pluggable cost function; :mod:`repro.mpi`'s
``Barrier`` and :mod:`repro.shmem`'s ``barrier_all`` are thin wrappers
over it. Supporting a subset of ranks (``members``) lets communicator
sub-groups and LSMS process groups synchronize independently.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import SimStateError
from repro.sim.process import Env


class Rendezvous:
    """A reusable collective sync point for a fixed member set.

    The release time of each episode is ``max(arrival times) + cost(n)``,
    the standard dissemination-barrier abstraction: nobody leaves before
    the last arrival, and the barrier itself costs ``cost(n)`` seconds.
    Episodes are numbered by a generation counter so the same object can
    be reused in a loop (each generation must complete before the next
    can begin, which the SPMD structure guarantees).
    """

    def __init__(self, members: Sequence[int],
                 cost_fn: Callable[[int], float] | None = None,
                 name: str = "rendezvous"):
        if len(members) == 0:
            raise ValueError("rendezvous needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ranks in members: {members}")
        self.members = frozenset(members)
        self.cost_fn = cost_fn or (lambda n: 0.0)
        self.name = name
        self._generation = 0
        self._arrivals: dict[int, float] = {}
        self._waiters: list = []
        #: Open profiling span ids of the current episode's members.
        self._span_sids: list[int] = []

    def join(self, env: Env) -> float:
        """Arrive at the sync point; returns the common release time.

        Blocks until every member has arrived. The caller's clock is at
        the release time when this returns.
        """
        rank = env.rank
        if rank not in self.members:
            raise SimStateError(
                f"rank {rank} is not a member of {self.name} "
                f"(members: {sorted(self.members)})")
        if rank in self._arrivals:
            raise SimStateError(
                f"rank {rank} joined {self.name} generation "
                f"{self._generation} twice")
        self._arrivals[rank] = env.now
        profile = env.engine.profile
        if profile is not None:
            self._span_sids.append(profile.begin(
                rank, "barrier", env.now, name=self.name,
                gen=self._generation))
        if len(self._arrivals) < len(self.members):
            waiter = env.make_waiter(
                f"{self.name} (gen {self._generation}, "
                f"{len(self.members) - len(self._arrivals)} more to arrive)")
            self._waiters.append(waiter)
            env.block(self.name)
            return env.now
        # Last to arrive: compute the release time and wake everyone.
        release = max(self._arrivals.values()) + self.cost_fn(len(self.members))
        sanitizer = env.engine.sanitizer
        if sanitizer is not None:
            # A barrier orders everything across it for its members:
            # join all member clocks (single-threaded, so mutating the
            # blocked members' clocks here is race-free).
            sanitizer.barrier_join(self.members)
        if profile is not None:
            # The episode's critical arriver: everyone else's wait ends
            # because of it (the cross-rank happens-before edge the
            # critical-path extraction follows).
            critical = max(self._arrivals,
                           key=lambda r: (self._arrivals[r], r))
            for sid in self._span_sids:
                profile.end(sid, release, critical_rank=critical)
            self._span_sids.clear()
        for waiter in self._waiters:
            env.engine.wake(waiter, release)
        self._waiters.clear()
        self._arrivals.clear()
        self._generation += 1
        env.advance_to(release)
        return release
