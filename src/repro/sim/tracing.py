"""Structured event tracing for simulated runs.

A :class:`Trace` collects :class:`TraceEvent` records emitted by the
engine and the communication libraries. Traces are the raw material for
the communication-pattern analyses the paper motivates (who sends to
whom, message-size histograms) and make test failures debuggable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event on one simulated rank."""

    time: float
    rank: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:.9f}] rank {self.rank}: {self.kind} {extra}".rstrip()


class Trace:
    """An append-only, optionally bounded event log.

    ``maxlen`` guards against unbounded memory in long benchmark runs;
    when the cap is hit, *recording stops* (the prefix is kept, which is
    what you want when debugging startup behaviour), ``truncated``
    becomes true and every further record is counted in
    ``dropped_events``. So that a capped trace is never silently
    partial, one final ``trace.truncated`` warning event (timestamped at
    the first dropped event) is appended past the cap when truncation
    kicks in.
    """

    def __init__(self, maxlen: int | None = None):
        self.events: list[TraceEvent] = []
        self.maxlen = maxlen
        self.truncated = False
        #: Events rejected after the cap was hit (the warning event
        #: itself is not counted).
        self.dropped_events = 0

    def record(self, time: float, rank: int, kind: str, **fields: Any) -> None:
        """Append one event (counted drop once the cap is hit)."""
        if self.maxlen is not None and len(self.events) >= self.maxlen:
            if not self.truncated:
                self.truncated = True
                self.events.append(TraceEvent(
                    time, rank, "trace.truncated",
                    {"maxlen": self.maxlen,
                     "note": "event cap reached; later events dropped"}))
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(time, rank, kind, fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def by_rank(self, rank: int) -> list[TraceEvent]:
        """All events emitted by one rank, in emission order."""
        return [e for e in self.events if e.rank == rank]

    def kind_counts(self) -> Counter[str]:
        """Histogram of event kinds, e.g. to count generated sync calls."""
        return Counter(e.kind for e in self.events)

    def render(self, limit: int | None = None) -> str:
        """Human-readable dump of the first ``limit`` events."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
