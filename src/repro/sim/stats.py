"""Aggregate counters for a simulated run.

The communication libraries increment these as they execute; benchmark
reports read them to show *why* one variant beats another (message
counts, bytes moved, synchronization calls generated) — the quantities
the paper's Section IV discusses alongside the timings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Counters accumulated over one :meth:`repro.sim.Engine.run`."""

    #: Point-to-point messages fully transferred, by library kind
    #: (``"mpi2s"``, ``"mpi1s"``, ``"shmem"``).
    messages: Counter = field(default_factory=Counter)
    #: Payload bytes transferred, by library kind.
    bytes: Counter = field(default_factory=Counter)
    #: Synchronization calls executed (``"wait"``, ``"waitall"``,
    #: ``"barrier"``, ``"quiet"``, ``"fence"`` ...).
    sync_calls: Counter = field(default_factory=Counter)
    #: Datatype-engine activity (``"struct_created"``, ``"struct_reused"``,
    #: ``"pack"``, ``"unpack"``).
    datatype_ops: Counter = field(default_factory=Counter)
    #: Modelled compute seconds, summed over all ranks.
    compute_seconds: float = 0.0
    #: Scheduler context switches — baton transfers to a rank, whether
    #: dispatched from the scheduler thread or handed off rank-to-rank
    #: (a proxy for simulation cost, not a modelled quantity).
    switches: int = 0
    #: Ready-heap pushes and pops performed by the scheduler.
    heap_ops: int = 0
    #: Yields satisfied on the fast path (the rank stayed the earliest
    #: runnable one, so no context switch happened).
    fast_yields: int = 0
    #: Baton transfers passed directly rank-to-rank, without bouncing
    #: through the scheduler thread (run-to-block batching).
    direct_handoffs: int = 0
    #: Host wall-clock seconds spent inside the scheduler (the whole
    #: dispatch loop, including rank execution) — the quantity
    #: ``benchmarks/bench_engine_scaling.py`` tracks against P.
    dispatch_wall_seconds: float = 0.0
    #: Injected fault events, by kind (``"jitter"``, ``"reorder"``,
    #: ``"drop"``, ``"stall"``, ``"crash"``).
    faults: Counter = field(default_factory=Counter)
    #: Seed of the bound :class:`repro.faults.FaultPlan`, recorded so a
    #: failure report is replayable; ``None`` when no plan was bound.
    fault_seed: int | None = None
    #: Pairwise access comparisons performed by the armed sanitizer
    #: (``Engine(sanitize=True)``); zero means it never ran — a clean
    #: sanitized run must show a positive count to prove coverage.
    sanitizer_checks: int = 0

    # -- recovery counters (populated when a RecoveryContext is bound;
    # aggregated across restart attempts by repro.recovery.manager) ----
    #: Rank failures detected (eager deadline detection or quiescence).
    failures_detected: int = 0
    #: Bounded retransmissions performed by the reliable transport.
    retries: int = 0
    #: Coordinated checkpoints taken at sync boundaries.
    checkpoints_taken: int = 0
    #: Engine restarts performed by the recovery runtime.
    restarts: int = 0
    #: Virtual seconds spent recovering: failure-detection deadlines,
    #: work redone since the last consistent cut, and restart overhead.
    recovery_wall_s: float = 0.0

    def add_recovery(self, other: "SimStats") -> None:
        """Fold another run's recovery counters into this one.

        The recovery manager calls this to accumulate the counters of
        failed attempts into the final (surviving) run's stats.
        """
        self.failures_detected += other.failures_detected
        self.retries += other.retries
        self.checkpoints_taken += other.checkpoints_taken
        self.restarts += other.restarts
        self.recovery_wall_s += other.recovery_wall_s

    def count_fault(self, kind: str, n: int = 1) -> None:
        """Record ``n`` injected fault events of one kind."""
        self.faults[kind] += n

    def count_message(self, kind: str, nbytes: int) -> None:
        """Record one completed transfer of ``nbytes``."""
        self.messages[kind] += 1
        self.bytes[kind] += nbytes

    def count_sync(self, kind: str) -> None:
        """Record one synchronization call."""
        self.sync_calls[kind] += 1

    def count_datatype(self, kind: str) -> None:
        """Record one datatype-engine operation."""
        self.datatype_ops[kind] += 1

    @property
    def total_messages(self) -> int:
        """Messages across all transports."""
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        """Bytes across all transports."""
        return sum(self.bytes.values())

    @property
    def total_sync_calls(self) -> int:
        """Synchronization calls of every kind."""
        return sum(self.sync_calls.values())

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        parts = [
            f"messages={self.total_messages}",
            f"bytes={self.total_bytes}",
            f"sync_calls={self.total_sync_calls}",
            f"compute={self.compute_seconds:.6g}s",
            f"switches={self.switches}",
            f"fast_yields={self.fast_yields}",
            f"direct_handoffs={self.direct_handoffs}",
            f"heap_ops={self.heap_ops}",
            f"dispatch_wall={self.dispatch_wall_seconds:.3g}s",
        ]
        if self.fault_seed is not None:
            parts.append(f"fault_seed={self.fault_seed}")
            parts.append(f"faults={sum(self.faults.values())}")
        if self.sanitizer_checks:
            parts.append(f"sanitizer_checks={self.sanitizer_checks}")
        if (self.failures_detected or self.retries
                or self.checkpoints_taken or self.restarts):
            parts.append(f"failures_detected={self.failures_detected}")
            parts.append(f"retries={self.retries}")
            parts.append(f"checkpoints={self.checkpoints_taken}")
            parts.append(f"restarts={self.restarts}")
            parts.append(f"recovery_wall={self.recovery_wall_s:.3g}s")
        return ", ".join(parts)
