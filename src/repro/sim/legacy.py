"""The seed scheduler, preserved as a reference baseline.

:class:`SeedEngine` reproduces the original (pre-heap) scheduler
algorithm exactly: an ``O(P)`` ready-list rebuild per dispatch, an
``O(P)`` linear scan per yield, and a return to the scheduler thread on
every slice boundary (two OS-thread context switches per slice instead
of one direct handoff).

It exists for two jobs:

* ``benchmarks/bench_engine_scaling.py`` runs the same workload under
  both engines and records the wall-clock speedup of the heap/handoff
  scheduler;
* determinism regression tests assert that both engines produce
  identical virtual-time results (traces, finish times, makespans) —
  the heap refactor is a pure performance change.

Do not use it for anything else; it shares the public API of
:class:`~repro.sim.engine.Engine` but is deliberately frozen at the
seed behaviour.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimDeadlockError, SimProcessError
from repro.sim.engine import Engine, Proc, ProcState, Waiter


class SeedEngine(Engine):
    """The seed (pre-heap) scheduler: linear scans + scheduler bounce."""

    # -- ready bookkeeping: a bare state flag, no queue ----------------

    def _make_ready(self, proc: Proc) -> None:
        proc.state = ProcState.READY

    # -- primitives ----------------------------------------------------

    def wake(self, waiter: Waiter, time: float, payload: Any = None) -> None:
        # Seed behaviour: no owner-state guard (the bug PR 1 fixed);
        # kept verbatim so the baseline is byte-for-byte the seed
        # algorithm for valid programs.
        from repro.errors import SimStateError
        if waiter.woken:
            raise SimStateError("waiter was already woken")
        waiter.woken = True
        waiter.wake_time = time
        waiter.payload = payload
        proc = waiter.proc
        proc.now = max(proc.now, time)
        proc.state = ProcState.READY

    def yield_(self, proc: Proc) -> None:
        from repro.errors import SimStateError
        if proc is not self._current:
            raise SimStateError("a rank may only yield itself")
        self.check_time(proc)
        if not self._someone_ready_before(proc):
            self.stats.fast_yields += 1
            return
        proc.state = ProcState.READY
        self._switch_from(proc)

    def _someone_ready_before(self, proc: Proc) -> bool:
        for p in self.procs:
            if p is proc or p.state is not ProcState.READY:
                continue
            if (p.now, p.rank) < (proc.now, proc.rank):
                return True
        return False

    # -- control transfer: always bounce through the scheduler ---------

    def _switch_from(self, proc: Proc) -> None:
        self._sched_evt.set()
        proc._wait_baton()

    def _on_proc_exit(self, proc: Proc) -> None:
        self._sched_evt.set()

    # -- the seed scheduler loop ---------------------------------------

    def _schedule_loop(self) -> None:
        while True:
            ready = [p for p in self.procs if p.state is ProcState.READY]
            if not ready:
                blocked = [p for p in self.procs
                           if p.state is ProcState.BLOCKED]
                if blocked:
                    self._raise_deadlock(blocked)
                return
            proc = min(ready, key=lambda p: (p.now, p.rank))
            if self._past_max_time(proc):
                raise self._max_time_error(proc)
            self._dispatch(proc)
            if proc.error is not None:
                if isinstance(proc.error, SimDeadlockError):
                    raise proc.error
                raise SimProcessError(proc.rank, proc.error) \
                    from proc.error
