"""Deterministic virtual-time SPMD simulator.

This package is the hardware substitute for the paper's Cray XK7: it runs
an SPMD program (one Python callable executed once per simulated rank)
under a cooperative scheduler that maintains a *virtual clock* per rank.
Communication libraries (:mod:`repro.mpi`, :mod:`repro.shmem`) are built
on its blocking/waking primitives and advance the clocks according to a
pluggable network cost model (:mod:`repro.netmodel`).

Key properties:

* **Deterministic** — exactly one simulated rank executes at a time and
  the scheduler always resumes the runnable rank with the smallest
  ``(virtual time, rank)``, so results never depend on host scheduling.
* **Real data** — messages carry actual ``numpy`` buffers, so simulated
  programs compute real answers that tests can assert on.
* **Measurable** — virtual time advances only through explicit compute
  modelling and communication cost models, so "time" is a property of
  the algorithm, not of the host machine.
"""

from repro.sim.commstats import CommMatrix, comm_matrix
from repro.sim.engine import Engine, RunResult
from repro.sim.legacy import SeedEngine
from repro.sim.process import Env
from repro.sim.stats import SimStats
from repro.sim.sync import Rendezvous
from repro.sim.tracing import Trace, TraceEvent

__all__ = [
    "CommMatrix",
    "comm_matrix",
    "Engine",
    "RunResult",
    "SeedEngine",
    "Env",
    "SimStats",
    "Rendezvous",
    "Trace",
    "TraceEvent",
]
