"""Plain-text rendering of figure series and speedup tables."""

from __future__ import annotations

from repro.bench.harness import FigureSeries
from repro.util.tables import Table


def render_figure(fig: FigureSeries, *, float_fmt: str = ".4g") -> str:
    """The figure as an aligned table: one row per x, one column per
    series (the same rows the paper's plots show)."""
    headers = [fig.xlabel] + list(fig.series)
    table = Table(headers, float_fmt=float_fmt)
    for i, x in enumerate(fig.xs):
        table.add_row([x] + [fig.series[s][i] for s in fig.series])
    return f"{fig.name}  ({fig.ylabel})\n{table.render()}"


def render_speedups(fig: FigureSeries, baseline: str,
                    *, float_fmt: str = ".3g") -> str:
    """Per-x speedups of every series relative to ``baseline``."""
    others = [s for s in fig.series if s != baseline]
    table = Table([fig.xlabel] + [f"{s} speedup" for s in others],
                  float_fmt=float_fmt)
    for i, x in enumerate(fig.xs):
        base = fig.series[baseline][i]
        table.add_row([x] + [base / fig.series[s][i] for s in others])
    avg = Table(["series", "average speedup"], float_fmt=float_fmt)
    for s in others:
        ratios = fig.ratio(baseline, s)
        avg.add_row([s, sum(ratios) / len(ratios)])
    return (f"Speedups vs {baseline!r}\n{table.render()}\n\n"
            f"{avg.render()}")


def mean_speedup(fig: FigureSeries, baseline: str, series: str) -> float:
    """Average of ``baseline / series`` across the sweep."""
    ratios = fig.ratio(baseline, series)
    return sum(ratios) / len(ratios)
