"""Figure-regeneration drivers.

All timings are *virtual* (modelled) seconds from the simulator under
the calibrated Gemini machine model — the reproduction's stand-in for
the paper's Cray XK7 wall clocks. Shapes (who wins, by what factor,
how curves grow with P) are the reproduction target; absolute values
depend on the model calibration and are recorded as-is in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.wllsms import AppConfig, run_app
from repro.apps.wllsms.liz import Topology
from repro.netmodel import gemini_model


def paper_pcounts(group_size: int = 16, *, quick: bool = False) -> list[int]:
    """Fig. 3's x axis: P = 33..337 step 16 (M = 2..21).

    ``quick`` trims to three points for test-suite latency.
    """
    ms = [2, 6, 12] if quick else list(range(2, 22))
    return [1 + m * group_size for m in ms]


@dataclass
class FigureSeries:
    """One figure's data: x values and named y series."""

    name: str
    xlabel: str
    ylabel: str
    xs: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)

    def add(self, label: str, ys: list[float]) -> None:
        """Attach one named y-series (must match the x length)."""
        if len(ys) != len(self.xs):
            raise ValueError(
                f"series {label!r} has {len(ys)} points for "
                f"{len(self.xs)} x values")
        self.series[label] = ys

    def ratio(self, numerator: str, denominator: str) -> list[float]:
        """Element-wise ``numerator / denominator`` series ratio."""
        return [a / b for a, b in zip(self.series[numerator],
                                      self.series[denominator])]


# ---------------------------------------------------------------------------
# Figure 3: single-atom-data communication


#: (variant, target, label) triples of Fig. 3's three series.
FIG3_VARIANTS = [
    ("original", "TARGET_COMM_MPI_2SIDE", "original"),
    ("directive", "TARGET_COMM_MPI_2SIDE", "MPI target / directive"),
    ("directive", "TARGET_COMM_SHMEM", "SHMEM target / directive"),
]


def figure3(*, pcounts: list[int] | None = None, group_size: int = 16,
            t: int = 8192, tc: int = 12, quick: bool = False,
            model=None) -> FigureSeries:
    """Single-atom-data communication time vs process count.

    ``t`` sets the radial-grid extent (and so the per-atom payload);
    the default puts absolute times in the paper's 0.01-0.09 s band.
    """
    pcounts = pcounts or paper_pcounts(group_size, quick=quick)
    model = model or gemini_model()
    fig = FigureSeries(
        name="Figure 3: single atom data communication",
        xlabel="Number of Processes", ylabel="time (s)", xs=pcounts)
    for variant, target, label in FIG3_VARIANTS:
        ys = []
        for p in pcounts:
            topo = Topology.for_nprocs(p, group_size)
            cfg = AppConfig(
                n_lsms=topo.n_lsms, group_size=group_size, t=t, tc=tc,
                wl_steps=1, variant=variant,
                target=target if variant == "directive"
                else "TARGET_COMM_MPI_2SIDE",
                model=model)
            res = run_app(cfg)
            ys.append(res.phases.episode_duration("distribute", 0))
        fig.add(label, ys)
    return fig


# ---------------------------------------------------------------------------
# Figure 4: random-spin-configuration communication


#: (variant, target, label) of Fig. 4's series, plus the Waitall
#: ablation discussed in the text and — beyond the paper — the MPI
#: one-sided target, which the paper implements but never plots.
FIG4_VARIANTS = [
    ("original", "TARGET_COMM_MPI_2SIDE", "original"),
    ("waitall", "TARGET_COMM_MPI_2SIDE", "original + Waitall (ablation)"),
    ("directive", "TARGET_COMM_MPI_2SIDE", "MPI target / directive"),
    ("directive", "TARGET_COMM_MPI_1SIDE",
     "MPI 1-sided target / directive (extension)"),
    ("directive", "TARGET_COMM_SHMEM", "SHMEM target / directive"),
]


def figure4(*, pcounts: list[int] | None = None, group_size: int = 16,
            wl_steps: int = 3, quick: bool = False,
            model=None) -> FigureSeries:
    """Spin-configuration communication time (privileged-rank busy
    time per step) vs process count."""
    pcounts = pcounts or paper_pcounts(group_size, quick=quick)
    model = model or gemini_model()
    fig = FigureSeries(
        name="Figure 4: random spin configuration communication",
        xlabel="Number of Processes", ylabel="time (s)", xs=pcounts)
    for variant, target, label in FIG4_VARIANTS:
        ys = []
        for p in pcounts:
            topo = Topology.for_nprocs(p, group_size)
            cfg = AppConfig(
                n_lsms=topo.n_lsms, group_size=group_size, t=64, tc=4,
                wl_steps=wl_steps, variant=variant,
                target=target if variant == "directive"
                else "TARGET_COMM_MPI_2SIDE",
                model=model)
            res = run_app(cfg)
            priv = topo.privileged_rank_of(0)
            ys.append(res.phases.rank_total("setevec", priv))
        fig.add(label, ys)
    return fig


# ---------------------------------------------------------------------------
# Figure 5: communication/computation overlap with 10x compute


def _fig5_point(topo: Topology, *, overlap: bool, gpu_speedup: float,
                steps: int, model) -> float:
    """Routine-level fig-5 measurement: setEvec + core states at the
    busiest non-privileged member, with the spin configurations already
    at the privileged ranks (isolating the routine the paper times from
    whole-app pipeline skew)."""
    import numpy as np

    from repro import mpi
    from repro.apps.wllsms import corestates, setevec
    from repro.apps.wllsms.atom import AtomData
    from repro.sim import Engine
    from repro.util.rng import rank_rng

    total_cost = corestates.calibrated_cost(
        model, topo.group_size, gpu_speedup=gpu_speedup)
    phase1_seconds, phase2_seconds = 0.6 * total_cost, 0.4 * total_cost
    t, tc = 24, 4

    def main(env):
        mpi.init(env, model)
        if topo.is_wl(env.rank):
            return 0.0
        g = topo.group_of(env.rank)
        num = topo.atoms_per_group()
        my_atom = AtomData.empty(t, tc)
        my_evec = np.zeros(3)
        rng = rank_rng(7, topo.privileged_rank_of(g))
        elapsed = 0.0
        for _ in range(steps):
            ev = (rng.random(3 * num) if topo.is_privileged(env.rank)
                  else None)
            t0 = env.now
            done = {"flag": False}

            def body(env_, _p, _d=done):
                if not _d["flag"]:
                    corestates.phase1_energy(
                        env_, my_atom, cost_seconds=phase1_seconds)
                    _d["flag"] = True

            setevec.set_evec_directive(
                env, topo, ev, my_evec,
                overlap_body=body if overlap else None)
            if not done["flag"]:
                corestates.phase1_energy(
                    env, my_atom, cost_seconds=phase1_seconds)
            corestates.phase2_energy(
                env, my_atom, my_evec, cost_seconds=phase2_seconds)
            elapsed += env.now - t0
        return elapsed

    res = Engine(topo.nprocs).run(main)
    last_member = topo.members_of(0)[-1]
    return res.values[last_member] / steps


def figure5(*, pcounts: list[int] | None = None, group_size: int = 16,
            wl_steps: int = 3, gpu_speedup: float = 10.0,
            quick: bool = False, model=None) -> FigureSeries:
    """Execution time (setEvec + core states, per step) with the
    computation accelerated ``gpu_speedup``x, with and without the
    directive overlap."""
    pcounts = pcounts or paper_pcounts(group_size, quick=quick)
    model = model or gemini_model()
    fig = FigureSeries(
        name=f"Figure 5: comm/comp overlap (compute {gpu_speedup:g}x)",
        xlabel="Number of Processes", ylabel="time (s)", xs=pcounts)
    for overlap, label in [
        (False, "original comm + optimized computation"),
        (True, "directive overlap + optimized computation"),
    ]:
        ys = []
        for p in pcounts:
            topo = Topology.for_nprocs(p, group_size)
            ys.append(_fig5_point(topo, overlap=overlap,
                                  gpu_speedup=gpu_speedup,
                                  steps=wl_steps, model=model))
        fig.add(label, ys)
    return fig


def figure5_speedup_sweep(*, speedups: list[float] | None = None,
                          group_size: int = 16, wl_steps: int = 2,
                          model=None) -> FigureSeries:
    """Extension of Fig. 5: how much the overlap saves as the
    computation is accelerated 1x..50x.

    The paper argues the communication time bounds the saving; as the
    compute shrinks (larger accelerator speedups), the *relative*
    saving grows until communication dominates. This sweep maps that
    curve — useful for deciding when overlap is worth generating.
    """
    speedups = speedups or [1.0, 2.0, 5.0, 10.0, 20.0, 50.0]
    model = model or gemini_model()
    topo = Topology(n_lsms=1, group_size=group_size)
    fig = FigureSeries(
        name="Figure 5 extension: overlap saving vs compute speedup",
        xlabel="compute speedup (x)", ylabel="time (s)",
        xs=[int(s) for s in speedups])
    plain, over = [], []
    for s in speedups:
        plain.append(_fig5_point(topo, overlap=False, gpu_speedup=s,
                                 steps=wl_steps, model=model))
        over.append(_fig5_point(topo, overlap=True, gpu_speedup=s,
                                steps=wl_steps, model=model))
    fig.add("no overlap", plain)
    fig.add("directive overlap", over)
    return fig


# ---------------------------------------------------------------------------
# Productivity: Listing 4 vs Listing 5 (lines of code + translation)


def productivity() -> dict:
    """Source-size comparison and a working static translation."""
    from repro.bench import listings
    from repro.core.codegen import generate_c
    from repro.core.pragma import parse_program

    def loc(text: str) -> int:
        return sum(1 for line in text.splitlines()
                   if line.strip() and not line.strip().startswith("//"))

    original = loc(listings.LISTING4_ORIGINAL)
    directive = loc(listings.LISTING5_DIRECTIVE_BODY)
    program = parse_program(listings.LISTING5_ANNOTATED)
    generated = generate_c(program)
    return {
        "original_loc": original,
        "directive_loc": directive,
        "reduction_factor": original / directive,
        "generated_c": generated,
        "generated_isend_calls": generated.count("MPI_Isend"),
        "generated_waitall_calls": generated.count("MPI_Waitall"),
        "generated_struct_creations":
            generated.count("MPI_Type_create_struct"),
    }
