"""CLI: regenerate the paper's figures.

Usage::

    python -m repro.bench fig3 [--quick]
    python -m repro.bench fig4 [--quick]
    python -m repro.bench fig5 [--quick]
    python -m repro.bench loc
    python -m repro.bench all [--quick]

``--quick`` runs three process counts instead of the paper's twenty.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import figure3, figure4, figure5, productivity
from repro.bench.report import mean_speedup, render_figure, render_speedups


def _fig3(quick: bool) -> None:
    fig = figure3(quick=quick)
    print(render_figure(fig))
    print()
    print(render_speedups(fig, "original"))


def _fig4(quick: bool) -> None:
    fig = figure4(quick=quick)
    print(render_figure(fig, float_fmt=".4g"))
    print()
    print(render_speedups(fig, "original"))
    mpi_up = mean_speedup(fig, "original", "MPI target / directive")
    shm_up = mean_speedup(fig, "original", "SHMEM target / directive")
    abl_up = mean_speedup(fig, "original",
                          "original + Waitall (ablation)")
    print()
    print(f"paper: MPI ~4x, SHMEM ~38x, Waitall ablation ~2.6x")
    print(f"measured: MPI {mpi_up:.2f}x, SHMEM {shm_up:.2f}x, "
          f"Waitall {abl_up:.2f}x")


def _fig5(quick: bool) -> None:
    fig = figure5(quick=quick)
    print(render_figure(fig, float_fmt=".4g"))
    print()
    print(render_speedups(fig,
                          "original comm + optimized computation"))


def _loc(_quick: bool) -> None:
    result = productivity()
    print("Listing 4 vs Listing 5 (productivity)")
    print(f"  original (pack/unpack) source lines: "
          f"{result['original_loc']}")
    print(f"  directive source lines:              "
          f"{result['directive_loc']}")
    print(f"  reduction factor:                    "
          f"{result['reduction_factor']:.1f}x")
    print(f"  static translation of Listing 5 generates: "
          f"{result['generated_isend_calls']} MPI_Isend, "
          f"{result['generated_waitall_calls']} MPI_Waitall, "
          f"{result['generated_struct_creations']} struct creation(s)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("figure",
                        choices=["fig3", "fig4", "fig5", "loc", "all"])
    parser.add_argument("--quick", action="store_true",
                        help="three process counts instead of twenty")
    args = parser.parse_args(argv)
    runners = {"fig3": _fig3, "fig4": _fig4, "fig5": _fig5, "loc": _loc}
    if args.figure == "all":
        for name in ("fig3", "fig4", "fig5", "loc"):
            print(f"=== {name} ===")
            runners[name](args.quick)
            print()
    else:
        runners[args.figure](args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
