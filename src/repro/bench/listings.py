"""The paper's Listings 4 and 5, as source text.

``LISTING4_ORIGINAL`` is the paper's original single-atom-data transfer
(74 lines of ``MPI_Pack``/``Send``/``Recv``/``Unpack``); Listing 5 is
the directive replacement. The line counts feed the productivity
comparison; ``LISTING5_ANNOTATED`` is a declaration-complete variant of
Listing 5 that the static translator parses and lowers to MPI calls.
"""

LISTING4_ORIGINAL = """\
if(comm.rank==from)
{
  int pos=0;
  MPI_Pack(&local_id,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.jmt,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.jws,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.xstart,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.rmt,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(atom.header,80,MPI_CHAR,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.alat,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.efermi,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.vdif,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.ztotss,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.zcorss,1,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(atom.evec,3,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.nspin,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.numc,1,MPI_INT,buf,s,&pos,comm.comm);

  t=atom.vr.n_row();

  MPI_Pack(&t,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.vr(0,0),2*t,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.rhotot(0,0),2*t,MPI_DOUBLE,buf,s,&pos,comm.comm);

  t=atom.ec.n_row();

  MPI_Pack(&t,1,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.ec(0,0),2*t,MPI_DOUBLE,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.nc(0,0),2*t,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.lc(0,0),2*t,MPI_INT,buf,s,&pos,comm.comm);
  MPI_Pack(&atom.kc(0,0),2*t,MPI_INT,buf,s,&pos,comm.comm);

  MPI_Send(buf,s,MPI_PACKED,to,0,comm.comm);
}
if(comm.rank==to)
{
  MPI_Status status;
  MPI_Recv(buf,s,MPI_PACKED,from,0,comm.comm,&status);

  int pos=0;
  MPI_Unpack(buf,s,&pos,&local_id,1,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.jmt,1,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.jws,1,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.xstart,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.rmt,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,atom.header,80,MPI_CHAR,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.alat,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.efermi,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.vdif,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.ztotss,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.zcorss,1,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,atom.evec,3,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.nspin,1,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.numc,1,MPI_INT,comm.comm);

  MPI_Unpack(buf,s,&pos,&t,1,MPI_INT,comm.comm);

  if(t<atom.vr.n_row())
    atom.resizePotential(t+50);

  MPI_Unpack(buf,s,&pos,&atom.vr(0,0),2*t,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.rhotot(0,0),2*t,MPI_DOUBLE,comm.comm);

  MPI_Unpack(buf,s,&pos,&t,1,MPI_INT,comm.comm);

  if(t<atom.nc.n_row())
    atom.resizeCore(t);

  MPI_Unpack(buf,s,&pos,&atom.ec(0,0),2*t,MPI_DOUBLE,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.nc(0,0),2*t,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.lc(0,0),2*t,MPI_INT,comm.comm);
  MPI_Unpack(buf,s,&pos,&atom.kc(0,0),2*t,MPI_INT,comm.comm);
}
"""

LISTING5_DIRECTIVE_BODY = """\
#pragma comm_parameters sendwhen(rank==from_rank)
    receivewhen(rank==to_rank)
    sender(from_rank) receiver(to_rank)
{
#pragma comm_p2p sbuf(scalaratomdata)
    rbuf(scalaratomdata) count(1)
{ }

#pragma comm_p2p sbuf(vr,rhotot)
    rbuf(vr,rhotot) count(size1)
{ }

#pragma comm_p2p sbuf(ec,nc,lc,kc)
    rbuf(ec,nc,lc,kc) count(size2)
{ }
}
"""

#: Listing 5 with the declarations the translator needs in scope.
LISTING5_ANNOTATED = """\
struct AtomScalars {
    int local_id;
    int jmt;
    int jws;
    double xstart;
    double rmt;
    char header[80];
    double alat;
    double efermi;
    double vdif;
    double ztotss;
    double zcorss;
    double evec[3];
    int nspin;
    int numc;
};
struct AtomScalars scalaratomdata[1];
double vr[1024];
double rhotot[1024];
double ec[16];
double nc[16];
double lc[16];
double kc[16];
int rank, from_rank, to_rank, size1, size2;

""" + LISTING5_DIRECTIVE_BODY
