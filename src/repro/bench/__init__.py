"""Experiment harness: regenerate every figure of the paper.

Each ``figure*`` function runs the WL-LSMS mini-app over the paper's
process sweep under the calibrated Gemini model and returns the series
the corresponding figure plots; ``productivity`` reproduces the
Listing 4 -> Listing 5 source comparison. ``python -m repro.bench all``
prints everything (feeding EXPERIMENTS.md); the ``benchmarks/``
pytest-benchmark suite runs reduced versions with shape assertions.
"""

from repro.bench.harness import (
    FigureSeries,
    figure3,
    figure4,
    figure5,
    paper_pcounts,
    productivity,
)
from repro.bench.report import render_figure, render_speedups

__all__ = [
    "FigureSeries",
    "figure3",
    "figure4",
    "figure5",
    "paper_pcounts",
    "productivity",
    "render_figure",
    "render_speedups",
]
