"""Byte- and time-unit helpers.

All virtual times in the simulator are floats in **seconds**; all sizes
are ints in **bytes**. These helpers keep cost-model code readable
(``2 * usec`` rather than ``2e-6``) and make benchmark reports humane.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: One microsecond, in seconds. ``latency = 1.5 * usec``.
usec: float = 1e-6
#: One millisecond, in seconds.
msec: float = 1e-3


def fmt_bytes(n: int | float) -> str:
    """Format a byte count with a binary suffix (``1536 -> '1.5 KiB'``)."""
    n = float(n)
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.3g} {name}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an SI suffix (``1.5e-6 -> '1.5 us'``)."""
    a = abs(seconds)
    if a == 0.0:
        return "0 s"
    if a >= 1.0:
        return f"{seconds:.4g} s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.4g} ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.4g} us"
    return f"{seconds * 1e9:.4g} ns"
