"""Shared utilities: units, deterministic RNG, and report formatting."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    fmt_bytes,
    fmt_time,
    usec,
    msec,
)
from repro.util.rng import rank_rng
from repro.util.tables import Table, format_series

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "fmt_bytes",
    "fmt_time",
    "usec",
    "msec",
    "rank_rng",
    "Table",
    "format_series",
]
