"""Plain-text table and series rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers render them as aligned ASCII so ``EXPERIMENTS.md``
and terminal output stay readable without a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """An incrementally built, column-aligned ASCII table.

    >>> t = Table(["P", "original (s)", "directive (s)"])
    >>> t.add_row([33, 0.0123, 0.0119])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    P   | original (s) | directive (s)
    ----+--------------+--------------
    33  | 0.0123       | 0.0119
    """

    def __init__(self, headers: Sequence[str], *, float_fmt: str = ".4g"):
        self.headers = [str(h) for h in headers]
        self.float_fmt = float_fmt
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append one row (floats formatted per ``float_fmt``)."""
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(format(value, self.float_fmt))
            else:
                cells.append(str(value))
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """The aligned ASCII table text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        sep = "-+-".join("-" * w for w in widths)
        out = [line(self.headers), sep]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float],
                  *, float_fmt: str = ".4g") -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...`` pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = " ".join(f"({x}, {format(y, float_fmt)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
