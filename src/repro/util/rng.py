"""Deterministic per-rank random number generation.

Simulated SPMD programs must be reproducible regardless of host thread
scheduling, so every source of randomness is a :class:`numpy.random.
Generator` seeded from ``(experiment seed, rank)`` via ``SeedSequence``.
Two ranks never share a stream, and re-running with the same seed gives
bit-identical results.
"""

from __future__ import annotations

import numpy as np


def rank_rng(seed: int, rank: int) -> np.random.Generator:
    """Return the deterministic generator for ``rank`` under ``seed``.

    >>> a = rank_rng(7, 0).random(3)
    >>> b = rank_rng(7, 0).random(3)
    >>> bool((a == b).all())
    True
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    return stream_rng(seed, rank)


def stream_rng(seed: int, *key: int) -> np.random.Generator:
    """Return the deterministic generator for an arbitrary stream ``key``.

    Generalizes :func:`rank_rng` to multi-component keys — e.g. the
    fault injector keys one stream per ``(src, dst)`` channel so the
    perturbation applied to a message never depends on how many other
    messages have flowed elsewhere.

    >>> a = stream_rng(7, 0, 1).random(3)
    >>> b = stream_rng(7, 0, 1).random(3)
    >>> bool((a == b).all())
    True
    >>> bool((stream_rng(7, 1, 0).random(3) == a).any())
    False
    """
    ss = np.random.SeedSequence(entropy=seed, spawn_key=key)
    return np.random.Generator(np.random.PCG64(ss))
