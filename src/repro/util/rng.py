"""Deterministic per-rank random number generation.

Simulated SPMD programs must be reproducible regardless of host thread
scheduling, so every source of randomness is a :class:`numpy.random.
Generator` seeded from ``(experiment seed, rank)`` via ``SeedSequence``.
Two ranks never share a stream, and re-running with the same seed gives
bit-identical results.
"""

from __future__ import annotations

import numpy as np


def rank_rng(seed: int, rank: int) -> np.random.Generator:
    """Return the deterministic generator for ``rank`` under ``seed``.

    >>> a = rank_rng(7, 0).random(3)
    >>> b = rank_rng(7, 0).random(3)
    >>> bool((a == b).all())
    True
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(rank,))
    return np.random.Generator(np.random.PCG64(ss))
