"""repro — reproduction of "Toward Abstracting the Communication Intent
in Applications to Improve Portability and Productivity" (IPDPSW 2013).

Top-level layout (see README.md for the full map):

* :mod:`repro.core` — the paper's contribution: the ``comm_parameters``
  / ``comm_p2p`` directives, their analyses and translations;
* :mod:`repro.sim` — the deterministic virtual-time SPMD simulator;
* :mod:`repro.mpi`, :mod:`repro.shmem` — the simulated communication
  libraries the directives target;
* :mod:`repro.netmodel` — machine cost models (calibrated Gemini);
* :mod:`repro.dtypes` — the datatype engine;
* :mod:`repro.patterns` — recurring point-to-point patterns;
* :mod:`repro.apps.wllsms` — the WL-LSMS evaluation application;
* :mod:`repro.bench` — figure-regeneration harness
  (``python -m repro.bench all``).
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
