"""Basic-type registry: C names <-> numpy dtypes <-> MPI/Fortran names.

These are the "MPI basic types" the paper's compiler maps C/Fortran
primitive types to during compilation (Section III-A), and the storage
sizes SHMEM call-name selection keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatatypeError


@dataclass(frozen=True)
class PrimitiveType:
    """One basic type as seen by C, numpy, MPI and Fortran."""

    c_name: str
    mpi_name: str
    fortran_name: str
    np_name: str

    @property
    def np_dtype(self) -> np.dtype:
        """The equivalent numpy dtype."""
        return np.dtype(self.np_name)

    @property
    def size(self) -> int:
        """Storage size in bytes."""
        return self.np_dtype.itemsize

    @property
    def alignment(self) -> int:
        """C alignment requirement (== size for all types we model)."""
        return self.np_dtype.alignment

    def __str__(self) -> str:
        return self.c_name


def _make(c_name: str, mpi_name: str, fortran_name: str,
          np_name: str) -> PrimitiveType:
    return PrimitiveType(c_name, mpi_name, fortran_name, np_name)


CHAR = _make("char", "MPI_CHAR", "character", "i1")
SIGNED_CHAR = _make("signed char", "MPI_SIGNED_CHAR", "integer(1)", "i1")
UNSIGNED_CHAR = _make("unsigned char", "MPI_UNSIGNED_CHAR", "integer(1)", "u1")
SHORT = _make("short", "MPI_SHORT", "integer(2)", "i2")
UNSIGNED_SHORT = _make("unsigned short", "MPI_UNSIGNED_SHORT", "integer(2)", "u2")
INT = _make("int", "MPI_INT", "integer", "i4")
UNSIGNED = _make("unsigned", "MPI_UNSIGNED", "integer(4)", "u4")
LONG = _make("long", "MPI_LONG", "integer(8)", "i8")
UNSIGNED_LONG = _make("unsigned long", "MPI_UNSIGNED_LONG", "integer(8)", "u8")
LONG_LONG = _make("long long", "MPI_LONG_LONG", "integer(8)", "i8")
FLOAT = _make("float", "MPI_FLOAT", "real", "f4")
DOUBLE = _make("double", "MPI_DOUBLE", "double precision", "f8")

#: Registry keyed by C type name.
PRIMITIVES: dict[str, PrimitiveType] = {
    t.c_name: t
    for t in (
        CHAR, SIGNED_CHAR, UNSIGNED_CHAR, SHORT, UNSIGNED_SHORT,
        INT, UNSIGNED, LONG, UNSIGNED_LONG, LONG_LONG, FLOAT, DOUBLE,
    )
}

_BY_MPI_NAME = {t.mpi_name: t for t in PRIMITIVES.values()}

# numpy kind+size -> canonical primitive (first match wins; later
# duplicates like LONG_LONG alias the same storage as LONG).
_BY_NP: dict[str, PrimitiveType] = {}
for _t in PRIMITIVES.values():
    _BY_NP.setdefault(_t.np_dtype.str, _t)


def primitive(name: str) -> PrimitiveType:
    """Look up a primitive by C name (``"double"``) or MPI name."""
    if name in PRIMITIVES:
        return PRIMITIVES[name]
    if name in _BY_MPI_NAME:
        return _BY_MPI_NAME[name]
    raise DatatypeError(
        f"unknown primitive type {name!r}; known C names: "
        f"{sorted(PRIMITIVES)}")


def from_numpy_dtype(dtype: np.dtype | type) -> PrimitiveType:
    """Map a scalar numpy dtype to its canonical primitive type.

    This is the mapping the directive compiler applies to infer the MPI
    basic type (or SHMEM size class) of a buffer.
    """
    dt = np.dtype(dtype)
    if dt.fields is not None:
        raise DatatypeError(
            f"dtype {dt} is a structured (composite) type, not a primitive")
    try:
        return _BY_NP[dt.str]
    except KeyError:
        raise DatatypeError(
            f"numpy dtype {dt} has no corresponding C primitive "
            "(only native integer and IEEE float types are supported)"
        ) from None
