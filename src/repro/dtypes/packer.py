"""Contiguous pack/unpack of buffer lists.

This is the *manual* data-marshalling path the directives replace: the
original WL-LSMS code (paper Listing 4) packs scalars and matrices into
one contiguous byte buffer with ``MPI_Pack`` and unpacks on the other
side. The simulated :func:`repro.mpi.pack.Pack` builds on these helpers;
they are also used to move composite payloads over SHMEM (whose typed
puts move raw bytes of a given element width).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import DatatypeError


def _as_array(buf: np.ndarray) -> np.ndarray:
    if not isinstance(buf, np.ndarray):
        raise DatatypeError(
            f"buffers must be numpy arrays, got {type(buf).__name__}")
    return np.ascontiguousarray(buf)


def pack_arrays(buffers: Sequence[np.ndarray]) -> bytes:
    """Concatenate the raw bytes of each buffer, in order."""
    if not buffers:
        raise DatatypeError("pack_arrays needs at least one buffer")
    return b"".join(_as_array(b).tobytes() for b in buffers)


def unpack_arrays(data: bytes, buffers: Sequence[np.ndarray]) -> None:
    """Split ``data`` back into the given destination buffers, in place.

    Each destination must be a numpy array whose byte size matches its
    slice of ``data`` exactly (sum of sizes == len(data)); shapes and
    dtypes are the receiver's declaration, exactly as with ``MPI_Unpack``.
    """
    if not buffers:
        raise DatatypeError("unpack_arrays needs at least one buffer")
    total = sum(b.nbytes for b in buffers)
    if total != len(data):
        raise DatatypeError(
            f"unpack size mismatch: buffers hold {total} bytes, "
            f"data has {len(data)}")
    offset = 0
    for buf in buffers:
        if not isinstance(buf, np.ndarray):
            raise DatatypeError(
                f"buffers must be numpy arrays, got {type(buf).__name__}")
        if not buf.flags.c_contiguous:
            raise DatatypeError(
                "unpack destinations must be C-contiguous (views with "
                "strides cannot receive raw bytes)")
        n = buf.nbytes
        chunk = np.frombuffer(data[offset:offset + n], dtype=buf.dtype)
        buf[...] = chunk.reshape(buf.shape)
        offset += n
