"""Composite (struct) types with C layout and MPI-struct flattening.

A :class:`CompositeType` mirrors a C struct: ordered fields, each a
primitive (or another composite) with a block length. Displacements
follow the C rules — each field is aligned to its type's alignment and
the struct is tail-padded to its own alignment — so a composite's layout
matches what ``numpy.dtype(..., align=True)`` produces and what a real
compiler would hand to ``MPI_Type_create_struct``.

:meth:`CompositeType.triples` performs the paper's extraction: "for each
element in the composite type, its displacement within the type, block
length and correlating MPI basic type are accumulated into corresponding
arrays" (Section III-A). Nested (non-recursive) composites are flattened
into their primitive elements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.primitives import PrimitiveType
from repro.errors import CompositeTypeError


@dataclass(frozen=True)
class Field:
    """One struct field: a named block of ``count`` elements."""

    name: str
    type: "PrimitiveType | CompositeType"
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise CompositeTypeError(
                f"field {self.name!r}: count must be >= 1, got {self.count}")
        if not self.name.isidentifier():
            raise CompositeTypeError(
                f"field name {self.name!r} is not a valid identifier")

    @property
    def nbytes(self) -> int:
        """Total bytes of the field's block."""
        return self.type.size * self.count


@dataclass(frozen=True)
class StructTriples:
    """The three parallel arrays handed to ``MPI_Type_create_struct``."""

    displacements: tuple[int, ...]
    blocklengths: tuple[int, ...]
    mpi_types: tuple[PrimitiveType, ...]

    def __len__(self) -> int:
        return len(self.displacements)

    def __iter__(self):
        return iter(zip(self.displacements, self.blocklengths, self.mpi_types))


def _align_up(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) // alignment * alignment


class CompositeType:
    """An ordered-field struct type with C layout.

    Parameters
    ----------
    name:
        The struct's name (used in generated code and error messages).
    fields:
        Ordered :class:`Field` list. Duplicate names are rejected.
        Composite-typed fields are allowed but recursion is not —
        enforcement happens in :mod:`repro.dtypes.extract`, which is the
        only place user-defined types enter the system; here we also
        guard directly against a composite containing itself.
    """

    def __init__(self, name: str, fields: list[Field] | tuple[Field, ...]):
        if not fields:
            raise CompositeTypeError(f"composite {name!r} has no fields")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise CompositeTypeError(
                f"composite {name!r} has duplicate field names: {names}")
        for f in fields:
            if f.type is self or (isinstance(f.type, CompositeType)
                                  and self in f.type.nested_composites()):
                raise CompositeTypeError(
                    f"composite {name!r} recursively contains itself "
                    f"via field {f.name!r}")
        self.name = name
        self.fields = tuple(fields)
        self._layout()

    def _layout(self) -> None:
        offset = 0
        max_align = 1
        displacements = []
        for f in self.fields:
            align = f.type.alignment
            max_align = max(max_align, align)
            offset = _align_up(offset, align)
            displacements.append(offset)
            offset += f.nbytes
        self._field_displacements = tuple(displacements)
        self._alignment = max_align
        self._size = _align_up(offset, max_align)

    # -- layout properties ------------------------------------------------

    @property
    def size(self) -> int:
        """Total struct size in bytes, including tail padding."""
        return self._size

    @property
    def alignment(self) -> int:
        """The struct's own alignment (max of field alignments)."""
        return self._alignment

    @property
    def field_displacements(self) -> tuple[int, ...]:
        """Byte offset of each field, in declaration order."""
        return self._field_displacements

    def displacement_of(self, field_name: str) -> int:
        """Byte offset of a field, by name."""
        for f, d in zip(self.fields, self._field_displacements):
            if f.name == field_name:
                return d
        raise CompositeTypeError(
            f"composite {self.name!r} has no field {field_name!r}")

    def nested_composites(self) -> list["CompositeType"]:
        """All composite types reachable through fields (recursively)."""
        out: list[CompositeType] = []
        for f in self.fields:
            if isinstance(f.type, CompositeType):
                out.append(f.type)
                out.extend(f.type.nested_composites())
        return out

    # -- the paper's extraction -------------------------------------------

    def triples(self) -> StructTriples:
        """Flatten to ``(displacement, blocklength, MPI basic type)``.

        Nested composites contribute their own flattened triples at
        shifted displacements, repeated per array element when the
        nested field has ``count > 1``.
        """
        disps: list[int] = []
        blocks: list[int] = []
        types: list[PrimitiveType] = []

        def emit(ctype: CompositeType, base: int) -> None:
            for f, d in zip(ctype.fields, ctype._field_displacements):
                if isinstance(f.type, CompositeType):
                    for i in range(f.count):
                        emit(f.type, base + d + i * f.type.size)
                else:
                    disps.append(base + d)
                    blocks.append(f.count)
                    types.append(f.type)

        emit(self, 0)
        return StructTriples(tuple(disps), tuple(blocks), tuple(types))

    # -- numpy interop ------------------------------------------------------

    def to_numpy_dtype(self) -> np.dtype:
        """The equivalent numpy structured dtype (explicit offsets).

        ``itemsize`` includes tail padding so arrays of this dtype have
        the same stride a C array of the struct would.
        """
        names, formats, offsets = [], [], []
        for f, d in zip(self.fields, self._field_displacements):
            names.append(f.name)
            if isinstance(f.type, CompositeType):
                sub = f.type.to_numpy_dtype()
                formats.append((sub, (f.count,)) if f.count > 1 else sub)
            else:
                base = f.type.np_dtype
                formats.append((base, (f.count,)) if f.count > 1 else base)
            offsets.append(d)
        return np.dtype({
            "names": names,
            "formats": formats,
            "offsets": offsets,
            "itemsize": self._size,
        })

    def zeros(self, count: int = 1) -> np.ndarray:
        """A zero-initialized array of ``count`` struct instances."""
        return np.zeros(count, dtype=self.to_numpy_dtype())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeType):
            return NotImplemented
        return self.name == other.name and self.fields == other.fields

    def __hash__(self) -> int:
        return hash((self.name, self.fields))

    def __repr__(self) -> str:
        return (f"<CompositeType {self.name!r} fields={len(self.fields)} "
                f"size={self._size}>")
