"""Compile-time extraction of composite types from Python definitions.

This models the front half of the paper's datatype handling: given a
"struct definition" (a mapping of field name to type specification, or a
Python dataclass whose annotations carry the specifications), produce a
validated :class:`~repro.dtypes.composite.CompositeType`, enforcing the
paper's restrictions: *pointers within a composite type are prohibited
as well as recursively nested composite types* (Section III-A).

Accepted field specifications:

* a :class:`~repro.dtypes.primitives.PrimitiveType` or C type name
  (``"double"``) — scalar field;
* a ``(spec, count)`` tuple — fixed-size array field (``("char", 80)``);
* another :class:`CompositeType` or extractable definition — a nested
  struct (rejected if the nesting recurses);
* anything resembling a pointer — the string ``"ptr"``/``"pointer"``,
  a trailing ``*`` on a C type name (``"double*"``) — rejected.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from typing import Any

from repro.dtypes.composite import CompositeType, Field
from repro.dtypes.primitives import PRIMITIVES, PrimitiveType, primitive
from repro.errors import CompositeTypeError


def extract_composite(name: str, definition: Mapping[str, Any] | type,
                      *, _stack: tuple[str, ...] = ()) -> CompositeType:
    """Build a :class:`CompositeType` from a struct definition.

    ``definition`` is either a mapping ``{field_name: spec}`` or a
    dataclass whose field metadata/annotations give the specs (each
    dataclass field must carry ``metadata={"ctype": spec}`` or annotate
    a supported spec directly).
    """
    if name in _stack:
        cycle = " -> ".join(_stack + (name,))
        raise CompositeTypeError(
            f"recursively nested composite types are prohibited: {cycle}")
    specs = _field_specs(name, definition)
    fields = [
        _extract_field(name, fname, spec, _stack + (name,))
        for fname, spec in specs
    ]
    return CompositeType(name, fields)


def _field_specs(name: str, definition: Mapping[str, Any] | type):
    if isinstance(definition, Mapping):
        if not definition:
            raise CompositeTypeError(f"composite {name!r} has no fields")
        return list(definition.items())
    if dataclasses.is_dataclass(definition):
        out = []
        for f in dataclasses.fields(definition):
            spec = f.metadata.get("ctype", f.type)
            out.append((f.name, spec))
        if not out:
            raise CompositeTypeError(f"composite {name!r} has no fields")
        return out
    raise CompositeTypeError(
        f"cannot extract composite {name!r} from {type(definition).__name__}; "
        "expected a mapping or a dataclass")


def _extract_field(owner: str, fname: str, spec: Any,
                   stack: tuple[str, ...]) -> Field:
    count = 1
    if isinstance(spec, tuple):
        if len(spec) != 2 or not isinstance(spec[1], int):
            raise CompositeTypeError(
                f"{owner}.{fname}: array spec must be (type, count), "
                f"got {spec!r}")
        spec, count = spec

    if isinstance(spec, PrimitiveType):
        return Field(fname, spec, count)

    if isinstance(spec, CompositeType):
        _check_no_recursion(owner, fname, spec, stack)
        return Field(fname, spec, count)

    if isinstance(spec, str):
        _reject_pointer(owner, fname, spec)
        if spec in PRIMITIVES or spec.startswith("MPI_"):
            return Field(fname, primitive(spec), count)
        raise CompositeTypeError(
            f"{owner}.{fname}: unknown type name {spec!r}")

    if isinstance(spec, Mapping) or dataclasses.is_dataclass(spec):
        nested_name = getattr(spec, "__name__", f"{owner}_{fname}")
        nested = extract_composite(nested_name, spec, _stack=stack)
        return Field(fname, nested, count)

    raise CompositeTypeError(
        f"{owner}.{fname}: unsupported field spec {spec!r}")


def _reject_pointer(owner: str, fname: str, spec: str) -> None:
    bare = spec.strip()
    if bare.endswith("*") or bare.lower() in ("ptr", "pointer", "void*"):
        raise CompositeTypeError(
            f"{owner}.{fname}: pointers within a composite type are "
            f"prohibited (got {spec!r})")


def _check_no_recursion(owner: str, fname: str, nested: CompositeType,
                        stack: tuple[str, ...]) -> None:
    reachable = {nested.name}
    reachable.update(c.name for c in nested.nested_composites())
    hit = reachable.intersection(stack)
    if hit:
        raise CompositeTypeError(
            f"{owner}.{fname}: recursively nested composite types are "
            f"prohibited (cycle through {sorted(hit)})")
