"""The datatype engine behind the directives' automatic type handling.

Section III-A of the paper: with SHMEM the data type is embedded in the
call name and the compiler matches buffer type and storage size; with
MPI, primitive buffer types map to MPI basic types and composite types
are turned into MPI structs by extracting each element's displacement,
block length and basic type at compile time. Pointers inside composite
types and recursively nested composite types are prohibited.

This package implements exactly that machinery:

* :mod:`~repro.dtypes.primitives` — the C / numpy / MPI / Fortran basic
  type registry;
* :mod:`~repro.dtypes.composite` — composite (struct) types with C
  layout rules (field alignment, tail padding) and flattening to MPI
  ``(displacement, blocklength, basic type)`` triples;
* :mod:`~repro.dtypes.extract` — "compile-time" extraction of composite
  descriptions from Python struct definitions, enforcing the paper's
  prohibitions;
* :mod:`~repro.dtypes.packer` — contiguous pack/unpack (the manual
  ``MPI_Pack`` path the directives replace).
"""

from repro.dtypes.primitives import (
    PRIMITIVES,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    from_numpy_dtype,
    primitive,
)
from repro.dtypes.composite import CompositeType, Field, StructTriples
from repro.dtypes.extract import extract_composite
from repro.dtypes.packer import pack_arrays, unpack_arrays

__all__ = [
    "PRIMITIVES",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "PrimitiveType",
    "from_numpy_dtype",
    "primitive",
    "CompositeType",
    "Field",
    "StructTriples",
    "extract_composite",
    "pack_arrays",
    "unpack_arrays",
]
