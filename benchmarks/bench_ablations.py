"""Ablation benches for the design choices DESIGN.md calls out.

1. **Synchronization consolidation** — the Waitall consolidation is
   the directive's main MPI win; disabling it (per-message waits)
   should cost a measurable factor.
2. **Sync placement policies** — deferring sync across regions
   (BEGIN_NEXT / END_ADJ) must never be slower than per-region sync.
3. **Eager/rendezvous threshold** — the protocol switch moves the
   blocking behaviour and the latency knee; timings must respond.
"""

import dataclasses

import numpy as np
import pytest

from repro import mpi
from repro.core import comm_flush, comm_p2p, comm_parameters
from repro.netmodel import gemini_model
from repro.netmodel.base import MPI_2SIDED
from repro.sim import Engine

N_MSGS = 32


def _sender_time(place_sync=None, nregions=1):
    """Time at rank 0 for N_MSGS tiny directive messages."""
    model = gemini_model()
    eng = Engine(2)

    def main(env):
        mpi.init(env, model)
        srcs = np.arange(float(N_MSGS))
        dsts = np.zeros(N_MSGS)
        t0 = env.now
        per_region = N_MSGS // nregions
        for r in range(nregions):
            kwargs = {"place_sync": place_sync} if place_sync else {}
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 count=1, **kwargs):
                for i in range(r * per_region, (r + 1) * per_region):
                    with comm_p2p(env, sbuf=srcs[i:i + 1],
                                  rbuf=dsts[i:i + 1]):
                        pass
        comm_flush(env)
        return env.now - t0

    return eng.run(main).values[0]


def _unconsolidated_time():
    """The same traffic with one blocking wait per message."""
    model = gemini_model()
    eng = Engine(2)

    def main(env):
        comm = mpi.init(env, model)
        srcs = np.arange(float(N_MSGS))
        dsts = np.zeros(N_MSGS)
        t0 = env.now
        if env.rank == 0:
            for i in range(N_MSGS):
                req = comm.Isend(srcs[i:i + 1], dest=1, tag=i)
                comm.Wait(req)
        else:
            for i in range(N_MSGS):
                req = comm.Irecv(dsts[i:i + 1], source=0, tag=i)
                comm.Wait(req)
        return env.now - t0

    return eng.run(main).values[0]


class TestConsolidationAblation:
    def test_consolidated_sync_beats_per_message_waits(self, once):
        consolidated = once(_sender_time)
        unconsolidated = _unconsolidated_time()
        assert unconsolidated / consolidated > 2.0

    def test_deferred_policies_not_slower(self):
        end = _sender_time(nregions=4)
        begin_next = _sender_time("BEGIN_NEXT_PARAM_REGION", nregions=4)
        end_adj = _sender_time("END_ADJ_PARAM_REGIONS", nregions=4)
        assert begin_next <= end * 1.01
        assert end_adj <= end * 1.01
        # END_ADJ consolidates the whole chain: strictly fewer syncs.
        assert end_adj < end


class TestEagerThresholdAblation:
    @staticmethod
    def _transfer_time(model, nbytes):
        eng = Engine(2)

        def main(env):
            comm = mpi.init(env, model)
            if env.rank == 0:
                comm.Send(np.zeros(nbytes, dtype=np.uint8), dest=1)
                return env.now
            comm.Recv(np.zeros(nbytes, dtype=np.uint8), source=0)
            return env.now

        return eng.run(main).values[0]  # sender completion time

    def test_threshold_moves_sender_blocking(self):
        base = gemini_model()
        tp = base.transport(MPI_2SIDED)
        low = dataclasses.replace(tp, eager_threshold=64)
        model_low = dataclasses.replace(
            base, transports={**base.transports, MPI_2SIDED: low})
        size = 4096  # eager under gemini (8192), rendezvous under low
        t_eager = self._transfer_time(base, size)
        t_rndv = self._transfer_time(model_low, size)
        # Rendezvous sender waits for the transfer; eager returns after
        # the local copy.
        assert t_rndv > t_eager * 2
