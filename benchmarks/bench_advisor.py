"""Advisor bench: predicted vs simulated savings of proof-carried fixes.

Runs the CI1xx performance advisor plus the proof-carrying fix engine
(:mod:`repro.core.analysis.fix`) over

* the pessimized examples in ``examples/pragmas/slow/`` — each is a
  deliberately mis-structured directive program the advisor must both
  flag and repair, and
* the built-in pattern catalog — a negative control: the curated
  patterns are already well-structured, so the advisor should propose
  nothing.

For every accepted rewrite it records the advisor's *predicted* saving
(net-model estimate attached to the CI1xx diagnostic) next to the
*simulated* saving (modeled-time delta per lowering target from
:mod:`repro.core.analysis.progsim`), and writes ``BENCH_advisor.json``.

Run:  PYTHONPATH=src python benchmarks/bench_advisor.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_advisor.py
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.analysis.fix import FixResult, fix_source
from repro.core.ir import BufferDecl, P2PNode, Program
from repro.core.pragma import parse_program
from repro.core.pragma.__main__ import _CATALOG_VARS
from repro.core.analysis.independence import base_identifier
from repro.dtypes.primitives import DOUBLE
from repro.errors import ReproError

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SLOW = os.path.join(_ROOT, "examples", "pragmas", "slow")
_OUT = os.path.join(_ROOT, "BENCH_advisor.json")

NPROCS = 8


def _step_entries(result: FixResult) -> list[dict]:
    entries = []
    for step in result.steps:
        entry = step.as_dict()
        if step.accepted and step.times_before_s:
            entry["simulated_saving_s"] = {
                t: round(step.times_before_s[t] - step.times_after_s[t],
                         12)
                for t in sorted(step.times_before_s)
                if t in step.times_after_s}
            entry["speedup"] = {
                t: round(step.times_before_s[t] / step.times_after_s[t],
                         3)
                for t in sorted(step.times_before_s)
                if t in step.times_after_s
                and step.times_after_s[t] > 0}
        entries.append(entry)
    return entries


def _best_speedup(result: FixResult) -> float:
    """End-to-end modeled speedup: first accepted 'before' over last
    accepted 'after', maximized across targets."""
    accepted = result.accepted
    if not accepted:
        return 1.0
    first, last = accepted[0], accepted[-1]
    best = 1.0
    for t, t0 in first.times_before_s.items():
        t1 = last.times_after_s.get(t)
        if t1:
            best = max(best, t0 / t1)
    return round(best, 3)


def run_examples() -> list[dict]:
    """Fix every pessimized example; predicted vs simulated ledger."""
    out = []
    for path in sorted(glob.glob(os.path.join(_SLOW, "*.c"))):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        result = fix_source(source, nprocs=NPROCS)
        rel = os.path.relpath(path, _ROOT)
        entry = {
            "path": rel,
            "changed": result.changed,
            "rounds": result.rounds,
            "accepted": len(result.accepted),
            "rejected": len(result.rejected),
            "predicted_saving_s": round(
                sum(s.predicted_saving_s for s in result.accepted), 12),
            "modeled_speedup": _best_speedup(result),
            "steps": _step_entries(result),
        }
        out.append(entry)
        print(f"{rel}: {len(result.accepted)} rewrite(s) proven, "
              f"modeled speedup {entry['modeled_speedup']}x")
    return out


def run_catalog() -> list[dict]:
    """Negative control: the curated catalog needs no rewrites."""
    from repro.patterns.catalog import PATTERNS

    out = []
    for name, spec in sorted(PATTERNS.items()):
        clauses = spec.clauses()
        if clauses is None:
            continue
        program = Program(nodes=[P2PNode(clauses=clauses, line=1)])
        for expr in (*clauses.sbuf, *clauses.rbuf):
            base = base_identifier(expr)
            program.decls.setdefault(
                base, BufferDecl(base, DOUBLE, length=1024))
        decls = "\n".join(f"double {base}[1024];"
                          for base in sorted(program.decls))
        source = f"{decls}\n\n{program.to_source()}"
        try:
            parse_program(source)
        except ReproError:
            continue  # no pragma source form (parameters-only clause)
        result = fix_source(source, nprocs=NPROCS,
                            extra_vars=dict(_CATALOG_VARS))
        out.append({
            "name": name,
            "changed": result.changed,
            "accepted": len(result.accepted),
            "rejected": len(result.rejected),
        })
        print(f"catalog:{name}: "
              f"{len(result.accepted)} rewrite(s) proposed+proven")
    return out


def run_bench() -> dict:
    return {
        "benchmark": "advisor_proof_carrying_fix",
        "nprocs": NPROCS,
        "model": "gemini (calibrated default)",
        "gates": ["CI0xx verifier clean on all lowering targets",
                  "simulated modeled time does not regress"],
        "examples": run_examples(),
        "catalog": run_catalog(),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=_OUT,
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_bench()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


# -- pytest entry points (not part of tier-1: testpaths excludes this dir)


def test_pessimized_example_speedup_at_least_1_2x():
    """Acceptance criterion: >= 1.2x modeled speedup after --fix on at
    least one pessimized example (both should clear it)."""
    entries = run_examples()
    assert entries, "no pessimized examples found"
    best = max(e["modeled_speedup"] for e in entries)
    assert best >= 1.2, f"best modeled speedup only {best}x"


def test_catalog_is_negative_control():
    """The curated catalog must need no rewrites."""
    for entry in run_catalog():
        assert not entry["changed"], f"catalog:{entry['name']} changed"


if __name__ == "__main__":
    main()
