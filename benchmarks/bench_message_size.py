"""Message-size sweep: where the SHMEM advantage lives.

Section IV-B (citing [13], [14]): MPI-vs-SHMEM differences "are most
prominent when transferring small messages (8 to 256 bytes)". This
bench sweeps the directive's payload from 8 B to 256 KiB under both
targets and asserts the advantage profile: large factors in the small-
message window, converging toward parity as bandwidth dominates.
"""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.core import comm_p2p, comm_parameters
from repro.netmodel import gemini_model
from repro.sim import Engine

SIZES = [8, 64, 256, 4096, 65536, 262144]
N_MSGS = 8


def _sweep(target):
    """Sender busy time per message for each payload size."""
    model = gemini_model()
    out = {}
    for size in SIZES:
        eng = Engine(2)
        elems = max(size // 8, 1)

        def main(env, _elems=elems):
            mpi.init(env, model)
            srcs = [np.zeros(_elems) for _ in range(N_MSGS)]
            if target == "TARGET_COMM_SHMEM":
                sh = shmem.init(env)
                dsts = [sh.malloc(_elems) for _ in range(N_MSGS)]
            else:
                dsts = [np.zeros(_elems) for _ in range(N_MSGS)]
            t0 = env.now
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 target=target):
                for i in range(N_MSGS):
                    with comm_p2p(env, sbuf=srcs[i], rbuf=dsts[i]):
                        pass
            return (env.now - t0) / N_MSGS

        res = eng.run(main)
        out[size] = res.values[0]  # sender side
    return out


@pytest.fixture(scope="module")
def sweep():
    return {
        "mpi": _sweep("TARGET_COMM_MPI_2SIDE"),
        "shmem": _sweep("TARGET_COMM_SHMEM"),
    }


def test_bench_size_sweep(once):
    res = once(_sweep, "TARGET_COMM_MPI_2SIDE")
    assert len(res) == len(SIZES)


class TestCrossoverShape:
    def test_shmem_wins_small_window(self, sweep):
        """8-256 B: the paper's 'most prominent' window."""
        for size in (8, 64, 256):
            ratio = sweep["mpi"][size] / sweep["shmem"][size]
            assert ratio > 3.0, f"{size}B: only {ratio:.2f}x"

    def test_advantage_decays_with_size(self, sweep):
        ratios = [sweep["mpi"][s] / sweep["shmem"][s] for s in SIZES]
        # Monotone non-increasing from the small-message peak on.
        assert all(a >= b * 0.95 for a, b in zip(ratios, ratios[1:]))

    def test_near_parity_for_large_messages(self, sweep):
        ratio = sweep["mpi"][SIZES[-1]] / sweep["shmem"][SIZES[-1]]
        assert ratio < 2.0

    def test_all_sizes_deliver_positive_time(self, sweep):
        for variant in sweep.values():
            assert all(t > 0 for t in variant.values())
