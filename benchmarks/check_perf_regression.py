"""Compare fresh bench JSON against the committed baselines (CI gate).

The perf-regression CI job reruns ``bench_engine_scaling.py --quick``,
``bench_advisor.py``, ``bench_recovery.py`` and ``bench_lint.py`` on
the checkout and feeds the new JSON here next to the committed
``BENCH_engine.json`` / ``BENCH_advisor.json`` /
``BENCH_recovery.json`` / ``BENCH_lint.json``.
Only *deterministic modeled* quantities are gated — virtual makespans,
scheduler heap operations, advisor savings/speedups, per-target
modeled times and the lint farm's modeled pool speedup — never raw
host wall-clock, which shared CI runners cannot reproduce. The two
lint wall-clock *ratios* that are gated (warm/cold fraction, a
sequential-throughput floor) compare same-host runs and carry generous
absolute bounds, so runner speed cannot trip them. On an unmodified checkout every gated value matches the
baseline exactly (the simulator is deterministic); the tolerance exists
so legitimate model recalibrations inside the band don't block a PR.

Exit status 0 = within tolerance, 1 = regression (details on stdout).

Run:  python benchmarks/check_perf_regression.py \\
          --engine-baseline BENCH_engine.json --engine-new new_e.json \\
          --advisor-baseline BENCH_advisor.json --advisor-new new_a.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Allowed relative degradation before the gate trips.
DEFAULT_TOLERANCE = 0.25


class Checker:
    """Accumulates comparisons; remembers every failure."""

    def __init__(self, tolerance: float) -> None:
        self.tolerance = tolerance
        self.failures: list[str] = []
        self.checked = 0

    def _fail(self, message: str) -> None:
        self.failures.append(message)
        print(f"FAIL  {message}")

    def no_increase(self, what: str, baseline: float, new: float) -> None:
        """``new`` may not exceed ``baseline`` by more than tolerance."""
        self.checked += 1
        if baseline <= 0:
            if new > baseline:
                self._fail(f"{what}: {new} > baseline {baseline}")
            return
        if new > baseline * (1.0 + self.tolerance):
            self._fail(f"{what}: {new} exceeds baseline {baseline} "
                       f"by more than {self.tolerance:.0%}")

    def no_decrease(self, what: str, baseline: float, new: float) -> None:
        """``new`` may not fall below ``baseline`` by more than
        tolerance."""
        self.checked += 1
        if new < baseline * (1.0 - self.tolerance):
            self._fail(f"{what}: {new} falls below baseline {baseline} "
                       f"by more than {self.tolerance:.0%}")

    def equal(self, what: str, baseline, new) -> None:
        self.checked += 1
        if new != baseline:
            self._fail(f"{what}: expected {baseline!r}, got {new!r}")


def check_engine(baseline: dict, new: dict, checker: Checker) -> None:
    """Gate the scheduler bench: modeled makespan and heap operations
    per swept P (the new run may sweep a subset: --quick)."""
    base_points = {p["nprocs"]: p for p in baseline["points"]}
    new_points = {p["nprocs"]: p for p in new["points"]}
    if not new_points:
        checker._fail("engine: new report has no points")
    for nprocs, point in sorted(new_points.items()):
        base = base_points.get(nprocs)
        if base is None:
            checker._fail(f"engine P={nprocs}: not in the baseline sweep")
            continue
        checker.no_increase(f"engine P={nprocs} makespan",
                            base["makespan"], point["makespan"])
        checker.no_increase(f"engine P={nprocs} heap_ops",
                            base["heap_ops"], point["heap_ops"])
        checker.no_increase(f"engine P={nprocs} switches",
                            base["switches"], point["switches"])


def check_advisor(baseline: dict, new: dict, checker: Checker) -> None:
    """Gate the advisor bench: per-example savings, speedups and
    per-target modeled times; the catalog stays a negative control."""
    base_examples = {e["path"]: e for e in baseline["examples"]}
    new_examples = {e["path"]: e for e in new["examples"]}
    for path, base in sorted(base_examples.items()):
        entry = new_examples.get(path)
        if entry is None:
            checker._fail(f"advisor {path}: example disappeared")
            continue
        checker.equal(f"advisor {path} accepted",
                      base["accepted"], entry["accepted"])
        checker.no_decrease(f"advisor {path} predicted_saving_s",
                            base["predicted_saving_s"],
                            entry["predicted_saving_s"])
        checker.no_decrease(f"advisor {path} modeled_speedup",
                            base["modeled_speedup"],
                            entry["modeled_speedup"])
        base_last = [s for s in base["steps"] if s.get("accepted")]
        new_last = [s for s in entry["steps"] if s.get("accepted")]
        if base_last and new_last:
            for target, seconds in sorted(
                    base_last[-1]["times_after_s"].items()):
                got = new_last[-1]["times_after_s"].get(target)
                if got is None:
                    checker._fail(f"advisor {path} times_after_s "
                                  f"lost target {target}")
                    continue
                checker.no_increase(
                    f"advisor {path} times_after_s[{target}]",
                    seconds, got)
    for base in baseline.get("catalog", []):
        name = base["name"]
        entry = next((c for c in new.get("catalog", [])
                      if c["name"] == name), None)
        if entry is None:
            checker._fail(f"advisor catalog:{name}: disappeared")
            continue
        checker.equal(f"advisor catalog:{name} changed",
                      base["changed"], entry["changed"])


def check_recovery(baseline: dict, new: dict, checker: Checker) -> None:
    """Gate the recovery bench: retry overhead per drop rate and the
    modeled cost of each crash-recovery scenario. Retry/restart counts
    are seed-deterministic and must match exactly; modeled times get
    the usual tolerance band."""
    base_points = {p["drop_prob"]: p for p in baseline["points"]}
    new_points = {p["drop_prob"]: p for p in new["points"]}
    if not new_points:
        checker._fail("recovery: new report has no sweep points")
    for drop, point in sorted(new_points.items()):
        base = base_points.get(drop)
        if base is None:
            checker._fail(f"recovery drop={drop}: not in the baseline "
                          "sweep")
            continue
        checker.no_increase(f"recovery drop={drop} makespan",
                            base["makespan"], point["makespan"])
        checker.no_increase(f"recovery drop={drop} overhead",
                            base["overhead"], point["overhead"])
        checker.equal(f"recovery drop={drop} retries",
                      base["retries"], point["retries"])
        checker.equal(f"recovery drop={drop} restarts",
                      base["restarts"], point["restarts"])
    base_scenarios = {s["name"]: s for s in baseline["scenarios"]}
    new_scenarios = {s["name"]: s for s in new["scenarios"]}
    for name, base in sorted(base_scenarios.items()):
        entry = new_scenarios.get(name)
        if entry is None:
            checker._fail(f"recovery scenario {name}: disappeared")
            continue
        checker.no_increase(f"recovery {name} makespan",
                            base["makespan"], entry["makespan"])
        checker.no_increase(f"recovery {name} recovery_wall_s",
                            base["recovery_wall_s"],
                            entry["recovery_wall_s"])
        for field in ("restarts", "checkpoints", "failures_detected",
                      "restore_cut", "final_world"):
            checker.equal(f"recovery {name} {field}",
                          base[field], entry[field])


#: Sequential lint throughput floor (files/s) used to cap the
#: baseline: the gate compares against ``min(baseline, floor)`` so a
#: slower CI runner never trips it, while a real order-of-magnitude
#: lint slowdown still does.
LINT_FILES_PER_S_FLOOR = 12.0

#: Warm-rerun ceiling as a fraction of the cold sharded run. The
#: acceptance bar is < 0.10; the gate compares against
#: ``max(baseline, 0.08)`` so with the default 25% tolerance the
#: effective bound is exactly 0.10 even when the baseline is tiny.
LINT_WARM_FRACTION_BASE = 0.08

#: Absolute floor for the modeled --jobs 8 pool speedup.
LINT_SPEEDUP_FLOOR = 4.0


def check_lint(baseline: dict, new: dict, checker: Checker) -> None:
    """Gate the lint-farm bench: byte-identity of the three paths and
    warm-cache completeness must hold exactly; the modeled pool
    speedup must stay ≥4x and within tolerance of the baseline; the
    wall-clock ratios get runner-proof absolute bounds (see the
    module constants)."""
    checker.equal("lint files", baseline["files"], new["files"])
    checker.equal("lint jobs", baseline["jobs"], new["jobs"])
    checker.equal("lint units_total", baseline["units_total"],
                  new["units_total"])
    for fmt in ("json", "sarif"):
        checker.equal(f"lint identical[{fmt}]", True,
                      new["identical"][fmt])
    checker.equal("lint warm hit_rate", 1.0, new["warm"]["hit_rate"])
    checker.equal("lint warm units_executed", 0,
                  new["warm"]["units_executed"])
    speedup = new["modeled"]["speedup_modeled"]
    checker.no_decrease("lint modeled speedup",
                        baseline["modeled"]["speedup_modeled"], speedup)
    checker.checked += 1
    if speedup < LINT_SPEEDUP_FLOOR:
        checker._fail(f"lint modeled speedup: {speedup} below the "
                      f"{LINT_SPEEDUP_FLOOR}x floor")
    checker.no_decrease(
        "lint sequential files_per_s",
        min(baseline["sequential"]["files_per_s"],
            LINT_FILES_PER_S_FLOOR),
        new["sequential"]["files_per_s"])
    checker.no_increase(
        "lint warm fraction_of_cold",
        max(baseline["warm"]["fraction_of_cold"],
            LINT_WARM_FRACTION_BASE),
        new["warm"]["fraction_of_cold"])


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    assert isinstance(data, dict), f"{path}: expected a JSON object"
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine-baseline")
    parser.add_argument("--engine-new")
    parser.add_argument("--advisor-baseline")
    parser.add_argument("--advisor-new")
    parser.add_argument("--recovery-baseline")
    parser.add_argument("--recovery-new")
    parser.add_argument("--lint-baseline")
    parser.add_argument("--lint-new")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed relative degradation "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    checker = Checker(args.tolerance)
    ran = False
    if args.engine_baseline and args.engine_new:
        check_engine(_load(args.engine_baseline),
                     _load(args.engine_new), checker)
        ran = True
    if args.advisor_baseline and args.advisor_new:
        check_advisor(_load(args.advisor_baseline),
                      _load(args.advisor_new), checker)
        ran = True
    if args.recovery_baseline and args.recovery_new:
        check_recovery(_load(args.recovery_baseline),
                       _load(args.recovery_new), checker)
        ran = True
    if args.lint_baseline and args.lint_new:
        check_lint(_load(args.lint_baseline),
                   _load(args.lint_new), checker)
        ran = True
    if not ran:
        parser.error("nothing to compare: pass --engine-*, --advisor-*, "
                     "--recovery-* and/or --lint-* baseline/new pairs")

    if checker.failures:
        print(f"\n{len(checker.failures)} regression(s) in "
              f"{checker.checked} checks")
        return 1
    print(f"OK: {checker.checked} checks within "
          f"{checker.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
