"""Lint-farm bench: sharded + memoized lint throughput vs sequential.

Lints a generated corpus (default: 1000 programs, ~4000 work units at
three targets) three ways through :mod:`repro.lintserve` and writes
``BENCH_lint.json``, gated by ``check_perf_regression.py``:

* **sequential** — the classic one-process path (``--jobs 1``, no
  cache); its per-unit wall times seed the pool model below.
* **sharded cold** — ``--jobs 8`` over a real ``ProcessPoolExecutor``
  with an empty ``--cache-dir`` (every unit executes *and* is stored).
* **warm** — the same invocation again: every unit must come from the
  cache (hit rate 1.0) and the rerun must cost a small fraction of the
  cold run.

Wall-clock numbers are recorded honestly for the host they ran on —
including ``cpu_count``, because a 1-core container cannot *show* a
parallel speedup no matter how well the pool shards. The **gated**
speedup is therefore modeled, the same convention every other bench
here follows (deterministic modeled quantities, never raw host
wall-clock): measured per-unit wall times are LPT-packed into ``jobs``
worker bins, the serial remainder (scheduling + merge, measured as
sequential wall minus summed unit wall) stays serial, and

    speedup_modeled = sequential_wall / (lpt_makespan + serial_rest)

which is what an unloaded ``jobs``-core host would see. Byte-identity
of the three runs' JSON and SARIF output is asserted and recorded.

Run:  PYTHONPATH=src python benchmarks/bench_lint.py
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.pragma.__main__ import render_reports
from repro.gen.generator import generate_many
from repro.lintserve import ResultCache, lint_sources

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT = os.path.join(_ROOT, "BENCH_lint.json")

FILES = 1000
JOBS = 8
NPROCS = 8


def _corpus(files: int) -> list[tuple[str, str]]:
    """(path, source) pairs; paths are display names, never opened."""
    return [(f"corpus/seed{gp.seed}_{gp.mode}.c", gp.source)
            for gp in generate_many(range(files), mode="mix")]


def _lpt_makespan(walls: list[float], jobs: int) -> float:
    """Longest-processing-time packing of unit costs into worker bins."""
    bins = [0.0] * max(1, jobs)
    for wall in sorted(walls, reverse=True):
        bins[bins.index(min(bins))] += wall
    return max(bins)


def _render(reports) -> tuple[str, str]:
    return (render_reports(reports, "json"),
            render_reports(reports, "sarif"))


def run_bench(files: int, jobs: int) -> dict:
    sources = _corpus(files)
    print(f"corpus: {len(sources)} generated programs")

    t0 = time.perf_counter()
    seq_reports, seq_stats = lint_sources(sources, nprocs=NPROCS)
    seq_wall = time.perf_counter() - t0
    seq_json, seq_sarif = _render(seq_reports)
    print(f"sequential:   {seq_wall:8.2f}s  "
          f"({len(sources) / seq_wall:6.1f} files/s, "
          f"{seq_stats.units_total} units)")

    cache_dir = tempfile.mkdtemp(prefix="bench-lint-cache-")
    try:
        t0 = time.perf_counter()
        cold_reports, cold_stats = lint_sources(
            sources, nprocs=NPROCS, jobs=jobs,
            cache=ResultCache(cache_dir))
        cold_wall = time.perf_counter() - t0
        cold_json, cold_sarif = _render(cold_reports)
        print(f"sharded cold: {cold_wall:8.2f}s  "
              f"(--jobs {jobs}, {cold_stats.units_executed} executed, "
              f"{cold_stats.units_from_cache} cached)")

        t0 = time.perf_counter()
        warm_reports, warm_stats = lint_sources(
            sources, nprocs=NPROCS, jobs=jobs,
            cache=ResultCache(cache_dir))
        warm_wall = time.perf_counter() - t0
        warm_json, warm_sarif = _render(warm_reports)
        fraction = warm_wall / cold_wall if cold_wall else 0.0
        print(f"warm rerun:   {warm_wall:8.2f}s  "
              f"(hit rate {warm_stats.hit_rate:.0%}, "
              f"{fraction:.1%} of cold)")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    unit_walls = [wall for _, wall in seq_stats.unit_walls]
    sum_units = sum(unit_walls)
    lpt = _lpt_makespan(unit_walls, jobs)
    serial_rest = max(0.0, seq_wall - sum_units)
    speedup_modeled = seq_wall / (lpt + serial_rest)
    print(f"modeled pool: LPT makespan {lpt:.2f}s + serial "
          f"{serial_rest:.2f}s -> {speedup_modeled:.2f}x speedup "
          f"at {jobs} workers (host has {os.cpu_count()} core(s))")

    json_identical = seq_json == cold_json == warm_json
    sarif_identical = seq_sarif == cold_sarif == warm_sarif
    print(f"byte-identity: json={json_identical} "
          f"sarif={sarif_identical}")

    return {
        "benchmark": "lintserve",
        "files": len(sources),
        "jobs": jobs,
        "nprocs": NPROCS,
        "cpu_count": os.cpu_count(),
        "units_total": seq_stats.units_total,
        "sequential": {
            "wall_s": round(seq_wall, 3),
            "files_per_s": round(len(sources) / seq_wall, 2),
        },
        "sharded_cold": {
            "wall_s": round(cold_wall, 3),
            "units_executed": cold_stats.units_executed,
            "stores": (cold_stats.cache or {}).get("stores"),
        },
        "warm": {
            "wall_s": round(warm_wall, 3),
            "fraction_of_cold": round(fraction, 4),
            "hit_rate": round(warm_stats.hit_rate, 4),
            "units_executed": warm_stats.units_executed,
        },
        "modeled": {
            "sum_unit_wall_s": round(sum_units, 3),
            "lpt_makespan_s": round(lpt, 3),
            "serial_rest_s": round(serial_rest, 3),
            "speedup_modeled": round(speedup_modeled, 3),
            "files_per_s_modeled": round(
                len(sources) / (lpt + serial_rest), 2),
            "note": "LPT packing of measured per-unit walls into "
                    "`jobs` bins + the serial remainder; the gated "
                    "speedup an unloaded jobs-core host would see",
        },
        "identical": {"json": json_identical, "sarif": sarif_identical},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--files", type=int, default=FILES,
                        help="corpus size (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=JOBS,
                        help="pool width (default: %(default)s)")
    parser.add_argument("--out", default=_OUT,
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_bench(args.files, args.jobs)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
