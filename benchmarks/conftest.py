"""Benchmark-suite configuration.

Each benchmark runs a *reduced* version of a paper experiment (three
process counts, small payloads) under pytest-benchmark, and asserts the
paper's shape criteria on the modelled (virtual) times — wall time of
the simulation is what pytest-benchmark reports; the scientific
quantity is the virtual time, which the assertions check and the
``python -m repro.bench`` harness prints in full.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest


@pytest.fixture
def once(benchmark):
    """Run the workload exactly once per measurement round.

    Simulation runs are seconds-scale; default calibration would loop
    them dozens of times.
    """
    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return _run
