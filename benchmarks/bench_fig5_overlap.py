"""Figure 5: communication/computation overlap under 10x compute.

Paper claims: with the energy-value calculation accelerated ~10x (the
projected GPU port), overlapping the spin-configuration communication
with the spin-independent computation reduces execution time; the
improvement is bounded by the communication time (compute dominates at
19:1 before acceleration).
"""

import pytest

from repro.bench.harness import figure5, figure5_speedup_sweep

PLAIN = "original comm + optimized computation"
OVER = "directive overlap + optimized computation"


@pytest.fixture(scope="module")
def fig5_quick():
    return figure5(quick=True, wl_steps=2)


def test_bench_figure5(once):
    fig = once(figure5, quick=True, wl_steps=1)
    assert len(fig.series) == 2


class TestShapeCriteria:
    def test_overlap_wins_everywhere(self, fig5_quick):
        for i in range(len(fig5_quick.xs)):
            assert (fig5_quick.series[OVER][i]
                    < fig5_quick.series[PLAIN][i]), \
                f"overlap loses at P={fig5_quick.xs[i]}"

    def test_benefit_bounded_by_comm_time(self, fig5_quick):
        """The saved time can never exceed the communication time."""
        benefits = [p - o for p, o in zip(fig5_quick.series[PLAIN],
                                          fig5_quick.series[OVER])]
        # Under 10x compute the comm phase is ~10-25% of the plain
        # total; the benefit must sit below that fraction.
        for b, total in zip(benefits, fig5_quick.series[PLAIN]):
            assert 0 < b < 0.5 * total

    def test_unaccelerated_compute_shows_marginal_benefit(self):
        """With the 19:1 ratio unscaled, compute dominates: overlap
        saves only a few percent; the projected 10x GPU speedup is what
        makes the hidden communication significant (the paper's point
        in introducing Fig. 5)."""
        fig1 = figure5(quick=True, wl_steps=2, gpu_speedup=1.0)
        fig10 = figure5(quick=True, wl_steps=2, gpu_speedup=10.0)
        for i in range(len(fig1.xs)):
            frac1 = ((fig1.series[PLAIN][i] - fig1.series[OVER][i])
                     / fig1.series[PLAIN][i])
            frac10 = ((fig10.series[PLAIN][i] - fig10.series[OVER][i])
                      / fig10.series[PLAIN][i])
            assert frac1 < 0.05
            assert frac1 < frac10


class TestSpeedupSweep:
    """Extension: the relative saving grows monotonically with the
    compute acceleration, bounded by the comm fraction."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return figure5_speedup_sweep(wl_steps=1)

    def test_overlap_always_wins(self, sweep):
        for p, o in zip(sweep.series["no overlap"],
                        sweep.series["directive overlap"]):
            assert o < p

    def test_relative_saving_monotone_in_speedup(self, sweep):
        fracs = [(p - o) / p
                 for p, o in zip(sweep.series["no overlap"],
                                 sweep.series["directive overlap"])]
        assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:]))
        assert fracs[0] < 0.05    # 19:1 compute-dominated
        assert fracs[-1] > 0.2    # communication-visible at 50x
